// Figure 4 — mdtest-easy: metadata throughput with empty files.
//
// Paper setup: 16 processes, 1M files, private leaf directories, fsync per
// phase, on RADOS. Systems: ArkFS, CephFS-K (1 and 16 MDS), CephFS-F,
// MarFS. Headline: ArkFS wins every phase — up to 24.86x over CephFS —
// because its metadata operations are local metatable updates.
//
// Scaled for CI: 16 processes x 200 files. All mounts of one system share
// one client node (the paper runs 16 processes on one node).
#include "bench_util.h"
#include "common/stats.h"
#include "workloads/mdtest.h"

using namespace arkfs;
using baselines::MdsConfig;
using workloads::MdtestConfig;
using workloads::PhaseResult;

namespace {

struct SystemRun {
  std::string name;
  std::vector<PhaseResult> phases;
};

void PrintTable(const std::vector<SystemRun>& runs) {
  std::printf("\n  %-22s", "system");
  for (const auto& phase : runs[0].phases) {
    std::printf(" %12s", phase.phase.c_str());
  }
  std::printf("   (ops/s)\n");
  for (const auto& run : runs) {
    std::printf("  %-22s", run.name.c_str());
    for (const auto& phase : run.phases) {
      std::printf(" %12.0f", phase.ops_per_second);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::Header("Figure 4: mdtest-easy (CREATE / STAT / DELETE)",
                "Fig. 4 — metadata ops on empty files, 16 procs, private "
                "leaf dirs, fsync per phase");
  bench::PaperClaim("ArkFS >> CephFS-K(16) > CephFS-K(1) > CephFS-F > MarFS; "
                    "up to 24.86x vs CephFS");

  MdtestConfig config;
  config.num_processes = 16;
  config.files_per_process = 200;

  std::vector<SystemRun> runs;

  {  // ArkFS (one daemon on the client node, FUSE model on top, pcache on).
    auto env = bench::ArkBenchEnv::Create(ClusterConfig::RadosLike());
    auto client = env.cluster->AddClient().value();
    VfsPtr mount = env.cluster->WithFuse(client, bench::ScaledFuse(16));
    auto result = workloads::RunMdtestEasy([&](int) { return mount; }, config);
    runs.push_back({"ArkFS", result.value()});
  }
  {  // CephFS-K, 1 MDS.
    auto d = bench::MakeCephDeployment(ClusterConfig::RadosLike(),
                                       MdsConfig::Ranks(1));
    VfsPtr mount = d.KernelMount();
    auto result = workloads::RunMdtestEasy([&](int) { return mount; }, config);
    runs.push_back({"CephFS-K (1 MDS)", result.value()});
  }
  {  // CephFS-K, 16 MDS.
    auto d = bench::MakeCephDeployment(ClusterConfig::RadosLike(),
                                       MdsConfig::Ranks(16));
    VfsPtr mount = d.KernelMount();
    auto result = workloads::RunMdtestEasy([&](int) { return mount; }, config);
    runs.push_back({"CephFS-K (16 MDS)", result.value()});
  }
  {  // CephFS-F (FUSE mount).
    auto d = bench::MakeCephDeployment(ClusterConfig::RadosLike(),
                                       MdsConfig::Ranks(1));
    VfsPtr mount = d.FuseMount(bench::ScaledFuse(16));
    auto result = workloads::RunMdtestEasy([&](int) { return mount; }, config);
    runs.push_back({"CephFS-F", result.value()});
  }
  {  // MarFS (interactive/FUSE interface, 2 metadata nodes).
    auto marfs_config = baselines::MarFsLikeConfig::Default();
    auto mds = std::make_shared<baselines::MdsCluster>(marfs_config.mds);
    auto store = std::make_shared<ClusterObjectStore>(ClusterConfig::RadosLike());
    VfsPtr mount = baselines::MakeMarFsLike(mds, store, marfs_config, bench::ScaledFuse(16));
    auto result = workloads::RunMdtestEasy([&](int) { return mount; }, config);
    runs.push_back({"MarFS", result.value()});
  }

  PrintTable(runs);

  // Shape summary: ArkFS speedup over the best CephFS-K per phase.
  std::printf("\n");
  for (std::size_t p = 0; p < runs[0].phases.size(); ++p) {
    const double ark = runs[0].phases[p].ops_per_second;
    const double ceph_k1 = runs[1].phases[p].ops_per_second;
    const double ceph_f = runs[3].phases[p].ops_per_second;
    bench::Row(runs[0].phases[p].phase + " speedup",
               bench::Fmt("%.1fx vs CephFS-K(1), ", ark / ceph_k1) +
                   bench::Fmt("%.1fx vs CephFS-F", ark / ceph_f));
  }
  return 0;
}
