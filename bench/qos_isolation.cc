// Multi-tenant QoS isolation: an aggressor tenant at ~10x the victim's
// offered load must not move the victim's create/stat tail.
//
// Three scenarios on the same RadosLike store (per-node WFQ always on, so
// the queueing layer's constant cost cancels out of every comparison):
//   baseline  victim alone, QoS config identical to the protected run
//   no-qos    aggressor on; equal WFQ weights, admission off
//   qos       aggressor on; admission throttles the aggressor's metadata
//             rate and the WFQ weights favor the victim
//
// Clients run with SYNC durability so every acked create rides the store's
// fair queue synchronously — the path the protection actually gates.
//
// --smoke       CI gate: victim create/stat p99 under the protected run
//               must stay within 20% of baseline, with a 1.5 ms absolute
//               jitter floor (the baseline tail's own cross-run spread on
//               shared hardware) so scheduler noise cannot flake the lane.
// --shed-smoke  chaos gate: a deliberately tiny queue (depth 4, 5 ms wait
//               bound) under a 6-thread storm must shed loudly — every
//               acked create is stat-able afterwards, every failure carries
//               a retryable code (kAgain/kBusy), and the per-tenant shed
//               counters moved. Zero silent loss.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "qos/admission.h"
#include "qos/tenant.h"

using namespace arkfs;

namespace {

constexpr qos::TenantId kVictim = 1;
constexpr qos::TenantId kAggressor = 2;

Nanos Took(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<Nanos>(std::chrono::steady_clock::now() -
                                           start);
}

Nanos ExactPercentile(std::vector<Nanos> samples, double p) {
  if (samples.empty()) return Nanos{0};
  const std::size_t idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(samples.size() - 1));
  std::nth_element(samples.begin(), samples.begin() + idx, samples.end());
  return samples[idx];
}

struct ScenarioResult {
  Nanos create_p50{};
  Nanos create_p99{};
  Nanos stat_p99{};
  double victim_ops_per_sec = 0;
  std::uint64_t aggressor_acked = 0;
  std::uint64_t aggressor_rejected = 0;
  std::uint64_t aggressor_shed = 0;  // tenant.2.shed across all layers
};

// One victim thread measuring create+stat latency per op; `aggressor_threads`
// background threads hammering creates in their own directories until the
// victim finishes (duration-based, so throttling the aggressor cannot
// stretch the victim's measured window).
ScenarioResult RunScenario(bool aggressor_on, bool qos_on, int victim_ops,
                           int aggressor_threads) {
  obs::MetricsRegistry registry;
  qos::TenantMetrics store_metrics(&registry);

  ClusterConfig store_config = ClusterConfig::RadosLike();
  store_config.num_nodes = 8;  // few enough queues that an unthrottled storm collides
  store_config.metrics = &registry;
  store_config.tenant_metrics = &store_metrics;
  store_config.fair_queue.enabled = true;
  store_config.fair_queue.service_slots = 1;
  store_config.fair_queue.max_depth = 64;
  store_config.fair_queue.max_wait = Seconds(2);
  if (qos_on) {
    store_config.fair_queue.weights[kVictim] = 16.0;
    store_config.fair_queue.weights[kAggressor] = 1.0;
  }
  auto store = std::make_shared<ClusterObjectStore>(store_config);

  ArkFsClusterOptions options;
  options.network = sim::NetworkProfile::Datacenter10G();
  options.lease = lease::LeaseManagerConfig{Seconds(5), Millis(100)};
  options.client_template.metrics = &registry;
  options.client_template.journal.durability =
      journal::DurabilityMode::kSync;
  // Sync mode commits on the caller thread; a long interval keeps the
  // background checkpoint/flush timers (and their store puts) out of the
  // measured window, so the victim's tail reflects queueing, not the
  // client's own housekeeping landing on its node.
  options.client_template.journal.commit_interval = Seconds(30);
  if (qos_on) {
    // Victim keeps the unlimited default; only the aggressor's metadata
    // rate is capped (a create charges a couple of dir ops, so ~10 charges/s
    // admits only a trickle of aggressor creates).
    options.admission.enabled = true;
    options.admission.tenants[kAggressor] = qos::TenantRate{10.0, 2.0};
  }
  auto cluster = ArkFsCluster::Create(store, options).value();
  const UserCred root = UserCred::Root();

  auto victim = cluster->AddClient("victim", kVictim).value();
  if (!victim->Mkdir("/victim", 0755, root).ok()) return {};

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> aggr_acked{0};
  std::atomic<std::uint64_t> aggr_rejected{0};
  std::vector<std::thread> aggressors;
  std::shared_ptr<Client> aggressor;
  if (aggressor_on) {
    aggressor = cluster->AddClient("aggressor", kAggressor).value();
    for (int t = 0; t < aggressor_threads; ++t) {
      const std::string dir = "/aggr" + std::to_string(t);
      if (!aggressor->Mkdir(dir, 0755, root).ok()) return {};
      aggressors.emplace_back([&, dir] {
        const std::string payload = "aggressor-payload";
        for (std::uint64_t i = 0; !stop.load(std::memory_order_relaxed);
             ++i) {
          const std::string path = dir + "/f" + std::to_string(i);
          if (aggressor->WriteFileAt(path, AsBytes(payload), root).ok()) {
            aggr_acked.fetch_add(1, std::memory_order_relaxed);
          } else {
            aggr_rejected.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }

  // Exact per-op samples: at p99 the log-bucketed LatencyHistogram's ~19%
  // bucket granularity is the same order as the gate itself.
  std::vector<Nanos> create_samples;
  std::vector<Nanos> stat_samples;
  create_samples.reserve(victim_ops);
  stat_samples.reserve(victim_ops);
  const std::string payload = "victim-payload";
  // Warmup outside the histograms: lease acquire + journal fence are
  // one-time costs of the first ops in a fresh directory.
  for (int i = 0; i < 16; ++i) {
    (void)victim->WriteFileAt("/victim/warm" + std::to_string(i), AsBytes(payload),
                              root);
  }
  const auto run_start = std::chrono::steady_clock::now();
  for (int i = 0; i < victim_ops; ++i) {
    const std::string path = "/victim/f" + std::to_string(i);
    auto t0 = std::chrono::steady_clock::now();
    const Status created = victim->WriteFileAt(path, AsBytes(payload), root);
    create_samples.push_back(Took(t0));
    if (!created.ok()) continue;
    t0 = std::chrono::steady_clock::now();
    (void)victim->Stat(path, root);
    stat_samples.push_back(Took(t0));
  }
  const Nanos elapsed = Took(run_start);

  stop.store(true, std::memory_order_relaxed);
  for (auto& t : aggressors) t.join();

  ScenarioResult result;
  result.create_p50 = ExactPercentile(create_samples, 50);
  result.create_p99 = ExactPercentile(create_samples, 99);
  result.stat_p99 = ExactPercentile(stat_samples, 99);
  result.victim_ops_per_sec =
      elapsed.count() > 0 ? victim_ops * 1e9 / elapsed.count() : 0;
  result.aggressor_acked = aggr_acked.load();
  result.aggressor_rejected = aggr_rejected.load();
  result.aggressor_shed =
      registry.Snapshot().counter(qos::TenantMetricName(kAggressor, "shed"));
  return result;
}

void PrintScenario(const char* label, const ScenarioResult& r) {
  std::printf("  %-10s %10.1f %10.1f %10.1f %12.0f %9llu %9llu %9llu\n",
              label, r.create_p50.count() / 1e3, r.create_p99.count() / 1e3,
              r.stat_p99.count() / 1e3, r.victim_ops_per_sec,
              static_cast<unsigned long long>(r.aggressor_acked),
              static_cast<unsigned long long>(r.aggressor_rejected),
              static_cast<unsigned long long>(r.aggressor_shed));
}

// Degradation gate with an absolute noise floor. The baseline p99 itself
// swings ~+-1.5 ms across runs on shared hardware (timer overshoot in the
// sim's latency sleeps lands in the tail), so sub-floor movement is
// indistinguishable from noise — while a broken admission/WFQ path moves
// the create tail by 4-8 ms (the no-qos row), far past both clauses.
bool WithinGate(const char* op, Nanos baseline, Nanos contended) {
  const double moved = contended.count() - double(baseline.count());
  const bool ok = moved < 0.20 * baseline.count() ||
                  moved < double(Nanos(Micros(1500)).count());
  std::printf("  %-6s p99 baseline %8.1f us  protected %8.1f us  (%+.1f%%) %s\n",
              op, baseline.count() / 1e3, contended.count() / 1e3,
              baseline.count() > 0 ? 100.0 * moved / baseline.count() : 0.0,
              ok ? "OK" : "FAIL");
  return ok;
}

// --shed-smoke: overload a deliberately tiny queue and prove shedding is
// loud. Tracks every create's acked/nacked outcome, then audits:
// acked => stat-able, nacked => retryable code, shed counters > 0.
int RunShedSmoke() {
  obs::MetricsRegistry registry;
  qos::TenantMetrics store_metrics(&registry);

  ClusterConfig store_config = ClusterConfig::RadosLike();
  store_config.num_nodes = 2;
  store_config.metrics = &registry;
  store_config.tenant_metrics = &store_metrics;
  store_config.fair_queue.enabled = true;
  store_config.fair_queue.service_slots = 1;
  store_config.fair_queue.max_depth = 4;
  store_config.fair_queue.max_wait = Millis(5);
  store_config.fair_queue.shed_retry_after = Millis(1);
  auto store = std::make_shared<ClusterObjectStore>(store_config);

  ArkFsClusterOptions options;
  options.network = sim::NetworkProfile::Datacenter10G();
  options.lease = lease::LeaseManagerConfig{Seconds(5), Millis(100)};
  options.client_template.metrics = &registry;
  options.client_template.journal.durability =
      journal::DurabilityMode::kSync;
  // Few retries: enough for a mix of acked and nacked creates, few enough
  // that sheds still surface to the application instead of being fully
  // absorbed by the client's retry loop (which would mask the accounting
  // this gate audits).
  options.client_template.op_retries = 4;
  auto cluster = ArkFsCluster::Create(store, options).value();
  const UserCred root = UserCred::Root();

  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 40;
  struct Outcome {
    std::string path;
    Status status;
  };
  std::vector<std::vector<Outcome>> outcomes(kThreads);
  std::vector<std::shared_ptr<Client>> clients(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    const qos::TenantId tenant = 1 + (t % 2);
    clients[t] =
        cluster->AddClient("storm" + std::to_string(t), tenant).value();
    // Pre-create the per-thread dir while the queue is idle so the storm
    // below contends on creates, not on lease acquisition races.
    if (!clients[t]->Mkdir("/d" + std::to_string(t), 0755, root).ok()) {
      std::printf("  setup mkdir failed\n");
      return 1;
    }
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string payload = "x";
      outcomes[t].reserve(kOpsPerThread);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string path =
            "/d" + std::to_string(t) + "/f" + std::to_string(i);
        outcomes[t].push_back(
            {path, clients[t]->WriteFileAt(path, AsBytes(payload), root)});
      }
    });
  }
  for (auto& t : threads) t.join();

  std::uint64_t acked = 0, nacked = 0, lost = 0, bad_code = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (const Outcome& o : outcomes[t]) {
      if (o.status.ok()) {
        ++acked;
        if (!clients[t]->Stat(o.path, root).ok()) {
          ++lost;
          std::printf("  LOST acked create: %s\n", o.path.c_str());
        }
      } else {
        ++nacked;
        if (o.status.code() != Errc::kAgain &&
            o.status.code() != Errc::kBusy) {
          ++bad_code;
          std::printf("  non-retryable nack: %s -> %s\n", o.path.c_str(),
                      o.status.ToString().c_str());
        }
      }
    }
  }
  const auto snap = registry.Snapshot();
  const std::uint64_t shed = snap.counter(qos::TenantMetricName(1, "shed")) +
                             snap.counter(qos::TenantMetricName(2, "shed"));

  bench::Header("QoS shed chaos smoke",
                "overload protection: loud shedding, zero silent loss");
  bench::Row("creates acked", std::to_string(acked));
  bench::Row("creates nacked", std::to_string(nacked));
  bench::Row("sheds counted", std::to_string(shed));
  bench::Row("acked-but-lost", std::to_string(lost));
  bench::Row("non-retryable nacks", std::to_string(bad_code));

  const bool pass = lost == 0 && bad_code == 0 && shed > 0 && acked > 0;
  std::printf("  %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::ExtractFlag(&argc, argv, "--smoke");
  const bool shed_smoke = bench::ExtractFlag(&argc, argv, "--shed-smoke");
  if (shed_smoke) return RunShedSmoke();

  const int victim_ops = 800;  // p99 = 8 tail samples; fewer is too noisy
  const int aggressor_threads = 8;  // ~10x the single victim's offered load

  bench::Header("Multi-tenant QoS isolation",
                "overload protection: admission + WFQ shield the victim "
                "tenant's tail");
  bench::Note("RadosLike store, 8 nodes, per-node WFQ, sync durability; "
              "victim = 1 thread, aggressor = " +
              std::to_string(aggressor_threads) + " threads");

  // Smoke mode gates on the min p99 across repeats: an environment spike
  // (timer overshoot landing in the tail) must hit every repeat to flake
  // the lane, while a real isolation regression — the protected run
  // behaving like no-qos — raises every repeat by 4-8 ms.
  const int repeats = smoke ? 3 : 1;
  ScenarioResult baseline{}, protected_run{};
  for (int r = 0; r < repeats; ++r) {
    const ScenarioResult b =
        RunScenario(false, true, victim_ops, aggressor_threads);
    const ScenarioResult p =
        RunScenario(true, true, victim_ops, aggressor_threads);
    if (r == 0) {
      baseline = b;
      protected_run = p;
    } else {
      baseline.create_p99 = std::min(baseline.create_p99, b.create_p99);
      baseline.stat_p99 = std::min(baseline.stat_p99, b.stat_p99);
      protected_run.create_p99 =
          std::min(protected_run.create_p99, p.create_p99);
      protected_run.stat_p99 = std::min(protected_run.stat_p99, p.stat_p99);
    }
  }
  const ScenarioResult unprotected =
      RunScenario(true, false, victim_ops, aggressor_threads);

  std::printf("\n  %-10s %10s %10s %10s %12s %9s %9s %9s\n", "scenario",
              "cr p50us", "cr p99us", "st p99us", "victim op/s", "agg ok",
              "agg rej", "agg shed");
  PrintScenario("baseline", baseline);
  PrintScenario("no-qos", unprotected);
  PrintScenario("qos", protected_run);
  bench::Note("no-qos: equal weights, no admission — the aggressor's queue "
              "depth lands in the victim's tail");
  bench::Note("qos: aggressor rate-capped at admission and outweighed "
              "16:1 in the per-node fair queues");

  if (smoke) {
    std::printf("\n");
    const bool create_ok =
        WithinGate("create", baseline.create_p99, protected_run.create_p99);
    const bool stat_ok =
        WithinGate("stat", baseline.stat_p99, protected_run.stat_p99);
    const bool pass = create_ok && stat_ok;
    std::printf("  %s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
  }
  return 0;
}
