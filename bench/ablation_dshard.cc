// Ablation — sharded dentry blocks (dirty-shard checkpointing).
//
// The per-directory dentry block is the checkpoint write amplifier: folding
// a handful of journaled mutations into a 100k-entry directory rewrites the
// whole block every time. Sharding the block B ways means a checkpoint
// rewrites only the shards its burst dirtied. Two sweeps:
//   1. Checkpoint store-bytes-written for a small mutation burst into a
//      100k-entry directory, B in {1, 4, 16, 64} — the write-amplification
//      claim (>=10x reduction at B=16 for a 1-op burst).
//   2. mdtest-hard over a full ArkFS deployment at every B — sharding must
//      not regress the paper's shared-directory workload.
#include "bench_util.h"
#include "journal/journal.h"
#include "objstore/memory_store.h"
#include "objstore/wrappers.h"
#include "workloads/mdtest.h"

using namespace arkfs;
using journal::DentryShardPolicy;
using journal::JournalConfig;
using journal::JournalManager;
using journal::Record;

namespace {

constexpr std::uint64_t kDirEntries = 100000;

struct SweepPoint {
  std::uint32_t shards = 0;
  double build_ops = 0;            // creates/s while filling the directory
  std::uint64_t burst1_bytes = 0;  // store bytes written, 1-op burst flush
  std::uint64_t burst5_bytes = 0;  // store bytes written, 5-op burst flush
  std::uint64_t burst1_shard_puts = 0;
  std::uint64_t burst5_shard_puts = 0;
};

Record AddEntry(std::uint64_t i, const char* prefix) {
  return Record::DentryAdd({prefix + std::to_string(i),
                            DeterministicUuid(3, i), FileType::kRegular});
}

SweepPoint RunSweep(std::uint32_t shard_count) {
  auto base = std::make_shared<MemoryObjectStore>();
  auto counting = std::make_shared<CountingStore>(base);
  auto prt = std::make_shared<Prt>(counting);
  JournalConfig cfg;
  cfg.shard_policy.override_count = shard_count;
  JournalManager mgr(prt, cfg);

  const Uuid dir = DeterministicUuid(1, 1);
  Inode di = MakeInode(dir, FileType::kDirectory, 0755, 0, 0, kRootIno);
  if (!prt->StoreInode(di).ok()) return {};
  mgr.RegisterDir(dir);

  SweepPoint point;
  point.shards = shard_count;

  // Fill to 100k entries in checkpointed batches (archiving-burst shape).
  ThroughputMeter meter;
  meter.Start();
  constexpr std::uint64_t kBatch = 5000;
  for (std::uint64_t start = 0; start < kDirEntries; start += kBatch) {
    std::vector<Record> records;
    records.reserve(kBatch);
    for (std::uint64_t i = start; i < start + kBatch; ++i) {
      records.push_back(AddEntry(i, "f"));
    }
    (void)mgr.Append(dir, std::move(records));
    if (!mgr.FlushDir(dir).ok()) return point;
  }
  meter.Stop();
  meter.AddOps(kDirEntries);
  point.build_ops = meter.OpsPerSecond();

  // Small mutation bursts into the now-large directory: what the paper's
  // steady archiving state looks like between big ingests.
  counting->Reset();
  const std::uint64_t shard_puts_before = mgr.metrics().dentry_shards_written.value();
  (void)mgr.Append(dir, {AddEntry(kDirEntries + 1, "late")});
  if (!mgr.FlushDir(dir).ok()) return point;
  point.burst1_bytes = counting->Snapshot().bytes_written;
  point.burst1_shard_puts =
      mgr.metrics().dentry_shards_written.value() - shard_puts_before;

  counting->Reset();
  const std::uint64_t puts5_before = mgr.metrics().dentry_shards_written.value();
  std::vector<Record> burst;
  for (std::uint64_t i = 0; i < 5; ++i) {
    burst.push_back(AddEntry(kDirEntries + 10 + i, "late"));
  }
  (void)mgr.Append(dir, std::move(burst));
  if (!mgr.FlushDir(dir).ok()) return point;
  point.burst5_bytes = counting->Snapshot().bytes_written;
  point.burst5_shard_puts = mgr.metrics().dentry_shards_written.value() - puts5_before;
  return point;
}

}  // namespace

int main() {
  bench::Header("Ablation: dentry-block shard count",
                "supports SIII-E/F (checkpoint write amplification)");
  bench::PaperClaim("per-directory metadata objects keep checkpoints local; "
                    "sharding bounds the rewrite to the dirtied shards");

  std::printf("\n  checkpoint write amplification (%llu-entry directory):\n",
              static_cast<unsigned long long>(kDirEntries));
  std::printf("  %8s %12s %16s %14s %16s %14s %12s\n", "shards",
              "build ops/s", "burst=1 bytes", "shard puts(1)",
              "burst=5 bytes", "shard puts(5)", "vs B=1");
  std::uint64_t baseline = 0;
  for (std::uint32_t b : {1u, 4u, 16u, 64u}) {
    const SweepPoint p = RunSweep(b);
    if (b == 1) baseline = p.burst1_bytes;
    std::printf("  %8u %12.0f %16llu %14llu %16llu %14llu %11.1fx\n",
                p.shards, p.build_ops,
                static_cast<unsigned long long>(p.burst1_bytes),
                static_cast<unsigned long long>(p.burst1_shard_puts),
                static_cast<unsigned long long>(p.burst5_bytes),
                static_cast<unsigned long long>(p.burst5_shard_puts),
                p.burst1_bytes > 0
                    ? static_cast<double>(baseline) / p.burst1_bytes
                    : 0.0);
  }
  bench::Note("burst=1 at B=16 must be >=10x below B=1: the flush rewrites "
              "one ~6k-entry shard instead of the 100k-entry block");

  std::printf("\n  mdtest-hard no-regression sweep (16 procs, shared dirs):\n");
  workloads::MdtestConfig config;
  config.num_processes = 16;
  config.files_per_process = 60;
  config.file_size = 3901;
  config.shared_dirs = 16;
  std::printf("  %8s", "shards");
  bool header_done = false;
  for (std::uint32_t b : {1u, 4u, 16u, 64u}) {
    auto store = std::make_shared<ClusterObjectStore>(ClusterConfig::RadosLike());
    ArkFsClusterOptions options;
    options.network = sim::NetworkProfile::Datacenter10G();
    options.lease = lease::LeaseManagerConfig{Seconds(5), Millis(100)};
    ClientConfig client;
    client.journal.commit_interval = Millis(200);
    client.journal.shard_policy.override_count = b;
    options.client_template = client;
    auto cluster = ArkFsCluster::Create(store, options).value();
    auto ark = cluster->AddClient().value();
    VfsPtr mount = cluster->WithFuse(ark, bench::ScaledFuse(16));
    auto phases =
        workloads::RunMdtestHard([&](int) { return mount; }, config).value();
    if (!header_done) {
      for (const auto& ph : phases) std::printf(" %12s", ph.phase.c_str());
      std::printf("   (ops/s)\n");
      header_done = true;
    }
    std::printf("  %8u", b);
    for (const auto& ph : phases) {
      std::printf(" %12.0f", ph.ops_per_second);
    }
    std::printf("\n");
  }
  bench::Note("all phases should hold steady across B: reads batch all "
              "shards in one MultiGet, writes touch only dirty shards");
  return 0;
}
