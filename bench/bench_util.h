// Shared helpers for the figure/table benchmark binaries.
//
// Every bench prints (a) the environment/config it ran with, (b) a table of
// measured numbers, and (c) the corresponding numbers/claims from the paper
// so shape comparisons are one glance away.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/cephfs_like.h"
#include "baselines/marfs_like.h"
#include "baselines/s3fs_like.h"
#include "core/cluster.h"
#include "objstore/cluster_store.h"

namespace arkfs::bench {

inline void Header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

inline void Note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

inline void PaperClaim(const std::string& text) {
  std::printf("  [paper] %s\n", text.c_str());
}

inline void Row(const std::string& label, const std::string& value) {
  std::printf("  %-28s %s\n", label.c_str(), value.c_str());
}

inline std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

// --json support: benches accumulate {op, mode, percentiles, throughput}
// rows and dump them as one JSON array for tooling (CI trend lines, the
// EXPERIMENTS.md ablation tables). Plain fprintf — the image has no JSON
// library, and the schema is four numbers per row.
struct JsonRow {
  std::string op;    // e.g. "create", "write"
  std::string mode;  // durability mode or system/phase qualifier
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double ops_per_sec = 0;
};

class JsonReport {
 public:
  void Add(JsonRow row) { rows_.push_back(std::move(row)); }
  bool empty() const { return rows_.empty(); }

  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const JsonRow& r = rows_[i];
      std::fprintf(
          f,
          "  {\"op\": \"%s\", \"mode\": \"%s\", \"p50_us\": %.3f, "
          "\"p95_us\": %.3f, \"p99_us\": %.3f, \"ops_per_sec\": %.1f}%s\n",
          r.op.c_str(), r.mode.c_str(), r.p50_us, r.p95_us, r.p99_us,
          r.ops_per_sec, i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
  }

 private:
  std::vector<JsonRow> rows_;
};

// Pulls "--flag <value>" out of argv (before google-benchmark sees and
// rejects it); returns the value, or "" if the flag is absent.
inline std::string ExtractFlagValue(int* argc, char** argv, const char* flag) {
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < *argc) {
      std::string value = argv[i + 1];
      for (int j = i; j + 2 < *argc; ++j) argv[j] = argv[j + 2];
      *argc -= 2;
      return value;
    }
  }
  return "";
}

// Pulls a bare "--flag" out of argv; returns whether it was present.
inline bool ExtractFlag(int* argc, char** argv, const char* flag) {
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
      *argc -= 1;
      return true;
    }
  }
  return false;
}

// A full ArkFS deployment for benches: paper-like network + 5 s leases are
// too slow for CI, so leases are shortened while keeping the datacenter
// network profile that the cost comparisons rely on.
struct ArkBenchEnv {
  ObjectStorePtr store;
  std::unique_ptr<ArkFsCluster> cluster;

  static ArkBenchEnv Create(
      ClusterConfig store_config, bool permission_cache = true,
      CacheConfig cache = CacheConfig{}, std::uint64_t chunk_size = 0,
      bool read_delegations = true,
      DataPlacement placement = DataPlacement::kReplica,
      const std::function<void(ArkFsClusterOptions*)>& tweak = nullptr) {
    ArkBenchEnv env;
    env.store = std::make_shared<ClusterObjectStore>(store_config);
    ArkFsClusterOptions options;
    options.network = sim::NetworkProfile::Datacenter10G();
    options.lease = lease::LeaseManagerConfig{Seconds(5), Millis(100)};
    ClientConfig client;
    client.permission_cache = permission_cache;
    client.read_delegations = read_delegations;
    client.perm_cache_ttl = Seconds(5);
    client.cache = cache;
    client.chunk_size = chunk_size;
    client.journal.commit_interval = Millis(200);
    options.client_template = client;
    options.placement = placement;
    if (tweak) tweak(&options);
    env.cluster = ArkFsCluster::Create(env.store, options).value();
    return env;
  }
};

// FUSE crossing burn scaled for the host: the paper's client node has 32
// vCPUs, so its 16 mdtest processes each burn crossings on their own core.
// On this single-core host the threads' spins would serialize and overstate
// the cost 16x; divide the modeled burn by the process parallelism the
// paper's node actually had.
inline FuseSimConfig ScaledFuse(int concurrent_procs) {
  FuseSimConfig config;
  config.crossing_cost = Micros(4) / std::max(concurrent_procs, 1);
  return config;
}

// CephFS-like deployment over its own store instance (the paper deploys
// each file system on the same kind of RADOS cluster, not the same one).
inline baselines::CephLikeDeployment MakeCephDeployment(
    ClusterConfig store_config, baselines::MdsConfig mds) {
  baselines::CephLikeDeployment d;
  d.store = std::make_shared<ClusterObjectStore>(store_config);
  d.mds = std::make_shared<baselines::MdsCluster>(mds);
  return d;
}

}  // namespace arkfs::bench
