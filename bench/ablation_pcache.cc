// Ablation — permission caching in the real implementation.
//
// Fig. 7 studies pcache at scale with the DES; this ablation measures the
// same mechanism in the *real* client stack at small client counts: N
// clients each create files in a private directory, with the permission
// cache on vs off. Without it, every path resolution sends LOOKUPs to the
// near-root directory leaders over RPC.
#include "bench_util.h"
#include "workloads/mdtest.h"

using namespace arkfs;

namespace {

double RunCreates(bool pcache, int clients) {
  auto env = bench::ArkBenchEnv::Create(ClusterConfig::RadosLike(), pcache);
  std::vector<VfsPtr> mounts;
  std::vector<std::shared_ptr<Client>> raw;
  for (int c = 0; c < clients; ++c) {
    auto client = env.cluster->AddClient().value();
    raw.push_back(client);
    mounts.push_back(env.cluster->WithFuse(client));
  }
  workloads::MdtestConfig config;
  config.num_processes = clients;
  config.files_per_process = 150;
  auto result = workloads::RunMdtestCreateOnly(
      [&](int p) { return mounts[p]; }, config);
  return result.ok() ? result->ops_per_second : 0;
}

}  // namespace

int main() {
  bench::Header("Ablation: permission cache (real implementation)",
                "supports Fig. 7 / paper SIII-C (near-root hotspot)");
  bench::PaperClaim("without pcache, near-root leaders drown in LOOKUP "
                    "traffic as soon as a second client appears");

  std::printf("\n  %8s %16s %16s %10s\n", "clients", "pcache on (ops/s)",
              "pcache off", "ratio");
  for (int clients : {1, 2, 4, 8}) {
    const double on = RunCreates(true, clients);
    const double off = RunCreates(false, clients);
    std::printf("  %8d %16.0f %16.0f %9.1fx\n", clients, on, off,
                off > 0 ? on / off : 0);
  }
  bench::Note("expected shape: ratio ~1x at 1 client, growing with clients");
  return 0;
}
