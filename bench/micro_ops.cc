// Microbenchmarks (google-benchmark) for the primitives whose costs feed
// the DES models and the design discussion: codec, CRC, radix tree,
// metatable operations, journal framing, and the end-to-end local create
// path of the real client (the "local metadata op" the paper's speedups
// rest on).
//
// After the google-benchmark suites, a custom "Async I/O" section measures
// the serial-vs-batched hot paths on a latency-charging RadosLike store and
// prints the per-op latency histogram table (p50/p95/p99).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cache/object_cache.h"
#include "cache/radix_tree.h"
#include "common/codec.h"
#include "common/stats.h"
#include "core/cluster.h"
#include "journal/journal.h"
#include "journal/record.h"
#include "lease/lease_client.h"
#include "meta/metatable.h"
#include "obs/metrics.h"
#include "meta/path.h"
#include "objstore/cluster_store.h"
#include "objstore/memory_store.h"
#include "objstore/stack_builder.h"
#include "objstore/wrappers.h"
#include "prt/translator.h"

namespace arkfs {
namespace {

void BM_UuidGenerate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(NewUuid());
  }
}
BENCHMARK(BM_UuidGenerate);

void BM_Crc32c(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(256)->Arg(4096)->Arg(65536);

void BM_InodeEncodeDecode(benchmark::State& state) {
  Inode inode = MakeInode(NewUuid(), FileType::kRegular, 0644, 1, 1, kRootIno);
  for (auto _ : state) {
    Bytes encoded = inode.Encode();
    auto decoded = Inode::Decode(encoded);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_InodeEncodeDecode);

void BM_PathSplit(benchmark::State& state) {
  const std::string path = "/campaign/project/2026/run-042/checkpoint.tar";
  for (auto _ : state) {
    benchmark::DoNotOptimize(SplitPath(path));
  }
}
BENCHMARK(BM_PathSplit);

void BM_RadixTreeInsertFind(benchmark::State& state) {
  RadixTree<int> tree;
  std::uint64_t key = 0;
  for (auto _ : state) {
    tree.Insert(key % 4096, 1);
    benchmark::DoNotOptimize(tree.Find((key * 7) % 4096));
    ++key;
  }
}
BENCHMARK(BM_RadixTreeInsertFind);

void BM_MetatableInsertLookup(benchmark::State& state) {
  Metatable mt(MakeInode(kRootIno, FileType::kDirectory, 0755, 0, 0, Uuid{}));
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::string name = "file" + std::to_string(i % 10000);
    Dentry d{name, DeterministicUuid(1, i), FileType::kRegular};
    (void)mt.Insert(d, std::nullopt);
    benchmark::DoNotOptimize(mt.Lookup(name));
    ++i;
  }
}
BENCHMARK(BM_MetatableInsertLookup);

void BM_JournalTransactionEncode(benchmark::State& state) {
  journal::Transaction txn;
  txn.seq = 1;
  txn.records.push_back(journal::Record::InodeUpsert(
      MakeInode(NewUuid(), FileType::kRegular, 0644, 1, 1, kRootIno)));
  txn.records.push_back(journal::Record::DentryAdd(
      {"some-file.dat", NewUuid(), FileType::kRegular}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(journal::EncodeTransaction(txn));
  }
}
BENCHMARK(BM_JournalTransactionEncode);

// The headline primitive: one local CREATE on the real client (leader of
// the directory, instant store, no network). This is the cost the DES's
// `local_op` constant is calibrated against.
void BM_ArkfsLocalCreate(benchmark::State& state) {
  auto store = std::make_shared<MemoryObjectStore>();
  auto cluster =
      ArkFsCluster::Create(store, ArkFsClusterOptions::ForTests()).value();
  auto client = cluster->AddClient().value();
  const UserCred cred = UserCred::Root();
  (void)client->Mkdir("/bench", 0755, cred);
  OpenOptions create;
  create.write = true;
  create.create = true;
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto fd = client->Open("/bench/f" + std::to_string(i++), create, cred);
    if (fd.ok()) (void)client->Close(*fd);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArkfsLocalCreate)->Unit(benchmark::kMicrosecond);

void BM_ArkfsLocalStat(benchmark::State& state) {
  auto store = std::make_shared<MemoryObjectStore>();
  auto cluster =
      ArkFsCluster::Create(store, ArkFsClusterOptions::ForTests()).value();
  auto client = cluster->AddClient().value();
  const UserCred cred = UserCred::Root();
  (void)client->Mkdir("/bench", 0755, cred);
  (void)client->WriteFileAt("/bench/target", AsBytes("x"), cred);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client->Stat("/bench/target", cred));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArkfsLocalStat)->Unit(benchmark::kMicrosecond);

double SecondsSince(TimePoint start) {
  return std::chrono::duration<double>(Now() - start).count();
}

// --smoke: the CI overhead gate for the metrics plane, run by ctest.
//
// Differential wall-clock on a full FS stack cannot resolve 2% on shared
// CI hardware (run-to-run medians swing +/-10% in both directions), so the
// gate measures the overhead analytically, each factor where it can be
// measured precisely:
//
//   1. bumps/op  — how many Counter::Add calls one create / one stat
//                  performs, counted exactly by diffing registry snapshots
//                  (every counter increment in the process is visible in
//                  the snapshot sum);
//   2. ns/bump   — the unit cost of one ENABLED bump, timed over a 16M-
//                  iteration tight loop (relaxed fetch_add; stable to
//                  fractions of a nanosecond);
//   3. op time   — the median create / stat latency with the registry on.
//
// overhead% = bumps/op * ns/bump / op_time, with a small slack factor for
// the enabled-check loads the snapshot diff cannot count. Fails (exit 1)
// above 2% on either path.
int RunMetricsOverheadSmoke() {
  // (2) unit cost of one enabled counter bump. Four independent cells in
  // round-robin: instrumentation sprinkled through a metadata op pays the
  // THROUGHPUT cost of relaxed fetch_adds the out-of-order core overlaps
  // with real work, not the serial latency of hammering one cacheline.
  obs::SetMetricsEnabled(true);
  obs::MetricsRegistry probe_reg;
  // Padded: the real cells live in different components' objects, never on
  // one shared cacheline where the locked RMWs would serialize.
  struct PaddedCell {
    alignas(64) obs::Counter c;
  };
  PaddedCell probes[4];
  for (auto& p : probes) p.c.Attach(&probe_reg, "smoke.probe");
  // Probe runs are taken back-to-back with each op slice: this VM drifts
  // between fast and slow phases, and a probe from one phase divided by an
  // op time from another fabricates up to 2x swings. Pairing them puts the
  // same phase in numerator and denominator.
  constexpr int kBumpRounds = 1 << 17;
  const auto probe_bump_ns = [&] {
    TimePoint t0 = Now();
    for (int i = 0; i < kBumpRounds; ++i) {
      for (auto& p : probes) p.c.Add();
    }
    return SecondsSince(t0) * 1e9 / (kBumpRounds * 4.0);
  };
  probe_bump_ns();  // warm

  obs::MetricsRegistry registry;
  ArkFsClusterOptions opts = ArkFsClusterOptions::ForTests();
  opts.client_template.metrics = &registry;
  opts.lease.metrics = &registry;
  auto store = std::make_shared<MemoryObjectStore>();
  auto cluster = ArkFsCluster::Create(store, opts).value();
  auto client = cluster->AddClient("smoke").value();
  const UserCred cred = UserCred::Root();
  (void)client->Mkdir("/bench", 0755, cred);
  OpenOptions create;
  create.write = true;
  create.create = true;

  // Warm leadership, journal, and caches before any timed slice.
  for (int i = 0; i < 64; ++i) {
    auto fd = client->Open("/bench/w" + std::to_string(i), create, cred);
    if (fd.ok()) (void)client->Close(*fd);
  }
  (void)client->WriteFileAt("/bench/target", AsBytes("x"), cred);
  for (int i = 0; i < 512; ++i) (void)client->Stat("/bench/target", cred);

  // Drains deferred work (group commits, checkpoints) so its counter
  // bumps are not misattributed to the next timed window.
  const auto quiesce = [&] {
    (void)client->SyncAll();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  };
  const auto counter_sum = [&] {
    std::uint64_t total = 0;
    for (const auto& [name, value] : registry.Snapshot().counters) {
      total += value;
    }
    return total;
  };
  const auto median = [](std::vector<double> v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };

  // (1) bump census: ops in a tight window, counter sum read immediately
  // after, so only FOREGROUND bumps are attributed. Deferred work (group
  // commits, shard checkpoints) bumps counters from background threads; it
  // adds no latency to the measured call and is excluded by construction.
  constexpr int kSlices = 15;
  constexpr int kCreatesPerSlice = 32;
  constexpr int kStatsPerSlice = 1000;
  int next_name = 0;

  quiesce();
  const std::uint64_t create_bumps_before = counter_sum();
  for (int i = 0; i < kSlices * kCreatesPerSlice; ++i) {
    auto fd =
        client->Open("/bench/f" + std::to_string(next_name++), create, cred);
    if (fd.ok()) (void)client->Close(*fd);
  }
  const double create_bumps_per_op =
      static_cast<double>(counter_sum() - create_bumps_before) /
      (kSlices * kCreatesPerSlice);

  quiesce();
  const std::uint64_t stat_bumps_before = counter_sum();
  for (int i = 0; i < kSlices * kStatsPerSlice; ++i) {
    auto st = client->Stat("/bench/target", cred);
    benchmark::DoNotOptimize(st);
  }
  const double stat_bumps_per_op =
      static_cast<double>(counter_sum() - stat_bumps_before) /
      (kSlices * kStatsPerSlice);

  // (3) per-slice (op latency, bump cost) pairs measured back-to-back.
  std::vector<double> create_ns, stat_ns, create_probe_ns, stat_probe_ns;
  for (int sl = 0; sl < kSlices; ++sl) {
    const TimePoint start = Now();
    for (int i = 0; i < kCreatesPerSlice; ++i) {
      auto fd =
          client->Open("/bench/f" + std::to_string(next_name++), create, cred);
      if (fd.ok()) (void)client->Close(*fd);
    }
    create_ns.push_back(SecondsSince(start) * 1e9 / kCreatesPerSlice);
    create_probe_ns.push_back(probe_bump_ns());
  }
  for (int sl = 0; sl < kSlices; ++sl) {
    const TimePoint start = Now();
    for (int i = 0; i < kStatsPerSlice; ++i) {
      auto st = client->Stat("/bench/target", cred);
      benchmark::DoNotOptimize(st);
    }
    stat_ns.push_back(SecondsSince(start) * 1e9 / kStatsPerSlice);
    stat_probe_ns.push_back(probe_bump_ns());
  }

  // Both hot paths bump only counters (the snapshot diff above counts
  // every counter in the process, and the gauges — asyncio.peak_in_flight,
  // lease.failover.quiet_ms — move only on async batches / role changes,
  // not on create/stat). The slack covers the enabled-check loads on
  // skipped cells, which measure below noise.
  constexpr double kGaugeSlack = 1.25;
  const auto overhead_pct = [&](double bumps_per_op,
                                const std::vector<double>& op_ns,
                                const std::vector<double>& bump_ns) {
    std::vector<double> pct;
    for (std::size_t i = 0; i < op_ns.size(); ++i) {
      pct.push_back(bumps_per_op * kGaugeSlack * bump_ns[i] / op_ns[i] * 100.0);
    }
    return median(pct);
  };
  const double create_op_ns = median(create_ns);
  const double stat_op_ns = median(stat_ns);
  const double create_pct =
      overhead_pct(create_bumps_per_op, create_ns, create_probe_ns);
  const double stat_pct =
      overhead_pct(stat_bumps_per_op, stat_ns, stat_probe_ns);

  std::printf("metrics-overhead smoke (bump-accounting gate)\n");
  std::printf("  counter bump: %.2f ns (median of paired probes)\n",
              median(stat_probe_ns));
  std::printf("  create: %5.1f bumps/op, %8.1f ns/op -> %.3f%% overhead\n",
              create_bumps_per_op, create_op_ns, create_pct);
  std::printf("  stat:   %5.1f bumps/op, %8.1f ns/op -> %.3f%% overhead\n",
              stat_bumps_per_op, stat_op_ns, stat_pct);

  // The stat hot path pays 4 bumps/op since the client.stat.{local,
  // forwarded,delegated} split landed (two pcache hits — one per path
  // component — plus local-meta op plus stat.local); at ~7.5 ns/bump over
  // a ~1.7 us pcache-hit stat that is ~2.2% with slack. 2.5% admits the
  // split while still tripping on a fifth bump (~2.7%).
  constexpr double kBudgetPct = 2.5;
  if (create_pct > kBudgetPct || stat_pct > kBudgetPct) {
    std::printf("FAIL: metrics overhead exceeds %.1f%% budget\n", kBudgetPct);
    return 1;
  }
  std::printf("PASS: within %.1f%% budget\n", kBudgetPct);
  return 0;
}


// Serial-vs-batched comparison of the two converted data hot paths on a
// RadosLike latency-charging store: a multi-chunk sequential read and a
// dirty-cache FlushAll. The serial numbers replicate the pre-batching code
// (one blocking store op per chunk/entry).
void RunAsyncIoSection() {
  constexpr std::uint64_t kChunk = 16ull << 10;
  constexpr std::uint64_t kChunks = 64;
  constexpr std::uint64_t kFileSize = kChunk * kChunks;

  auto stack = objstore::StackBuilder()
                   .Cluster(ClusterConfig::RadosLike())
                   .Latency()
                   .Build()
                   .value();
  const auto& tracking = stack.latency;
  obs::MetricsRegistry registry;
  AsyncIoConfig io_cfg;
  io_cfg.workers = 16;  // deep overlap: the latency here is simulated sleeps
  io_cfg.max_in_flight = 64;
  io_cfg.metrics = &registry;
  auto prt = std::make_shared<Prt>(tracking, kChunk, io_cfg);

  std::printf("\n--- Async I/O: serial vs batched hot paths (RadosLike store, "
              "%llu x %lluKiB chunks) ---\n",
              static_cast<unsigned long long>(kChunks),
              static_cast<unsigned long long>(kChunk >> 10));

  const Uuid read_ino = NewUuid();
  Bytes file(kFileSize, 0xAB);
  if (!prt->WriteData(read_ino, 0, file).ok()) {
    std::printf("  setup write failed; skipping section\n");
    return;
  }

  // Best-of-3 to shave scheduler noise on small CI machines.
  auto best_of = [](int reps, auto&& fn) {
    double best = 1e300;
    for (int i = 0; i < reps; ++i) {
      const TimePoint start = Now();
      fn();
      best = std::min(best, SecondsSince(start));
    }
    return best;
  };

  // Multi-chunk sequential read: per-chunk ReadData calls take the serial
  // single-piece path, one spanning call fans out as a MultiGet.
  const double read_serial = best_of(3, [&] {
    for (std::uint64_t c = 0; c < kChunks; ++c) {
      (void)prt->ReadData(read_ino, c * kChunk, kChunk, kFileSize);
    }
  });
  const double read_batched = best_of(3, [&] {
    (void)prt->ReadData(read_ino, 0, kFileSize, kFileSize);
  });
  std::printf("  %-34s %8.2f ms\n", "sequential read, serial:",
              read_serial * 1e3);
  std::printf("  %-34s %8.2f ms  (%.2fx)\n", "sequential read, batched:",
              read_batched * 1e3, read_serial / read_batched);

  // Dirty-cache flush of 12 entries across 3 files: the serial loop is the
  // pre-batching FlushAll (one blocking WriteData per entry).
  constexpr int kFiles = 3;
  constexpr int kEntriesPerFile = 4;
  std::vector<Uuid> inos;
  for (int f = 0; f < kFiles; ++f) inos.push_back(NewUuid());
  Bytes entry_data(kChunk, 0xCD);

  const double flush_serial = best_of(3, [&] {
    for (int f = 0; f < kFiles; ++f) {
      for (int e = 0; e < kEntriesPerFile; ++e) {
        (void)prt->WriteData(inos[f], e * kChunk, entry_data);
      }
    }
  });

  CacheConfig cache_cfg;
  cache_cfg.entry_size = kChunk;
  cache_cfg.max_entries = 64;
  ObjectCache cache(prt, cache_cfg);
  double flush_batched = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    for (int f = 0; f < kFiles; ++f) {
      for (int e = 0; e < kEntriesPerFile; ++e) {
        (void)cache.Write(inos[f], 0, e * kChunk, entry_data);
      }
    }
    const TimePoint start = Now();
    (void)cache.FlushAll();
    flush_batched = std::min(flush_batched, SecondsSince(start));
  }
  std::printf("  %-34s %8.2f ms\n", "FlushAll 12 dirty entries, serial:",
              flush_serial * 1e3);
  std::printf("  %-34s %8.2f ms  (%.2fx)\n",
              "FlushAll 12 dirty entries, batched:", flush_batched * 1e3,
              flush_serial / flush_batched);

  const obs::MetricsSnapshot snap = registry.Snapshot();
  std::printf("  async-io: ops=%llu batches=%llu helper_runs=%llu "
              "peak_in_flight=%llu overlap_saved=%.2f ms\n",
              static_cast<unsigned long long>(snap.counter("asyncio.ops_submitted")),
              static_cast<unsigned long long>(snap.counter("asyncio.batches")),
              static_cast<unsigned long long>(snap.counter("asyncio.helper_runs")),
              static_cast<unsigned long long>(snap.gauge("asyncio.peak_in_flight")),
              static_cast<double>(snap.counter("asyncio.overlap_saved_ns")) / 1e6);

  std::printf("\n--- Per-op store latency (p50/p95/p99) ---\n%s",
              tracking->latencies().Table().c_str());
}

// Commit and checkpoint wall-clock histograms from the journal manager's
// own OpLatencySet: a burst of creates into one directory, flushed in
// batches so both the journal-append and the dirty-shard checkpoint paths
// accumulate samples.
void RunJournalLatencySection() {
  auto stack = objstore::StackBuilder()
                   .Cluster(ClusterConfig::RadosLike())
                   .Build()
                   .value();
  auto prt = std::make_shared<Prt>(stack.store);
  journal::JournalConfig cfg;
  cfg.shard_policy.override_count = 16;
  journal::JournalManager manager(prt, cfg);

  const Uuid dir = DeterministicUuid(4, 4);
  Inode di = MakeInode(dir, FileType::kDirectory, 0755, 0, 0, kRootIno);
  if (!prt->StoreInode(di).ok()) {
    std::printf("  setup failed; skipping journal latency section\n");
    return;
  }
  manager.RegisterDir(dir);

  constexpr int kBatches = 50;
  constexpr int kPerBatch = 40;
  for (int b = 0; b < kBatches; ++b) {
    std::vector<journal::Record> records;
    records.reserve(kPerBatch);
    for (int i = 0; i < kPerBatch; ++i) {
      records.push_back(journal::Record::DentryAdd(
          {"j" + std::to_string(b * kPerBatch + i),
           DeterministicUuid(5, b * kPerBatch + i), FileType::kRegular}));
    }
    (void)manager.Append(dir, std::move(records));
    if (!manager.FlushDir(dir).ok()) break;
  }

  std::printf("\n--- Journal commit/checkpoint latency (p50/p95/p99, "
              "%d flushes x %d creates, 16 dentry shards) ---\n%s",
              kBatches, kPerBatch, manager.latencies().Table().c_str());
  const auto& jm = manager.metrics();
  std::printf("  checkpoints=%llu shards_loaded=%llu shards_written=%llu "
              "migrations=%llu reshards=%llu\n",
              static_cast<unsigned long long>(jm.checkpoints.value()),
              static_cast<unsigned long long>(jm.dentry_shards_loaded.value()),
              static_cast<unsigned long long>(jm.dentry_shards_written.value()),
              static_cast<unsigned long long>(jm.dentry_migrations.value()),
              static_cast<unsigned long long>(jm.dentry_reshards.value()));
}

// --- Durability-mode ablation: the group-commit pipeline's headline ---
//
// One client bursts creates into one hot directory on a RadosLike
// latency-charging store (150 us per op + 50 us small-write — the cost a
// synchronous journal put actually pays). sync commits in-line before each
// ack; group acks on sequence and lets the dedicated flusher coalesce
// frames; async is the historical 1 s-timer mode. The table is the paper
// trade-off made concrete: what each notch of the durability knob buys in
// create latency, and what dirty window it leaves exposed to a crash.
struct DurabilityRow {
  std::string mode;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double ops_per_sec = 0;
};

std::vector<DurabilityRow> RunDurabilitySection(int creates,
                                                bench::JsonReport* json) {
  const UserCred cred = UserCred::Root();
  std::vector<DurabilityRow> rows;
  std::printf("\n--- Durability modes: %d creates into one hot directory "
              "(RadosLike store) ---\n",
              creates);
  std::printf("  %-8s %10s %10s %10s %12s\n", "mode", "p50(us)", "p95(us)",
              "p99(us)", "creates/s");
  for (auto mode :
       {journal::DurabilityMode::kSync, journal::DurabilityMode::kGroup,
        journal::DurabilityMode::kAsync}) {
    auto store =
        std::make_shared<ClusterObjectStore>(ClusterConfig::RadosLike());
    ArkFsClusterOptions opts = ArkFsClusterOptions::ForTests();
    opts.client_template.journal.durability = mode;
    auto cluster = ArkFsCluster::Create(store, opts).value();
    auto client = cluster->AddClient("bench").value();
    (void)client->Mkdir("/d", 0755, cred);
    OpenOptions create;
    create.write = true;
    create.create = true;
    for (int i = 0; i < 16; ++i) {  // warm: leadership, journal registration
      auto fd = client->Open("/d/warm" + std::to_string(i), create, cred);
      if (fd.ok()) (void)client->Close(*fd);
    }

    std::vector<Nanos> lat;
    lat.reserve(static_cast<std::size_t>(creates));
    const TimePoint t0 = Now();
    for (int i = 0; i < creates; ++i) {
      const TimePoint op0 = Now();
      auto fd = client->Open("/d/f" + std::to_string(i), create, cred);
      if (fd.ok()) (void)client->Close(*fd);
      lat.push_back(Now() - op0);
    }
    const double wall = SecondsSince(t0);
    // The realized dirty window at burst end IS the mode's crash exposure;
    // snapshot it before the drain below hides it.
    const std::string window_text = client->Introspect().journal_text;
    (void)client->SyncAll();  // not timed: drain before teardown

    std::sort(lat.begin(), lat.end());
    auto pct = [&](double p) {
      const auto idx = static_cast<std::size_t>(p * (lat.size() - 1));
      return static_cast<double>(lat[idx].count()) / 1e3;
    };
    DurabilityRow row;
    row.mode = journal::DurabilityModeName(mode);
    row.p50_us = pct(0.50);
    row.p95_us = pct(0.95);
    row.p99_us = pct(0.99);
    row.ops_per_sec = creates / wall;
    std::printf("  %-8s %10.1f %10.1f %10.1f %12.0f\n", row.mode.c_str(),
                row.p50_us, row.p95_us, row.p99_us, row.ops_per_sec);
    // First two lines of the introspection: mode + dirty-window depth.
    std::string head = window_text.substr(0, window_text.find('\n'));
    const auto second = window_text.find('\n');
    if (second != std::string::npos) {
      const auto third = window_text.find('\n', second + 1);
      head = window_text.substr(0, third == std::string::npos
                                       ? window_text.size()
                                       : third);
    }
    for (auto& c : head) {
      if (c == '\n') c = ';';
    }
    std::printf("           [%s]\n", head.c_str());
    if (json != nullptr) {
      json->Add({"create", row.mode, row.p50_us, row.p95_us, row.p99_us,
                 row.ops_per_sec});
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

// --durability-smoke: the CI gate for the group-commit pipeline. On the
// latency-charging store, group-mode create p50 must beat sync-mode create
// p50 by >= 3x (it acks on sequence instead of riding a ~200 us store
// round-trip). Reduced iterations keep the whole run well under 30 s.
int RunDurabilitySmoke(const std::string& json_path) {
  bench::JsonReport json;
  const auto rows = RunDurabilitySection(/*creates=*/250, &json);
  if (!json_path.empty() && !json.WriteTo(json_path)) {
    std::printf("FAIL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  const DurabilityRow* sync_row = nullptr;
  const DurabilityRow* group_row = nullptr;
  for (const auto& r : rows) {
    if (r.mode == "sync") sync_row = &r;
    if (r.mode == "group") group_row = &r;
  }
  if (sync_row == nullptr || group_row == nullptr || group_row->p50_us <= 0) {
    std::printf("FAIL: missing sync/group rows\n");
    return 1;
  }
  const double speedup = sync_row->p50_us / group_row->p50_us;
  std::printf("group-commit smoke: create p50 sync/group = %.2fx "
              "(gate: >= 3x)\n",
              speedup);
  if (speedup < 3.0) {
    std::printf("FAIL: group-commit ack-on-sequence buys < 3x\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

// Lease-acquire latency in steady state vs during an active-manager
// failover: a 3-replica manager group; phase 1 records Acquire round-trips
// with the group healthy, phase 2 kills the active replica mid-run and
// keeps acquiring while a standby takes over (epoch bump + one-lease-term
// quiet period). The failover row's tail percentiles ARE the availability
// gap clients see: p50 stays at the steady-state cost, p99/max absorb the
// detection-plus-quiet-period outage.
void RunLeaseFailoverSection() {
  ArkFsClusterOptions opts = ArkFsClusterOptions::ForTests();
  opts.lease_replicas = 3;
  auto cluster =
      ArkFsCluster::Create(std::make_shared<MemoryObjectStore>(), opts)
          .value();

  lease::LeaseClient::Options lopts;
  for (int r = 0; r < cluster->lease_replica_count(); ++r) {
    lopts.managers.push_back(cluster->lease_manager(r).self_address());
  }
  lopts.initial_backoff = Millis(1);
  lease::LeaseClient lc(cluster->fabric(), "bench-client", lopts);

  OpLatencySet lat({"acquire steady", "acquire failover"});
  constexpr int kSteady = 2000;
  for (int i = 0; i < kSteady; ++i) {
    const Uuid dir = DeterministicUuid(9, static_cast<std::uint64_t>(i));
    const TimePoint t0 = Now();
    auto g = lc.Acquire(dir);
    lat.Record("acquire steady", Now() - t0);
    if (g.ok()) (void)lc.Release(dir, g->token);
  }

  const Nanos lease = cluster->lease_manager().config().lease_period;
  const int active = cluster->ActiveLeaseReplica();
  (void)cluster->KillLeaseReplica(active);
  const TimePoint window_end = Now() + lease * 3;
  int failures = 0;
  for (std::uint64_t i = 0; Now() < window_end; ++i) {
    const Uuid dir = DeterministicUuid(10, i);
    const TimePoint t0 = Now();
    auto g = lc.Acquire(dir);
    lat.Record("acquire failover", Now() - t0);
    if (g.ok()) {
      (void)lc.Release(dir, g->token);
    } else {
      ++failures;
    }
  }
  (void)cluster->ReviveLeaseReplica(active);

  const int now_active = cluster->ActiveLeaseReplica();
  std::printf("\n--- Lease acquire latency: steady vs active-manager failover "
              "(3 replicas, %lld ms lease term) ---\n%s",
              static_cast<long long>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(lease)
                      .count()),
              lat.Table().c_str());
  std::printf("  failover: killed replica %d, failed_acquires=%d, "
              "successor=%d, epoch=%llu\n",
              active, failures, now_active,
              static_cast<unsigned long long>(
                  now_active >= 0 ? cluster->lease_manager(now_active).epoch()
                                  : 0));
}

// Delegated vs forwarded stats on a hot directory led by ANOTHER client:
// two identical clusters, one with read delegations enabled and one without.
// Reports per-op latency and the client.stat.{local,forwarded,delegated}
// serving-path split each run produced.
void RunDelegationSection() {
  constexpr int kFiles = 128;
  constexpr int kStats = 4000;
  const UserCred cred = UserCred::Root();

  auto run_reader = [&](bool delegations, ClientStats* out) {
    ArkFsClusterOptions opts = ArkFsClusterOptions::ForTests();
    opts.client_template.read_delegations = delegations;
    auto cluster =
        ArkFsCluster::Create(std::make_shared<MemoryObjectStore>(), opts)
            .value();
    auto leader = cluster->AddClient("leader").value();
    auto reader = cluster->AddClient("reader").value();
    (void)leader->Mkdir("/hot", 0755, cred);
    for (int i = 0; i < kFiles; ++i) {
      (void)leader->WriteFileAt("/hot/f" + std::to_string(i), AsBytes("x"),
                                cred);
    }
    // Warm pass: adopts the delegation and pulls the slice (or, without
    // delegations, just warms the pcache) so the timed loop is steady state.
    for (int i = 0; i < kFiles; ++i) {
      (void)reader->Stat("/hot/f" + std::to_string(i), cred);
    }
    std::vector<Nanos> lat;
    lat.reserve(kStats);
    for (int i = 0; i < kStats; ++i) {
      const TimePoint t0 = Now();
      auto st = reader->Stat("/hot/f" + std::to_string(i % kFiles), cred);
      benchmark::DoNotOptimize(st);
      lat.push_back(Now() - t0);
    }
    *out = reader->stats();
    std::sort(lat.begin(), lat.end());
    return lat[lat.size() / 2];
  };

  ClientStats deleg_stats, fwd_stats;
  const Nanos deleg_p50 = run_reader(true, &deleg_stats);
  const Nanos fwd_p50 = run_reader(false, &fwd_stats);

  std::printf("\n--- Read delegations: hot-dir stat from a non-leader "
              "(%d files, %d stats) ---\n",
              kFiles, kStats);
  std::printf("  %-34s %8.2f us\n", "stat p50, delegations on:",
              static_cast<double>(deleg_p50.count()) / 1e3);
  std::printf("  %-34s %8.2f us  (%.2fx)\n", "stat p50, delegations off:",
              static_cast<double>(fwd_p50.count()) / 1e3,
              static_cast<double>(fwd_p50.count()) /
                  static_cast<double>(std::max<std::int64_t>(
                      deleg_p50.count(), 1)));
  auto split = [](const char* label, const ClientStats& s) {
    std::printf("  %s stat split: local=%llu forwarded=%llu delegated=%llu "
                "(deleg hits=%llu misses=%llu refetches=%llu)\n",
                label, static_cast<unsigned long long>(s.stat_local),
                static_cast<unsigned long long>(s.stat_forwarded),
                static_cast<unsigned long long>(s.stat_delegated),
                static_cast<unsigned long long>(s.deleg_hits),
                static_cast<unsigned long long>(s.deleg_misses),
                static_cast<unsigned long long>(s.deleg_refetches));
  };
  split("deleg-on ", deleg_stats);
  split("deleg-off", fwd_stats);
}

}  // namespace
}  // namespace arkfs

int main(int argc, char** argv) {
  // Flags google-benchmark does not know must come out of argv first.
  const std::string json_path =
      arkfs::bench::ExtractFlagValue(&argc, argv, "--json");
  if (arkfs::bench::ExtractFlag(&argc, argv, "--durability-smoke")) {
    return arkfs::RunDurabilitySmoke(json_path);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      return arkfs::RunMetricsOverheadSmoke();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  arkfs::RunAsyncIoSection();
  arkfs::RunJournalLatencySection();
  arkfs::bench::JsonReport json;
  arkfs::RunDurabilitySection(/*creates=*/2000, &json);
  arkfs::RunLeaseFailoverSection();
  arkfs::RunDelegationSection();
  if (!json_path.empty()) {
    if (!json.WriteTo(json_path)) {
      std::fprintf(stderr, "micro_ops: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
