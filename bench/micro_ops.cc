// Microbenchmarks (google-benchmark) for the primitives whose costs feed
// the DES models and the design discussion: codec, CRC, radix tree,
// metatable operations, journal framing, and the end-to-end local create
// path of the real client (the "local metadata op" the paper's speedups
// rest on).
#include <benchmark/benchmark.h>

#include "cache/radix_tree.h"
#include "common/codec.h"
#include "core/cluster.h"
#include "journal/record.h"
#include "meta/metatable.h"
#include "meta/path.h"
#include "objstore/memory_store.h"

namespace arkfs {
namespace {

void BM_UuidGenerate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(NewUuid());
  }
}
BENCHMARK(BM_UuidGenerate);

void BM_Crc32c(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(256)->Arg(4096)->Arg(65536);

void BM_InodeEncodeDecode(benchmark::State& state) {
  Inode inode = MakeInode(NewUuid(), FileType::kRegular, 0644, 1, 1, kRootIno);
  for (auto _ : state) {
    Bytes encoded = inode.Encode();
    auto decoded = Inode::Decode(encoded);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_InodeEncodeDecode);

void BM_PathSplit(benchmark::State& state) {
  const std::string path = "/campaign/project/2026/run-042/checkpoint.tar";
  for (auto _ : state) {
    benchmark::DoNotOptimize(SplitPath(path));
  }
}
BENCHMARK(BM_PathSplit);

void BM_RadixTreeInsertFind(benchmark::State& state) {
  RadixTree<int> tree;
  std::uint64_t key = 0;
  for (auto _ : state) {
    tree.Insert(key % 4096, 1);
    benchmark::DoNotOptimize(tree.Find((key * 7) % 4096));
    ++key;
  }
}
BENCHMARK(BM_RadixTreeInsertFind);

void BM_MetatableInsertLookup(benchmark::State& state) {
  Metatable mt(MakeInode(kRootIno, FileType::kDirectory, 0755, 0, 0, Uuid{}));
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::string name = "file" + std::to_string(i % 10000);
    Dentry d{name, DeterministicUuid(1, i), FileType::kRegular};
    (void)mt.Insert(d, std::nullopt);
    benchmark::DoNotOptimize(mt.Lookup(name));
    ++i;
  }
}
BENCHMARK(BM_MetatableInsertLookup);

void BM_JournalTransactionEncode(benchmark::State& state) {
  journal::Transaction txn;
  txn.seq = 1;
  txn.records.push_back(journal::Record::InodeUpsert(
      MakeInode(NewUuid(), FileType::kRegular, 0644, 1, 1, kRootIno)));
  txn.records.push_back(journal::Record::DentryAdd(
      {"some-file.dat", NewUuid(), FileType::kRegular}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(journal::EncodeTransaction(txn));
  }
}
BENCHMARK(BM_JournalTransactionEncode);

// The headline primitive: one local CREATE on the real client (leader of
// the directory, instant store, no network). This is the cost the DES's
// `local_op` constant is calibrated against.
void BM_ArkfsLocalCreate(benchmark::State& state) {
  auto store = std::make_shared<MemoryObjectStore>();
  auto cluster =
      ArkFsCluster::Create(store, ArkFsClusterOptions::ForTests()).value();
  auto client = cluster->AddClient().value();
  const UserCred cred = UserCred::Root();
  (void)client->Mkdir("/bench", 0755, cred);
  OpenOptions create;
  create.write = true;
  create.create = true;
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto fd = client->Open("/bench/f" + std::to_string(i++), create, cred);
    if (fd.ok()) (void)client->Close(*fd);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArkfsLocalCreate)->Unit(benchmark::kMicrosecond);

void BM_ArkfsLocalStat(benchmark::State& state) {
  auto store = std::make_shared<MemoryObjectStore>();
  auto cluster =
      ArkFsCluster::Create(store, ArkFsClusterOptions::ForTests()).value();
  auto client = cluster->AddClient().value();
  const UserCred cred = UserCred::Root();
  (void)client->Mkdir("/bench", 0755, cred);
  (void)client->WriteFileAt("/bench/target", AsBytes("x"), cred);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client->Stat("/bench/target", cred));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArkfsLocalStat)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace arkfs

BENCHMARK_MAIN();
