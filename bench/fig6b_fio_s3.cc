// Figure 6(b) — large-file sequential bandwidth on S3.
//
// Paper setup: the same fio workload on AWS S3, comparing ArkFS (8 MiB and
// 400 MB read-ahead variants) with S3FS and goofys. Observations:
//   * WRITE: ArkFS 5.95x over S3FS — S3FS stages everything through a slow
//     disk cache and uploads at fsync;
//   * READ: ArkFS 3.59x over S3FS (disk-cache bounce), but goofys beats
//     ArkFS-ra8MB thanks to its 400 MB read-ahead; raising ArkFS's
//     read-ahead to 400 MB closes the gap.
//
// Scaled for CI: 8 jobs x 16 MiB on the S3-profile store.
#include <algorithm>

#include "bench_util.h"
#include "common/stats.h"
#include "workloads/fio_like.h"

using namespace arkfs;
using workloads::FioConfig;
using workloads::FioResult;

namespace {

FioConfig BenchConfig() {
  FioConfig config;
  config.num_jobs = 8;
  config.file_size = 16ull << 20;
  config.request_size = 128ull << 10;
  return config;
}

CacheConfig ArkCache(std::uint64_t max_readahead) {
  CacheConfig cache;
  // On a whole-object backend the cache flushes aligned full chunks, so the
  // entry size matches the data chunk size (no read-modify-write).
  cache.entry_size = 4ull << 20;
  cache.max_entries = 96;
  cache.max_readahead = max_readahead;
  cache.initial_readahead = std::min<std::uint64_t>(max_readahead, 4ull << 20);
  // In-flight prefetch depth scales with the window (window / entry size).
  cache.readahead_threads =
      static_cast<int>(std::clamp<std::uint64_t>(max_readahead / (4ull << 20),
                                                 1, 16));
  return cache;
}

FioResult RunArk(std::uint64_t readahead, const FioConfig& base) {
  auto env = bench::ArkBenchEnv::Create(ClusterConfig::S3Like(),
                                        /*pcache=*/true, ArkCache(readahead),
                                        /*chunk_size=*/4ull << 20);
  auto client = env.cluster->AddClient().value();
  VfsPtr mount = env.cluster->WithFuse(client);
  FioConfig config = base;
  config.drop_caches = [&] { (void)mount->DropCaches(); };
  return workloads::RunFio([&](int) { return mount; }, config).value();
}

}  // namespace

int main() {
  bench::Header("Figure 6(b): fio sequential bandwidth on S3",
                "Fig. 6(b) — ArkFS-ra8MB / ArkFS-ra400MB vs S3FS / goofys");
  bench::PaperClaim("WRITE: ArkFS 5.95x S3FS; READ: ArkFS 3.59x S3FS, "
                    "goofys > ArkFS-ra8MB, ArkFS-ra400MB ~ goofys");

  const FioConfig config = BenchConfig();
  std::printf("  config: %d jobs x %llu MiB, %llu KiB requests, S3 profile "
              "(4 ms op latency, whole-object PUT)\n",
              config.num_jobs,
              static_cast<unsigned long long>(config.file_size >> 20),
              static_cast<unsigned long long>(config.request_size >> 10));

  struct RunRow {
    std::string name;
    FioResult result;
  };
  std::vector<RunRow> rows;

  rows.push_back({"ArkFS-ra8MB", RunArk(8ull << 20, config)});
  rows.push_back({"ArkFS-ra400MB", RunArk(400ull << 20, config)});
  {
    auto store = std::make_shared<ClusterObjectStore>(ClusterConfig::S3Like());
    // One mount per job, all sharing the node's local cache volume.
    auto node_disk = std::make_shared<sim::SharedLink>(250e6);
    std::vector<VfsPtr> mounts;
    for (int j = 0; j < config.num_jobs; ++j) {
      mounts.push_back(baselines::MakeS3FsLike(store, node_disk));
    }
    FioConfig c = config;
    c.drop_caches = [&] {
      for (auto& m : mounts) (void)m->DropCaches();
    };
    rows.push_back(
        {"S3FS",
         workloads::RunFio([&](int j) { return mounts[j]; }, c).value()});
  }
  {
    auto store = std::make_shared<ClusterObjectStore>(ClusterConfig::S3Like());
    std::vector<VfsPtr> mounts;
    for (int j = 0; j < config.num_jobs; ++j) {
      mounts.push_back(baselines::MakeGoofysLike(store));
    }
    FioConfig c = config;
    c.drop_caches = [&] {
      for (auto& m : mounts) (void)m->DropCaches();
    };
    rows.push_back(
        {"goofys",
         workloads::RunFio([&](int j) { return mounts[j]; }, c).value()});
  }

  std::printf("\n  %-16s %14s %14s\n", "system", "WRITE", "READ");
  for (const auto& row : rows) {
    std::printf("  %-16s %14s %14s\n", row.name.c_str(),
                FormatBytes(row.result.write_bw_bps).c_str(),
                FormatBytes(row.result.read_bw_bps).c_str());
  }

  std::printf("\n");
  bench::Row("WRITE ArkFS/S3FS",
             bench::Fmt("%.2fx (paper: 5.95x)",
                        rows[0].result.write_bw_bps / rows[2].result.write_bw_bps));
  bench::Row("READ ArkFS-8MB/S3FS",
             bench::Fmt("%.2fx (paper: 3.59x)",
                        rows[0].result.read_bw_bps / rows[2].result.read_bw_bps));
  bench::Row("READ goofys/ArkFS-8MB",
             bench::Fmt("%.2fx (paper: goofys clearly ahead)",
                        rows[3].result.read_bw_bps / rows[0].result.read_bw_bps));
  bench::Row("READ ArkFS-400MB/goofys",
             bench::Fmt("%.2fx (paper: ~1x)",
                        rows[1].result.read_bw_bps / rows[3].result.read_bw_bps));
  return 0;
}
