// Figure 1 — motivation: a single dedicated metadata server does not scale.
//
// "Massive file creations are performed while varying the number of clients
// up to 512. The dotted line indicates the ideal, linearly scalable
// performance." The paper observes throughput collapsing as the client
// count grows beyond 4.
//
// Runs the DES CephFS model (1 MDS) across client counts and prints raw and
// ideal-relative throughput.
#include "bench_util.h"
#include "common/stats.h"
#include "des/scalability.h"

using namespace arkfs;

int main() {
  bench::Header("Figure 1: file-create scalability of a single MDS",
                "Fig. 1 (motivation, CephFS with 1 MDS, 1..512 clients)");
  bench::Note("model: DES, MDS dispatch width 1, service 30us + 0.2us/client"
              " session overhead, RTT 200us");
  bench::PaperClaim(
      "throughput is far from linear and collapses beyond ~4 clients");

  des::CephScaleParams params;  // defaults = single MDS
  double single_client = 0;
  double peak = 0;
  int peak_clients = 1;
  std::printf("\n  %8s %14s %12s %12s\n", "clients", "ops/s", "vs-1client",
              "vs-ideal");
  for (int clients : {1, 2, 4, 8, 16, 32, 64, 128, 256, 512}) {
    des::ScaleWorkload workload;
    workload.clients = clients;
    workload.files_per_client = 2000;
    const auto result = des::SimulateCephCreates(params, workload);
    if (clients == 1) single_client = result.ops_per_second;
    if (result.ops_per_second > peak) {
      peak = result.ops_per_second;
      peak_clients = clients;
    }
    const double speedup = result.ops_per_second / single_client;
    const double ideal_frac = speedup / clients;
    std::printf("  %8d %14.0f %11.2fx %11.1f%%\n", clients,
                result.ops_per_second, speedup, ideal_frac * 100);
  }
  std::printf("\n");
  bench::Row("peak at", std::to_string(peak_clients) + " clients");
  bench::Note("shape check: peak within 2..16 clients and throughput at 512 "
              "clients below the peak reproduces the paper's collapse");
  return 0;
}
