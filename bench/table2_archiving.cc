// Table II — tar archiving/unarchiving scenarios.
//
// Paper setup: 32 concurrent processes, each handling one MS-COCO dataset
// (41K images, ~7 GB) stored on an EBS volume with ~1 GB/s sequential
// bandwidth.
//   Archiving:   tar the dataset from EBS, write the tar to campaign
//                storage (the FS under test), then extract it into
//                categorized directories on the FS.
//   Unarchiving: tar an archived directory on the FS and move the tar back
//                to the burst buffer (EBS).
// Paper results (seconds):           CephFS-F  CephFS-K   ArkFS  speedup
//   Archiving                         2016.9     450.3    297.6  6.78/1.51x
//   Unarchiving                       1791.2     837.4    475.9  3.76/1.76x
//
// Scaled for CI: 6 processes x 400 files x ~12 KB.
#include <thread>

#include "bench_util.h"
#include "common/env_config.h"
#include "workloads/dataset.h"
#include "workloads/minitar.h"

using namespace arkfs;
using baselines::MdsConfig;
using workloads::DatasetFile;

namespace {

constexpr int kProcesses = 6;
constexpr int kFilesPerDataset = 400;

struct Timings {
  double archive_sec = 0;
  double unarchive_sec = 0;
};

// Physical-over-logical ratio of the data plane ('d'-prefixed chunks and,
// under EC, their shard/manifest derivatives): ~3.0 for 3-way replication,
// ~1.5 for k=4/m=2 parity plus framing.
double DataPlaneOverhead(ClusterObjectStore* nodes, EcStore* ec) {
  auto keys = nodes->List("d");
  if (!keys.ok()) return 0;
  std::uint64_t physical = 0, logical = 0;
  for (const auto& key : *keys) {
    auto head = nodes->Head(key);
    if (!head.ok()) continue;
    physical += head->size * nodes->ReplicaNodes(key).size();
    if (!ec) logical += head->size;
  }
  if (ec) {
    auto stripes = ec->ListStripes("d");
    if (!stripes.ok()) return 0;
    for (const auto& key : *stripes) {
      auto manifest = ec->LoadManifest(key);
      if (manifest.ok()) logical += manifest->object_size;
    }
  }
  return logical == 0 ? 0
                      : static_cast<double>(physical) /
                            static_cast<double>(logical);
}

Timings RunScenario(const std::function<VfsPtr(int)>& mount_for,
                    const std::vector<std::vector<DatasetFile>>& datasets,
                    sim::SimDisk& ebs) {
  const UserCred cred = UserCred::Root();
  Timings t;

  // --- Archiving: EBS -> tar on FS -> extract into categorized dirs ---
  {
    const bool verbose = env::EnvConfig::FromEnvironment().bench_verbose();
    const TimePoint start = Now();
    std::vector<std::thread> threads;
    for (int p = 0; p < kProcesses; ++p) {
      threads.emplace_back([&, p, verbose] {
        VfsPtr vfs = mount_for(p);
        const std::string base = "/campaign/proc" + std::to_string(p);
        if (!vfs->MkdirAll(base, 0755, cred).ok()) return;
        std::vector<std::string> names;
        for (const auto& f : datasets[p]) {
          names.push_back("p" + std::to_string(p) + "/" + f.name);
        }
        const std::string tar_path = base + "/dataset.tar";
        const TimePoint t0 = Now();
        if (!workloads::ArchiveDiskToVfs(ebs, names, *vfs, tar_path, cred).ok())
          return;
        const TimePoint t1 = Now();
        (void)workloads::ExtractVfsArchive(*vfs, tar_path, base + "/extracted",
                                           cred);
        const TimePoint t2 = Now();
        (void)vfs->SyncAll();
        if (verbose) {
          std::printf("    proc%d tar=%.2fs extract=%.2fs sync=%.2fs\n", p,
                      std::chrono::duration<double>(t1 - t0).count(),
                      std::chrono::duration<double>(t2 - t1).count(),
                      std::chrono::duration<double>(Now() - t2).count());
        }
      });
    }
    for (auto& th : threads) th.join();
    t.archive_sec = std::chrono::duration<double>(Now() - start).count();
  }

  // --- Unarchiving: FS dir -> tar -> EBS ---
  {
    const TimePoint start = Now();
    std::vector<std::thread> threads;
    for (int p = 0; p < kProcesses; ++p) {
      threads.emplace_back([&, p] {
        VfsPtr vfs = mount_for(p);
        const std::string src = "/campaign/proc" + std::to_string(p) +
                                "/extracted/p" + std::to_string(p);
        (void)workloads::ArchiveVfsToDisk(
            *vfs, src, ebs, "retrieved_p" + std::to_string(p) + ".tar", cred);
      });
    }
    for (auto& th : threads) th.join();
    t.unarchive_sec = std::chrono::duration<double>(Now() - start).count();
  }
  return t;
}

}  // namespace

int main() {
  bench::Header("Table II: tar archiving / unarchiving",
                "Table II — MS-COCO-like datasets moved between a 1 GB/s "
                "burst-buffer volume and campaign storage");
  bench::PaperClaim("ArkFS 6.78x/1.51x faster archiving than CephFS-F/K; "
                    "3.76x/1.76x faster unarchiving");
  std::printf("  config: %d processes x %d files (MS-COCO-shaped sizes)\n",
              kProcesses, kFilesPerDataset);

  // One synthetic dataset per process, staged on the EBS-like volume.
  auto spec = workloads::DatasetSpec::Scaled(kFilesPerDataset);
  std::vector<std::vector<DatasetFile>> datasets;
  sim::SimDisk ebs(sim::DiskConfig::EbsLike());
  std::uint64_t total_bytes = 0;
  for (int p = 0; p < kProcesses; ++p) {
    spec.seed = 100 + p;
    datasets.push_back(workloads::GenerateDataset(spec));
    total_bytes += workloads::TotalBytes(datasets.back());
    // Stage under a per-process prefix.
    for (const auto& f : datasets.back()) {
      DatasetFile prefixed = f;
      prefixed.name = "p" + std::to_string(p) + "/" + f.name;
      if (!ebs.WriteFile(prefixed.name, workloads::DatasetFileContent(f)).ok()) {
        std::fprintf(stderr, "failed to stage dataset\n");
        return 1;
      }
    }
  }
  std::printf("  dataset: %.1f MB total on the burst buffer\n",
              static_cast<double>(total_bytes) / 1e6);

  struct RunRow {
    std::string name;
    Timings t;
    double overhead = 0;  // physical/logical data bytes; 0 = not measured
  };
  std::vector<RunRow> rows;

  // The paper's client nodes have 64-96 GB of RAM: the page/object caches
  // comfortably hold a dataset, so none of the systems evict mid-run.
  CacheConfig roomy;
  roomy.max_entries = 8192;

  {
    auto env = bench::ArkBenchEnv::Create(ClusterConfig::RadosLike(),
                                          /*pcache=*/true, roomy);
    auto client = env.cluster->AddClient().value();
    VfsPtr mount = env.cluster->WithFuse(client, bench::ScaledFuse(kProcesses));
    RunRow row{"ArkFS", RunScenario([&](int) { return mount; }, datasets, ebs)};
    row.overhead = DataPlaneOverhead(
        static_cast<ClusterObjectStore*>(env.store.get()), nullptr);
    rows.push_back(std::move(row));
  }
  {
    // The erasure-coded archive tier: data-chunk durability comes from
    // k=4/m=2 parity stripes instead of 3-way copies.
    ClusterConfig ec_config = ClusterConfig::RadosLike();
    ec_config.replication = 1;
    auto env = bench::ArkBenchEnv::Create(ec_config, /*pcache=*/true, roomy,
                                          /*chunk_size=*/0,
                                          /*read_delegations=*/true,
                                          DataPlacement::kEc);
    auto client = env.cluster->AddClient().value();
    VfsPtr mount = env.cluster->WithFuse(client, bench::ScaledFuse(kProcesses));
    RunRow row{"ArkFS-EC",
               RunScenario([&](int) { return mount; }, datasets, ebs)};
    row.overhead =
        DataPlaneOverhead(static_cast<ClusterObjectStore*>(env.store.get()),
                          env.cluster->ec_store().get());
    rows.push_back(std::move(row));
  }
  {
    // The tiered data path: ingest lands on the replica hot tier at full
    // speed (nothing demotes mid-run: the migrator loop is not started),
    // then one forced migration pass pushes every data chunk down to the
    // EC cold tier and cold reads are verified under a node outage.
    // replication=1 like the EC row: capacity here is cold-dominant, the
    // durability of demoted bytes comes from parity.
    ClusterConfig tier_config = ClusterConfig::RadosLike();
    tier_config.replication = 1;
    auto env = bench::ArkBenchEnv::Create(
        tier_config, /*pcache=*/true, roomy, /*chunk_size=*/0,
        /*read_delegations=*/true, DataPlacement::kTiered,
        [](ArkFsClusterOptions* o) {
          o->migrate.demote_after = Nanos(0);  // demote on sight when run
          o->migrate.promote_reads = 0;        // no promotion churn mid-bench
        });
    auto client = env.cluster->AddClient().value();
    VfsPtr mount = env.cluster->WithFuse(client, bench::ScaledFuse(kProcesses));
    RunRow row{"ArkFS-Tiered",
               RunScenario([&](int) { return mount; }, datasets, ebs)};

    // Force the archive cold and account the pass.
    auto* nodes = static_cast<ClusterObjectStore*>(env.store.get());
    const TimePoint demote_start = Now();
    auto report = env.cluster->migrator()->RunOnce();
    const double demote_sec =
        std::chrono::duration<double>(Now() - demote_start).count();
    if (report.ok()) {
      std::printf("  tiered: forced demotion %s in %.2fs\n",
                  report->ToString().c_str(), demote_sec);
    }
    row.overhead = DataPlaneOverhead(nodes, env.cluster->ec_store().get());

    // Cold reads must survive any single node outage (k=4/m=2 tolerates 2).
    // Read straight through the tiering store: with replication=1 a down
    // node also hides unrelated metadata objects, which is a cluster-config
    // property, not a tiering one.
    const auto& tiering = env.cluster->tiering_store();
    auto cold_keys = tiering->ListTiered("d");
    std::size_t cold_checked = 0, cold_ok = 0;
    if (cold_keys.ok()) {
      std::vector<std::pair<std::string, Bytes>> expected;
      for (const auto& key : *cold_keys) {
        if (expected.size() >= 32) break;
        auto data = env.cluster->store()->Get(key);
        if (data.ok()) expected.emplace_back(key, std::move(*data));
      }
      nodes->SetNodeDown(0, true);
      for (const auto& [key, bytes] : expected) {
        ++cold_checked;
        auto data = env.cluster->store()->Get(key);
        if (data.ok() && *data == bytes) ++cold_ok;
      }
      nodes->SetNodeDown(0, false);
    }
    std::printf("  tiered: cold reads under 1-node outage: %zu/%zu intact\n",
                cold_ok, cold_checked);
    rows.push_back(std::move(row));
  }
  {
    auto d = bench::MakeCephDeployment(ClusterConfig::RadosLike(),
                                       MdsConfig::Ranks(1));
    baselines::CephLikeConfig kc = baselines::CephLikeConfig::KernelLike();
    kc.cache = roomy;
    VfsPtr mount = std::make_shared<baselines::CephLikeVfs>(d.mds, d.store, kc);
    rows.push_back(
        {"CephFS-K", RunScenario([&](int) { return mount; }, datasets, ebs)});
  }
  {
    auto d = bench::MakeCephDeployment(ClusterConfig::RadosLike(),
                                       MdsConfig::Ranks(1));
    VfsPtr mount = d.FuseMount(bench::ScaledFuse(kProcesses));
    rows.push_back(
        {"CephFS-F", RunScenario([&](int) { return mount; }, datasets, ebs)});
  }

  std::printf("\n  %-12s %16s %16s %14s\n", "system", "Archiving(s)",
              "Unarchiving(s)", "storage(x)");
  for (const auto& row : rows) {
    if (row.overhead > 0) {
      std::printf("  %-12s %16.2f %16.2f %14.2f\n", row.name.c_str(),
                  row.t.archive_sec, row.t.unarchive_sec, row.overhead);
    } else {
      std::printf("  %-12s %16.2f %16.2f %14s\n", row.name.c_str(),
                  row.t.archive_sec, row.t.unarchive_sec, "-");
    }
  }

  // Look rows up by name — the table grew past the point where positional
  // indexing was safe.
  auto row_named = [&rows](const char* name) -> const RunRow& {
    for (const auto& row : rows) {
      if (row.name == name) return row;
    }
    static RunRow missing;
    return missing;
  };
  const RunRow& ark = row_named("ArkFS");
  const RunRow& ec = row_named("ArkFS-EC");
  const RunRow& tiered = row_named("ArkFS-Tiered");
  const RunRow& ceph_k = row_named("CephFS-K");
  const RunRow& ceph_f = row_named("CephFS-F");

  std::printf("\n");
  bench::Row("Archiving speedup",
             bench::Fmt("%.2fx vs CephFS-F, ",
                        ceph_f.t.archive_sec / ark.t.archive_sec) +
                 bench::Fmt("%.2fx vs CephFS-K (paper: 6.78x / 1.51x)",
                            ceph_k.t.archive_sec / ark.t.archive_sec));
  bench::Row("Unarchiving speedup",
             bench::Fmt("%.2fx vs CephFS-F, ",
                        ceph_f.t.unarchive_sec / ark.t.unarchive_sec) +
                 bench::Fmt("%.2fx vs CephFS-K (paper: 3.76x / 1.76x)",
                            ceph_k.t.unarchive_sec / ark.t.unarchive_sec));
  bench::Row("EC storage saving",
             bench::Fmt("%.2fx replica vs ", ark.overhead) +
                 bench::Fmt("%.2fx erasure-coded data bytes "
                            "(ideal k=4/m=2: 1.50x)",
                            ec.overhead));
  bench::Row("Tiered trade-off",
             bench::Fmt("ingest %.2fx the replica row's time ",
                        tiered.t.archive_sec / ark.t.archive_sec) +
                 bench::Fmt("(target <= 1.10x), cold bytes at %.2fx "
                            "(target <= 1.60x)",
                            tiered.overhead));
  return 0;
}
