// Ablation — read-ahead window size (paper §III-D, supports Fig. 6).
//
// Sequential read bandwidth as a function of the maximum read-ahead window
// (the paper's default is 8 MiB, matching CephFS; goofys uses 400 MB).
// Also verifies the offset-0 fast path: reading from the beginning opens
// the window to the maximum immediately.
#include <algorithm>

#include "bench_util.h"
#include "common/stats.h"
#include "workloads/fio_like.h"

using namespace arkfs;

namespace {

double ReadBandwidth(std::uint64_t readahead) {
  CacheConfig cache;
  cache.entry_size = 2ull << 20;
  cache.max_entries = 128;
  cache.max_readahead = readahead;
  cache.initial_readahead =
      std::min<std::uint64_t>(readahead, 2ull << 20);
  cache.readahead_threads = static_cast<int>(
      std::clamp<std::uint64_t>(readahead / (2ull << 20), 1, 16));
  auto env = bench::ArkBenchEnv::Create(ClusterConfig::RadosLike(),
                                        /*pcache=*/true, cache);
  auto client = env.cluster->AddClient().value();
  VfsPtr mount = env.cluster->WithFuse(client);

  workloads::FioConfig config;
  config.num_jobs = 8;
  config.file_size = 12ull << 20;
  config.drop_caches = [&] { (void)mount->DropCaches(); };
  auto result = workloads::RunFio([&](int) { return mount; }, config);
  return result.ok() ? result->read_bw_bps : 0;
}

}  // namespace

int main() {
  bench::Header("Ablation: read-ahead window size",
                "supports Fig. 6 (8 MiB default; goofys-style 400 MB)");
  std::printf("\n  %14s %14s\n", "max window", "READ bw");
  for (std::uint64_t window : {128ull << 10, 1ull << 20, 8ull << 20,
                               64ull << 20}) {
    const double bw = ReadBandwidth(window);
    std::printf("  %11llu KB %14s\n",
                static_cast<unsigned long long>(window >> 10),
                FormatBytes(bw).c_str());
  }
  bench::Note("expected shape: bandwidth rises with the window until the "
              "store's node bandwidth saturates");
  return 0;
}
