file(REMOVE_RECURSE
  "CMakeFiles/ablation_pcache.dir/ablation_pcache.cc.o"
  "CMakeFiles/ablation_pcache.dir/ablation_pcache.cc.o.d"
  "ablation_pcache"
  "ablation_pcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
