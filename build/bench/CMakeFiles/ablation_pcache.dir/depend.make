# Empty dependencies file for ablation_pcache.
# This may be replaced when dependencies are built.
