# Empty dependencies file for fig1_mds_scalability.
# This may be replaced when dependencies are built.
