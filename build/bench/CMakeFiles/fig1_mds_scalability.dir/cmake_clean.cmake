file(REMOVE_RECURSE
  "CMakeFiles/fig1_mds_scalability.dir/fig1_mds_scalability.cc.o"
  "CMakeFiles/fig1_mds_scalability.dir/fig1_mds_scalability.cc.o.d"
  "fig1_mds_scalability"
  "fig1_mds_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_mds_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
