# Empty compiler generated dependencies file for fig4_mdtest_easy.
# This may be replaced when dependencies are built.
