file(REMOVE_RECURSE
  "CMakeFiles/fig4_mdtest_easy.dir/fig4_mdtest_easy.cc.o"
  "CMakeFiles/fig4_mdtest_easy.dir/fig4_mdtest_easy.cc.o.d"
  "fig4_mdtest_easy"
  "fig4_mdtest_easy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mdtest_easy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
