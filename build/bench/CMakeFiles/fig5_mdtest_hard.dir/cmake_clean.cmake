file(REMOVE_RECURSE
  "CMakeFiles/fig5_mdtest_hard.dir/fig5_mdtest_hard.cc.o"
  "CMakeFiles/fig5_mdtest_hard.dir/fig5_mdtest_hard.cc.o.d"
  "fig5_mdtest_hard"
  "fig5_mdtest_hard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_mdtest_hard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
