# Empty compiler generated dependencies file for fig5_mdtest_hard.
# This may be replaced when dependencies are built.
