file(REMOVE_RECURSE
  "CMakeFiles/ablation_journal.dir/ablation_journal.cc.o"
  "CMakeFiles/ablation_journal.dir/ablation_journal.cc.o.d"
  "ablation_journal"
  "ablation_journal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_journal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
