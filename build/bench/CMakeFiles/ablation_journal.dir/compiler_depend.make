# Empty compiler generated dependencies file for ablation_journal.
# This may be replaced when dependencies are built.
