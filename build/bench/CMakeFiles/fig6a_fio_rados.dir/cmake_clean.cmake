file(REMOVE_RECURSE
  "CMakeFiles/fig6a_fio_rados.dir/fig6a_fio_rados.cc.o"
  "CMakeFiles/fig6a_fio_rados.dir/fig6a_fio_rados.cc.o.d"
  "fig6a_fio_rados"
  "fig6a_fio_rados.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_fio_rados.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
