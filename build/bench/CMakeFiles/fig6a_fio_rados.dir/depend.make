# Empty dependencies file for fig6a_fio_rados.
# This may be replaced when dependencies are built.
