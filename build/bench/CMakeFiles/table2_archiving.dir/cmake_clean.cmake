file(REMOVE_RECURSE
  "CMakeFiles/table2_archiving.dir/table2_archiving.cc.o"
  "CMakeFiles/table2_archiving.dir/table2_archiving.cc.o.d"
  "table2_archiving"
  "table2_archiving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_archiving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
