# Empty dependencies file for table2_archiving.
# This may be replaced when dependencies are built.
