# Empty compiler generated dependencies file for fig6b_fio_s3.
# This may be replaced when dependencies are built.
