file(REMOVE_RECURSE
  "CMakeFiles/fig6b_fio_s3.dir/fig6b_fio_s3.cc.o"
  "CMakeFiles/fig6b_fio_s3.dir/fig6b_fio_s3.cc.o.d"
  "fig6b_fio_s3"
  "fig6b_fio_s3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_fio_s3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
