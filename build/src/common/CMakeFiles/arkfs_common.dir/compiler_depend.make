# Empty compiler generated dependencies file for arkfs_common.
# This may be replaced when dependencies are built.
