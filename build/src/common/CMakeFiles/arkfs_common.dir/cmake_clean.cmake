file(REMOVE_RECURSE
  "CMakeFiles/arkfs_common.dir/clock.cc.o"
  "CMakeFiles/arkfs_common.dir/clock.cc.o.d"
  "CMakeFiles/arkfs_common.dir/codec.cc.o"
  "CMakeFiles/arkfs_common.dir/codec.cc.o.d"
  "CMakeFiles/arkfs_common.dir/log.cc.o"
  "CMakeFiles/arkfs_common.dir/log.cc.o.d"
  "CMakeFiles/arkfs_common.dir/stats.cc.o"
  "CMakeFiles/arkfs_common.dir/stats.cc.o.d"
  "CMakeFiles/arkfs_common.dir/status.cc.o"
  "CMakeFiles/arkfs_common.dir/status.cc.o.d"
  "CMakeFiles/arkfs_common.dir/thread_pool.cc.o"
  "CMakeFiles/arkfs_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/arkfs_common.dir/uuid.cc.o"
  "CMakeFiles/arkfs_common.dir/uuid.cc.o.d"
  "libarkfs_common.a"
  "libarkfs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arkfs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
