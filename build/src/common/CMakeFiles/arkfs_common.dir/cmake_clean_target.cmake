file(REMOVE_RECURSE
  "libarkfs_common.a"
)
