# Empty compiler generated dependencies file for arkfs_meta.
# This may be replaced when dependencies are built.
