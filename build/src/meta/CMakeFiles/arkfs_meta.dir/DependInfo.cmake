
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/meta/acl.cc" "src/meta/CMakeFiles/arkfs_meta.dir/acl.cc.o" "gcc" "src/meta/CMakeFiles/arkfs_meta.dir/acl.cc.o.d"
  "/root/repo/src/meta/dentry.cc" "src/meta/CMakeFiles/arkfs_meta.dir/dentry.cc.o" "gcc" "src/meta/CMakeFiles/arkfs_meta.dir/dentry.cc.o.d"
  "/root/repo/src/meta/inode.cc" "src/meta/CMakeFiles/arkfs_meta.dir/inode.cc.o" "gcc" "src/meta/CMakeFiles/arkfs_meta.dir/inode.cc.o.d"
  "/root/repo/src/meta/metatable.cc" "src/meta/CMakeFiles/arkfs_meta.dir/metatable.cc.o" "gcc" "src/meta/CMakeFiles/arkfs_meta.dir/metatable.cc.o.d"
  "/root/repo/src/meta/path.cc" "src/meta/CMakeFiles/arkfs_meta.dir/path.cc.o" "gcc" "src/meta/CMakeFiles/arkfs_meta.dir/path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/arkfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
