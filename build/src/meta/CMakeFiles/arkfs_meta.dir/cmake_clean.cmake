file(REMOVE_RECURSE
  "CMakeFiles/arkfs_meta.dir/acl.cc.o"
  "CMakeFiles/arkfs_meta.dir/acl.cc.o.d"
  "CMakeFiles/arkfs_meta.dir/dentry.cc.o"
  "CMakeFiles/arkfs_meta.dir/dentry.cc.o.d"
  "CMakeFiles/arkfs_meta.dir/inode.cc.o"
  "CMakeFiles/arkfs_meta.dir/inode.cc.o.d"
  "CMakeFiles/arkfs_meta.dir/metatable.cc.o"
  "CMakeFiles/arkfs_meta.dir/metatable.cc.o.d"
  "CMakeFiles/arkfs_meta.dir/path.cc.o"
  "CMakeFiles/arkfs_meta.dir/path.cc.o.d"
  "libarkfs_meta.a"
  "libarkfs_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arkfs_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
