file(REMOVE_RECURSE
  "libarkfs_meta.a"
)
