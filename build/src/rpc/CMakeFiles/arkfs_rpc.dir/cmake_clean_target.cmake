file(REMOVE_RECURSE
  "libarkfs_rpc.a"
)
