# Empty compiler generated dependencies file for arkfs_rpc.
# This may be replaced when dependencies are built.
