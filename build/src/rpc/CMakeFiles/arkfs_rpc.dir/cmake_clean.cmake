file(REMOVE_RECURSE
  "CMakeFiles/arkfs_rpc.dir/fabric.cc.o"
  "CMakeFiles/arkfs_rpc.dir/fabric.cc.o.d"
  "CMakeFiles/arkfs_rpc.dir/tcp.cc.o"
  "CMakeFiles/arkfs_rpc.dir/tcp.cc.o.d"
  "libarkfs_rpc.a"
  "libarkfs_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arkfs_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
