file(REMOVE_RECURSE
  "CMakeFiles/arkfs_workloads.dir/dataset.cc.o"
  "CMakeFiles/arkfs_workloads.dir/dataset.cc.o.d"
  "CMakeFiles/arkfs_workloads.dir/fio_like.cc.o"
  "CMakeFiles/arkfs_workloads.dir/fio_like.cc.o.d"
  "CMakeFiles/arkfs_workloads.dir/mdtest.cc.o"
  "CMakeFiles/arkfs_workloads.dir/mdtest.cc.o.d"
  "CMakeFiles/arkfs_workloads.dir/minitar.cc.o"
  "CMakeFiles/arkfs_workloads.dir/minitar.cc.o.d"
  "libarkfs_workloads.a"
  "libarkfs_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arkfs_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
