file(REMOVE_RECURSE
  "libarkfs_workloads.a"
)
