
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/dataset.cc" "src/workloads/CMakeFiles/arkfs_workloads.dir/dataset.cc.o" "gcc" "src/workloads/CMakeFiles/arkfs_workloads.dir/dataset.cc.o.d"
  "/root/repo/src/workloads/fio_like.cc" "src/workloads/CMakeFiles/arkfs_workloads.dir/fio_like.cc.o" "gcc" "src/workloads/CMakeFiles/arkfs_workloads.dir/fio_like.cc.o.d"
  "/root/repo/src/workloads/mdtest.cc" "src/workloads/CMakeFiles/arkfs_workloads.dir/mdtest.cc.o" "gcc" "src/workloads/CMakeFiles/arkfs_workloads.dir/mdtest.cc.o.d"
  "/root/repo/src/workloads/minitar.cc" "src/workloads/CMakeFiles/arkfs_workloads.dir/minitar.cc.o" "gcc" "src/workloads/CMakeFiles/arkfs_workloads.dir/minitar.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/arkfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/arkfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lease/CMakeFiles/arkfs_lease.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/arkfs_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/journal/CMakeFiles/arkfs_journal.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/arkfs_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/prt/CMakeFiles/arkfs_prt.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/arkfs_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/objstore/CMakeFiles/arkfs_objstore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/arkfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
