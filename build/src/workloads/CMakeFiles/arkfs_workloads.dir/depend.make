# Empty dependencies file for arkfs_workloads.
# This may be replaced when dependencies are built.
