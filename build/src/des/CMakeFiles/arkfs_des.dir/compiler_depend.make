# Empty compiler generated dependencies file for arkfs_des.
# This may be replaced when dependencies are built.
