file(REMOVE_RECURSE
  "libarkfs_des.a"
)
