file(REMOVE_RECURSE
  "CMakeFiles/arkfs_des.dir/scalability.cc.o"
  "CMakeFiles/arkfs_des.dir/scalability.cc.o.d"
  "CMakeFiles/arkfs_des.dir/sim.cc.o"
  "CMakeFiles/arkfs_des.dir/sim.cc.o.d"
  "libarkfs_des.a"
  "libarkfs_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arkfs_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
