# Empty compiler generated dependencies file for arkfs_baselines.
# This may be replaced when dependencies are built.
