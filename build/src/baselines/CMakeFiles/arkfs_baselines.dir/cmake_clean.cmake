file(REMOVE_RECURSE
  "CMakeFiles/arkfs_baselines.dir/cephfs_like.cc.o"
  "CMakeFiles/arkfs_baselines.dir/cephfs_like.cc.o.d"
  "CMakeFiles/arkfs_baselines.dir/marfs_like.cc.o"
  "CMakeFiles/arkfs_baselines.dir/marfs_like.cc.o.d"
  "CMakeFiles/arkfs_baselines.dir/mds.cc.o"
  "CMakeFiles/arkfs_baselines.dir/mds.cc.o.d"
  "CMakeFiles/arkfs_baselines.dir/s3fs_like.cc.o"
  "CMakeFiles/arkfs_baselines.dir/s3fs_like.cc.o.d"
  "libarkfs_baselines.a"
  "libarkfs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arkfs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
