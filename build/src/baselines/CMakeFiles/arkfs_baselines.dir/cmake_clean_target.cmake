file(REMOVE_RECURSE
  "libarkfs_baselines.a"
)
