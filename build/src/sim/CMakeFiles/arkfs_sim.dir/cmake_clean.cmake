file(REMOVE_RECURSE
  "CMakeFiles/arkfs_sim.dir/disk.cc.o"
  "CMakeFiles/arkfs_sim.dir/disk.cc.o.d"
  "CMakeFiles/arkfs_sim.dir/models.cc.o"
  "CMakeFiles/arkfs_sim.dir/models.cc.o.d"
  "CMakeFiles/arkfs_sim.dir/shared_link.cc.o"
  "CMakeFiles/arkfs_sim.dir/shared_link.cc.o.d"
  "libarkfs_sim.a"
  "libarkfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arkfs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
