file(REMOVE_RECURSE
  "libarkfs_sim.a"
)
