
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/disk.cc" "src/sim/CMakeFiles/arkfs_sim.dir/disk.cc.o" "gcc" "src/sim/CMakeFiles/arkfs_sim.dir/disk.cc.o.d"
  "/root/repo/src/sim/models.cc" "src/sim/CMakeFiles/arkfs_sim.dir/models.cc.o" "gcc" "src/sim/CMakeFiles/arkfs_sim.dir/models.cc.o.d"
  "/root/repo/src/sim/shared_link.cc" "src/sim/CMakeFiles/arkfs_sim.dir/shared_link.cc.o" "gcc" "src/sim/CMakeFiles/arkfs_sim.dir/shared_link.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/arkfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
