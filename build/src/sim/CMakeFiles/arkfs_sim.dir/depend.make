# Empty dependencies file for arkfs_sim.
# This may be replaced when dependencies are built.
