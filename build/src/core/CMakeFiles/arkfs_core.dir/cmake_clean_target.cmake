file(REMOVE_RECURSE
  "libarkfs_core.a"
)
