# Empty compiler generated dependencies file for arkfs_core.
# This may be replaced when dependencies are built.
