file(REMOVE_RECURSE
  "CMakeFiles/arkfs_core.dir/client.cc.o"
  "CMakeFiles/arkfs_core.dir/client.cc.o.d"
  "CMakeFiles/arkfs_core.dir/client_ops.cc.o"
  "CMakeFiles/arkfs_core.dir/client_ops.cc.o.d"
  "CMakeFiles/arkfs_core.dir/cluster.cc.o"
  "CMakeFiles/arkfs_core.dir/cluster.cc.o.d"
  "CMakeFiles/arkfs_core.dir/fuse_sim.cc.o"
  "CMakeFiles/arkfs_core.dir/fuse_sim.cc.o.d"
  "CMakeFiles/arkfs_core.dir/vfs.cc.o"
  "CMakeFiles/arkfs_core.dir/vfs.cc.o.d"
  "CMakeFiles/arkfs_core.dir/wire.cc.o"
  "CMakeFiles/arkfs_core.dir/wire.cc.o.d"
  "libarkfs_core.a"
  "libarkfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arkfs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
