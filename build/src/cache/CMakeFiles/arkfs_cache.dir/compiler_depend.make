# Empty compiler generated dependencies file for arkfs_cache.
# This may be replaced when dependencies are built.
