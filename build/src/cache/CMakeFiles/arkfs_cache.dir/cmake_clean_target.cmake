file(REMOVE_RECURSE
  "libarkfs_cache.a"
)
