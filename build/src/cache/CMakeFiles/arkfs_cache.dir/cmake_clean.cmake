file(REMOVE_RECURSE
  "CMakeFiles/arkfs_cache.dir/object_cache.cc.o"
  "CMakeFiles/arkfs_cache.dir/object_cache.cc.o.d"
  "libarkfs_cache.a"
  "libarkfs_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arkfs_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
