# Empty dependencies file for arkfs_objstore.
# This may be replaced when dependencies are built.
