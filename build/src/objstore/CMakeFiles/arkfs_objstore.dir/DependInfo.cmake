
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objstore/async_io.cc" "src/objstore/CMakeFiles/arkfs_objstore.dir/async_io.cc.o" "gcc" "src/objstore/CMakeFiles/arkfs_objstore.dir/async_io.cc.o.d"
  "/root/repo/src/objstore/cluster_store.cc" "src/objstore/CMakeFiles/arkfs_objstore.dir/cluster_store.cc.o" "gcc" "src/objstore/CMakeFiles/arkfs_objstore.dir/cluster_store.cc.o.d"
  "/root/repo/src/objstore/disk_store.cc" "src/objstore/CMakeFiles/arkfs_objstore.dir/disk_store.cc.o" "gcc" "src/objstore/CMakeFiles/arkfs_objstore.dir/disk_store.cc.o.d"
  "/root/repo/src/objstore/memory_store.cc" "src/objstore/CMakeFiles/arkfs_objstore.dir/memory_store.cc.o" "gcc" "src/objstore/CMakeFiles/arkfs_objstore.dir/memory_store.cc.o.d"
  "/root/repo/src/objstore/object_store.cc" "src/objstore/CMakeFiles/arkfs_objstore.dir/object_store.cc.o" "gcc" "src/objstore/CMakeFiles/arkfs_objstore.dir/object_store.cc.o.d"
  "/root/repo/src/objstore/registry.cc" "src/objstore/CMakeFiles/arkfs_objstore.dir/registry.cc.o" "gcc" "src/objstore/CMakeFiles/arkfs_objstore.dir/registry.cc.o.d"
  "/root/repo/src/objstore/wrappers.cc" "src/objstore/CMakeFiles/arkfs_objstore.dir/wrappers.cc.o" "gcc" "src/objstore/CMakeFiles/arkfs_objstore.dir/wrappers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/arkfs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/arkfs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
