file(REMOVE_RECURSE
  "CMakeFiles/arkfs_objstore.dir/async_io.cc.o"
  "CMakeFiles/arkfs_objstore.dir/async_io.cc.o.d"
  "CMakeFiles/arkfs_objstore.dir/cluster_store.cc.o"
  "CMakeFiles/arkfs_objstore.dir/cluster_store.cc.o.d"
  "CMakeFiles/arkfs_objstore.dir/disk_store.cc.o"
  "CMakeFiles/arkfs_objstore.dir/disk_store.cc.o.d"
  "CMakeFiles/arkfs_objstore.dir/memory_store.cc.o"
  "CMakeFiles/arkfs_objstore.dir/memory_store.cc.o.d"
  "CMakeFiles/arkfs_objstore.dir/object_store.cc.o"
  "CMakeFiles/arkfs_objstore.dir/object_store.cc.o.d"
  "CMakeFiles/arkfs_objstore.dir/registry.cc.o"
  "CMakeFiles/arkfs_objstore.dir/registry.cc.o.d"
  "CMakeFiles/arkfs_objstore.dir/wrappers.cc.o"
  "CMakeFiles/arkfs_objstore.dir/wrappers.cc.o.d"
  "libarkfs_objstore.a"
  "libarkfs_objstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arkfs_objstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
