file(REMOVE_RECURSE
  "libarkfs_objstore.a"
)
