file(REMOVE_RECURSE
  "CMakeFiles/arkfs_lease.dir/lease_client.cc.o"
  "CMakeFiles/arkfs_lease.dir/lease_client.cc.o.d"
  "CMakeFiles/arkfs_lease.dir/lease_manager.cc.o"
  "CMakeFiles/arkfs_lease.dir/lease_manager.cc.o.d"
  "CMakeFiles/arkfs_lease.dir/wire.cc.o"
  "CMakeFiles/arkfs_lease.dir/wire.cc.o.d"
  "libarkfs_lease.a"
  "libarkfs_lease.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arkfs_lease.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
