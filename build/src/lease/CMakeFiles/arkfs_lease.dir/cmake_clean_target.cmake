file(REMOVE_RECURSE
  "libarkfs_lease.a"
)
