
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lease/lease_client.cc" "src/lease/CMakeFiles/arkfs_lease.dir/lease_client.cc.o" "gcc" "src/lease/CMakeFiles/arkfs_lease.dir/lease_client.cc.o.d"
  "/root/repo/src/lease/lease_manager.cc" "src/lease/CMakeFiles/arkfs_lease.dir/lease_manager.cc.o" "gcc" "src/lease/CMakeFiles/arkfs_lease.dir/lease_manager.cc.o.d"
  "/root/repo/src/lease/wire.cc" "src/lease/CMakeFiles/arkfs_lease.dir/wire.cc.o" "gcc" "src/lease/CMakeFiles/arkfs_lease.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/arkfs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/arkfs_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/arkfs_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/arkfs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
