# Empty dependencies file for arkfs_lease.
# This may be replaced when dependencies are built.
