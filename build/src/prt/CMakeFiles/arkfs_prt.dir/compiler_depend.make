# Empty compiler generated dependencies file for arkfs_prt.
# This may be replaced when dependencies are built.
