file(REMOVE_RECURSE
  "libarkfs_prt.a"
)
