file(REMOVE_RECURSE
  "CMakeFiles/arkfs_prt.dir/key_schema.cc.o"
  "CMakeFiles/arkfs_prt.dir/key_schema.cc.o.d"
  "CMakeFiles/arkfs_prt.dir/translator.cc.o"
  "CMakeFiles/arkfs_prt.dir/translator.cc.o.d"
  "libarkfs_prt.a"
  "libarkfs_prt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arkfs_prt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
