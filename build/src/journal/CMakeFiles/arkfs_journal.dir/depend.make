# Empty dependencies file for arkfs_journal.
# This may be replaced when dependencies are built.
