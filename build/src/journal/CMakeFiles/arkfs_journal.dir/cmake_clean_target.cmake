file(REMOVE_RECURSE
  "libarkfs_journal.a"
)
