file(REMOVE_RECURSE
  "CMakeFiles/arkfs_journal.dir/journal.cc.o"
  "CMakeFiles/arkfs_journal.dir/journal.cc.o.d"
  "CMakeFiles/arkfs_journal.dir/record.cc.o"
  "CMakeFiles/arkfs_journal.dir/record.cc.o.d"
  "libarkfs_journal.a"
  "libarkfs_journal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arkfs_journal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
