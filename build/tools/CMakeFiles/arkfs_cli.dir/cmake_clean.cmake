file(REMOVE_RECURSE
  "CMakeFiles/arkfs_cli.dir/arkfs_cli.cpp.o"
  "CMakeFiles/arkfs_cli.dir/arkfs_cli.cpp.o.d"
  "arkfs_cli"
  "arkfs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arkfs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
