# Empty dependencies file for arkfs_cli.
# This may be replaced when dependencies are built.
