file(REMOVE_RECURSE
  "CMakeFiles/archive_pipeline.dir/archive_pipeline.cpp.o"
  "CMakeFiles/archive_pipeline.dir/archive_pipeline.cpp.o.d"
  "archive_pipeline"
  "archive_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archive_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
