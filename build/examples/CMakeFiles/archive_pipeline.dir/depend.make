# Empty dependencies file for archive_pipeline.
# This may be replaced when dependencies are built.
