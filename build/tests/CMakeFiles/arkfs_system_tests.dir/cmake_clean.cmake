file(REMOVE_RECURSE
  "CMakeFiles/arkfs_system_tests.dir/baselines_test.cc.o"
  "CMakeFiles/arkfs_system_tests.dir/baselines_test.cc.o.d"
  "CMakeFiles/arkfs_system_tests.dir/des_test.cc.o"
  "CMakeFiles/arkfs_system_tests.dir/des_test.cc.o.d"
  "CMakeFiles/arkfs_system_tests.dir/property_test.cc.o"
  "CMakeFiles/arkfs_system_tests.dir/property_test.cc.o.d"
  "CMakeFiles/arkfs_system_tests.dir/workloads_test.cc.o"
  "CMakeFiles/arkfs_system_tests.dir/workloads_test.cc.o.d"
  "arkfs_system_tests"
  "arkfs_system_tests.pdb"
  "arkfs_system_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arkfs_system_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
