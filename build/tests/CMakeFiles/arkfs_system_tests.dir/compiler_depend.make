# Empty compiler generated dependencies file for arkfs_system_tests.
# This may be replaced when dependencies are built.
