file(REMOVE_RECURSE
  "CMakeFiles/arkfs_unit_tests.dir/async_io_test.cc.o"
  "CMakeFiles/arkfs_unit_tests.dir/async_io_test.cc.o.d"
  "CMakeFiles/arkfs_unit_tests.dir/common_test.cc.o"
  "CMakeFiles/arkfs_unit_tests.dir/common_test.cc.o.d"
  "CMakeFiles/arkfs_unit_tests.dir/meta_test.cc.o"
  "CMakeFiles/arkfs_unit_tests.dir/meta_test.cc.o.d"
  "CMakeFiles/arkfs_unit_tests.dir/objstore_test.cc.o"
  "CMakeFiles/arkfs_unit_tests.dir/objstore_test.cc.o.d"
  "CMakeFiles/arkfs_unit_tests.dir/prt_test.cc.o"
  "CMakeFiles/arkfs_unit_tests.dir/prt_test.cc.o.d"
  "CMakeFiles/arkfs_unit_tests.dir/radix_tree_test.cc.o"
  "CMakeFiles/arkfs_unit_tests.dir/radix_tree_test.cc.o.d"
  "arkfs_unit_tests"
  "arkfs_unit_tests.pdb"
  "arkfs_unit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arkfs_unit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
