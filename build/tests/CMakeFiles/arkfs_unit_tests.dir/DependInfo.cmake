
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/async_io_test.cc" "tests/CMakeFiles/arkfs_unit_tests.dir/async_io_test.cc.o" "gcc" "tests/CMakeFiles/arkfs_unit_tests.dir/async_io_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/arkfs_unit_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/arkfs_unit_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/meta_test.cc" "tests/CMakeFiles/arkfs_unit_tests.dir/meta_test.cc.o" "gcc" "tests/CMakeFiles/arkfs_unit_tests.dir/meta_test.cc.o.d"
  "/root/repo/tests/objstore_test.cc" "tests/CMakeFiles/arkfs_unit_tests.dir/objstore_test.cc.o" "gcc" "tests/CMakeFiles/arkfs_unit_tests.dir/objstore_test.cc.o.d"
  "/root/repo/tests/prt_test.cc" "tests/CMakeFiles/arkfs_unit_tests.dir/prt_test.cc.o" "gcc" "tests/CMakeFiles/arkfs_unit_tests.dir/prt_test.cc.o.d"
  "/root/repo/tests/radix_tree_test.cc" "tests/CMakeFiles/arkfs_unit_tests.dir/radix_tree_test.cc.o" "gcc" "tests/CMakeFiles/arkfs_unit_tests.dir/radix_tree_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/arkfs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/arkfs_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/objstore/CMakeFiles/arkfs_objstore.dir/DependInfo.cmake"
  "/root/repo/build/src/prt/CMakeFiles/arkfs_prt.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/arkfs_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/arkfs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
