# Empty dependencies file for arkfs_unit_tests.
# This may be replaced when dependencies are built.
