file(REMOVE_RECURSE
  "CMakeFiles/arkfs_core_tests.dir/client_multi_test.cc.o"
  "CMakeFiles/arkfs_core_tests.dir/client_multi_test.cc.o.d"
  "CMakeFiles/arkfs_core_tests.dir/client_test.cc.o"
  "CMakeFiles/arkfs_core_tests.dir/client_test.cc.o.d"
  "CMakeFiles/arkfs_core_tests.dir/crash_test.cc.o"
  "CMakeFiles/arkfs_core_tests.dir/crash_test.cc.o.d"
  "CMakeFiles/arkfs_core_tests.dir/fuse_sim_test.cc.o"
  "CMakeFiles/arkfs_core_tests.dir/fuse_sim_test.cc.o.d"
  "CMakeFiles/arkfs_core_tests.dir/robustness_test.cc.o"
  "CMakeFiles/arkfs_core_tests.dir/robustness_test.cc.o.d"
  "arkfs_core_tests"
  "arkfs_core_tests.pdb"
  "arkfs_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arkfs_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
