# Empty dependencies file for arkfs_core_tests.
# This may be replaced when dependencies are built.
