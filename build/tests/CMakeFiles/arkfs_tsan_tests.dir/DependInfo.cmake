
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/object_cache.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/cache/object_cache.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/cache/object_cache.cc.o.d"
  "/root/repo/src/common/clock.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/common/clock.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/common/clock.cc.o.d"
  "/root/repo/src/common/codec.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/common/codec.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/common/codec.cc.o.d"
  "/root/repo/src/common/log.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/common/log.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/common/log.cc.o.d"
  "/root/repo/src/common/stats.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/common/stats.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/common/status.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/common/thread_pool.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/common/thread_pool.cc.o.d"
  "/root/repo/src/common/uuid.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/common/uuid.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/common/uuid.cc.o.d"
  "/root/repo/src/journal/journal.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/journal/journal.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/journal/journal.cc.o.d"
  "/root/repo/src/journal/record.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/journal/record.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/journal/record.cc.o.d"
  "/root/repo/src/meta/acl.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/meta/acl.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/meta/acl.cc.o.d"
  "/root/repo/src/meta/dentry.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/meta/dentry.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/meta/dentry.cc.o.d"
  "/root/repo/src/meta/inode.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/meta/inode.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/meta/inode.cc.o.d"
  "/root/repo/src/meta/metatable.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/meta/metatable.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/meta/metatable.cc.o.d"
  "/root/repo/src/meta/path.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/meta/path.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/meta/path.cc.o.d"
  "/root/repo/src/objstore/async_io.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/objstore/async_io.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/objstore/async_io.cc.o.d"
  "/root/repo/src/objstore/cluster_store.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/objstore/cluster_store.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/objstore/cluster_store.cc.o.d"
  "/root/repo/src/objstore/disk_store.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/objstore/disk_store.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/objstore/disk_store.cc.o.d"
  "/root/repo/src/objstore/memory_store.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/objstore/memory_store.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/objstore/memory_store.cc.o.d"
  "/root/repo/src/objstore/object_store.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/objstore/object_store.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/objstore/object_store.cc.o.d"
  "/root/repo/src/objstore/registry.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/objstore/registry.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/objstore/registry.cc.o.d"
  "/root/repo/src/objstore/wrappers.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/objstore/wrappers.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/objstore/wrappers.cc.o.d"
  "/root/repo/src/prt/key_schema.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/prt/key_schema.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/prt/key_schema.cc.o.d"
  "/root/repo/src/prt/translator.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/prt/translator.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/prt/translator.cc.o.d"
  "/root/repo/src/sim/disk.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/sim/disk.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/sim/disk.cc.o.d"
  "/root/repo/src/sim/models.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/sim/models.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/sim/models.cc.o.d"
  "/root/repo/src/sim/shared_link.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/sim/shared_link.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/__/src/sim/shared_link.cc.o.d"
  "/root/repo/tests/async_io_test.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/async_io_test.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/async_io_test.cc.o.d"
  "/root/repo/tests/cache_test.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/cache_test.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/cache_test.cc.o.d"
  "/root/repo/tests/journal_test.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/journal_test.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/journal_test.cc.o.d"
  "/root/repo/tests/objstore_test.cc" "tests/CMakeFiles/arkfs_tsan_tests.dir/objstore_test.cc.o" "gcc" "tests/CMakeFiles/arkfs_tsan_tests.dir/objstore_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
