# Empty dependencies file for arkfs_tsan_tests.
# This may be replaced when dependencies are built.
