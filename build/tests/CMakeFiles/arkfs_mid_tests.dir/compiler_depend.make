# Empty compiler generated dependencies file for arkfs_mid_tests.
# This may be replaced when dependencies are built.
