file(REMOVE_RECURSE
  "CMakeFiles/arkfs_mid_tests.dir/cache_test.cc.o"
  "CMakeFiles/arkfs_mid_tests.dir/cache_test.cc.o.d"
  "CMakeFiles/arkfs_mid_tests.dir/journal_test.cc.o"
  "CMakeFiles/arkfs_mid_tests.dir/journal_test.cc.o.d"
  "CMakeFiles/arkfs_mid_tests.dir/lease_test.cc.o"
  "CMakeFiles/arkfs_mid_tests.dir/lease_test.cc.o.d"
  "CMakeFiles/arkfs_mid_tests.dir/rpc_test.cc.o"
  "CMakeFiles/arkfs_mid_tests.dir/rpc_test.cc.o.d"
  "CMakeFiles/arkfs_mid_tests.dir/sim_test.cc.o"
  "CMakeFiles/arkfs_mid_tests.dir/sim_test.cc.o.d"
  "CMakeFiles/arkfs_mid_tests.dir/tcp_test.cc.o"
  "CMakeFiles/arkfs_mid_tests.dir/tcp_test.cc.o.d"
  "arkfs_mid_tests"
  "arkfs_mid_tests.pdb"
  "arkfs_mid_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arkfs_mid_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
