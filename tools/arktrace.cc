// arktrace — pretty-printer for ArkFS span dumps.
//
// A client's Tracer ring exports its spans in a small binary form
// (Tracer::DumpBinary, magic "AKTR"); Vfs::Introspect() surfaces the same
// records in memory. This tool decodes a dump file (or stdin) and prints
// one line per span, grouped by trace and indented by depth — the offline
// half of the observability plane.
//
// Usage:
//   arktrace <dump-file>     decode a binary span dump
//   arktrace -               decode a dump from stdin
//   arktrace --demo          generate a representative trace and print it
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>

#include "obs/trace.h"

namespace arkfs {
namespace {

int PrintDump(const Bytes& blob) {
  auto spans = obs::Tracer::ParseBinary(blob);
  if (!spans.ok()) {
    std::fprintf(stderr, "arktrace: not a span dump: %s\n",
                 spans.status().ToString().c_str());
    return 1;
  }
  std::fputs(obs::Tracer::FormatText(*spans).c_str(), stdout);
  std::printf("%zu span(s)\n", spans->size());
  return 0;
}

// A canned create-request trace: what Introspect() shows after the first
// create in a fresh directory. Exercises the full encode -> decode ->
// format path, so it doubles as the ctest smoke for this binary.
int RunDemo() {
  obs::Tracer tracer(64);
  {
    obs::RootSpan root(&tracer, "vfs.open");
    obs::Span dispatch("client.run_dir_op");
    {
      obs::Span acquire("lease.acquire");
      obs::Span manager("lease.manager.acquire");
    }
    {
      obs::Span fence("journal.fence");
      obs::Span put("objstore.put");
    }
    obs::Span append("journal.append");
  }
  const Bytes blob = tracer.DumpBinary();
  std::printf("demo trace (%zu bytes encoded):\n",
              static_cast<std::size_t>(blob.size()));
  return PrintDump(blob);
}

}  // namespace
}  // namespace arkfs

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: arktrace <dump-file>|-|--demo\n");
    return 2;
  }
  if (std::strcmp(argv[1], "--demo") == 0) return arkfs::RunDemo();

  arkfs::Bytes blob;
  if (std::strcmp(argv[1], "-") == 0) {
    std::string data(std::istreambuf_iterator<char>(std::cin), {});
    blob.assign(data.begin(), data.end());
  } else {
    std::ifstream in(argv[1], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "arktrace: cannot open %s\n", argv[1]);
      return 2;
    }
    std::string data(std::istreambuf_iterator<char>(in), {});
    blob.assign(data.begin(), data.end());
  }
  return arkfs::PrintDump(blob);
}
