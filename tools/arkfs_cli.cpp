// arkfs_cli — a command-line utility for ArkFS images on a persistent
// on-disk object store. State survives across invocations, so this behaves
// like a userspace mount you drive one command at a time:
//
//   arkfs_cli <store-dir> format
//   arkfs_cli <store-dir> mkdir /campaign/2026
//   arkfs_cli <store-dir> put local.dat /campaign/2026/data.bin
//   arkfs_cli <store-dir> ls /campaign
//   arkfs_cli <store-dir> cat /campaign/2026/data.bin
//   arkfs_cli <store-dir> get /campaign/2026/data.bin restored.dat
//   arkfs_cli <store-dir> stat /campaign/2026/data.bin
//   arkfs_cli <store-dir> mv /a /b
//   arkfs_cli <store-dir> rm /campaign/2026/data.bin
//   arkfs_cli <store-dir> rmdir /campaign/2026
//   arkfs_cli <store-dir> chmod 640 /campaign/2026/data.bin
//   arkfs_cli <store-dir> ln -s /target /link
//   arkfs_cli <store-dir> objects          # dump the raw object keys
//   arkfs_cli <store-dir> introspect [p]   # delegation cache + metrics plane
//   arkfs_cli <store-dir> scrub            # one EC scrub pass + ec.* metrics
//   arkfs_cli <store-dir> tier [status]    # hot/cold placement summary
//   arkfs_cli <store-dir> tier migrate     # one migration pass (policy knobs)
//   arkfs_cli <store-dir> tier demote      # one pass demoting everything idle
//   arkfs_cli <store-dir> config           # dump every ARKFS_* knob
//
// Every invocation spins up a single-client deployment (client + lease
// manager) over the disk store, performs the operation, and shuts down
// cleanly (flush + lease release) — the "administrator process" usage the
// paper targets.
//
// ARKFS_PLACEMENT=ec switches data chunks to the erasure-coded archive tier
// (k=4/m=2 stripes, ec_store.h); `scrub` implies it. ARKFS_PLACEMENT=tiered
// (or ARKFS_TIERING=1) runs the hot/cold tiered data path (tiering_store.h);
// the `tier` commands imply it. The image's resident layout is probed up
// front (ProbePlacementEvidence): a mode that cannot decode the resident
// data chunks — tiered over data-path EC stripes, or EC over tier
// pointers/cold copies — fails fast instead of silently serving kNoEnt,
// and when no placement is forced the CLI auto-selects the one the image
// was written with. All knobs parse through common/env_config; `config`
// dumps what this process would pick up.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <unistd.h>

#include "common/env_config.h"
#include "core/cluster.h"
#include "objstore/disk_store.h"

using namespace arkfs;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: arkfs_cli <store-dir> <command> [args...]\n"
               "commands: format | mkdir <p> | ls <p> | put <local> <p> |\n"
               "          get <p> <local> | cat <p> | rm <p> | rmdir <p> |\n"
               "          mv <from> <to> | stat <p> | chmod <octal> <p> |\n"
               "          ln -s <target> <p> | objects | introspect [p] |\n"
               "          scrub | tier [status|migrate|demote] | config\n"
               "env: ARKFS_PLACEMENT=replica|ec|tiered  data-chunk placement\n"
               "     ARKFS_TIERING=1  force tiered placement\n"
               "     ARKFS_DURABILITY=sync|group|async  journal ack mode\n"
               "     ARKFS_TENANT=<id>  QoS tenant this invocation runs as\n"
               "     (`config` dumps every knob, its source and its value)\n");
  return 2;
}

int Fail(const Status& st, const char* what) {
  std::fprintf(stderr, "arkfs_cli: %s: %s\n", what, st.ToString().c_str());
  return 1;
}

Result<Bytes> ReadLocalFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return ErrStatus(Errc::kNoEnt, path);
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return data;
}

Status WriteLocalFile(const std::string& path, ByteSpan data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return ErrStatus(Errc::kIo, "cannot open " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out.good() ? Status::Ok() : ErrStatus(Errc::kIo, "short write");
}

const char* TypeName(FileType t) {
  switch (t) {
    case FileType::kDirectory: return "dir";
    case FileType::kSymlink: return "link";
    default: return "file";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string store_dir = argv[1];
  const std::string command = argv[2];
  const UserCred user{static_cast<std::uint32_t>(getuid()),
                      static_cast<std::uint32_t>(getgid()),
                      {}};

  const env::EnvConfig env_config = env::EnvConfig::FromEnvironment();
  if (command == "config") {
    std::printf("%s", env_config.DumpText().c_str());
    for (const auto& knob : env_config.knobs()) {
      if (!knob.valid) return 1;
    }
    return 0;
  }
  // A malformed knob fails the invocation up front — running with a
  // silently ignored env override is worse than an error.
  for (const auto& knob : env_config.knobs()) {
    if (!knob.valid) {
      return Fail(ErrStatus(Errc::kInval, knob.raw + " (" + knob.error + ")"),
                  knob.name.c_str());
    }
  }

  auto store_or = DiskObjectStore::Open(store_dir);
  if (!store_or.ok()) return Fail(store_or.status(), "open store");
  ObjectStorePtr store = *store_or;

  if (command == "format") {
    Status st = Client::Format(store, /*force=*/argc > 3 &&
                                          std::strcmp(argv[3], "-f") == 0);
    if (!st.ok()) return Fail(st, "format");
    std::printf("formatted ArkFS image in %s\n", store_dir.c_str());
    return 0;
  }
  if (command == "objects") {
    auto keys = store->List("");
    if (!keys.ok()) return Fail(keys.status(), "list objects");
    for (const auto& key : *keys) {
      auto meta = store->Head(key);
      std::printf("%-40s %10llu bytes\n", key.substr(0, 40).c_str(),
                  meta.ok() ? static_cast<unsigned long long>(meta->size) : 0);
    }
    std::printf("(%zu objects)\n", keys->size());
    return 0;
  }

  ArkFsClusterOptions options;  // instant network: this is a local image
  options.format_store = false;
  const std::string tier_sub =
      (command == "tier" && argc >= 4) ? argv[3] : "status";
  // The data path must match how the image's resident chunks were written:
  // the tiered path cannot decode data-path EC stripes, and the EC path
  // cannot decode tier pointers / cold copies. Probe the image up front and
  // refuse a forced mismatch; with nothing forced, follow the evidence.
  auto evidence_or = ProbePlacementEvidence(*store);
  if (!evidence_or.ok()) return Fail(evidence_or.status(), "probe image");
  const PlacementEvidence evidence = *evidence_or;
  const bool want_tiered = command == "tier" || env_config.tiering() ||
                           env_config.placement() == "tiered";
  const bool want_ec =
      !want_tiered && (command == "scrub" || env_config.placement() == "ec");
  const env::Knob* placement_knob = env_config.Find("ARKFS_PLACEMENT");
  const bool replica_forced = placement_knob && placement_knob->from_env &&
                              env_config.placement() == "replica";
  if (want_tiered && evidence.ec_data_chunks) {
    return Fail(ErrStatus(Errc::kInval,
                          "image holds data chunks written as EC stripes; "
                          "the tiered data path cannot decode them — rerun "
                          "with ARKFS_PLACEMENT=ec"),
                "placement");
  }
  if (want_ec && evidence.tier_records) {
    return Fail(ErrStatus(Errc::kInval,
                          "image holds tier pointers/cold copies; the EC "
                          "data path cannot decode them — rerun with "
                          "ARKFS_PLACEMENT=tiered"),
                "placement");
  }
  if (replica_forced && (evidence.ec_data_chunks || evidence.tier_records)) {
    return Fail(ErrStatus(Errc::kInval,
                          "image holds EC/tiered data chunks unreadable on "
                          "the replica path; drop ARKFS_PLACEMENT=replica"),
                "placement");
  }
  if (!want_tiered && !want_ec && evidence.ec_data_chunks &&
      evidence.tier_records) {
    return Fail(ErrStatus(Errc::kInval,
                          "image mixes data-path EC stripes with tier "
                          "records; no single data path can read both"),
                "placement");
  }
  if (want_tiered || (!want_ec && !replica_forced && evidence.tier_records)) {
    options.placement = DataPlacement::kTiered;
    // An operator-driven pass should not be rate-limited; `tier demote`
    // additionally ignores idle clocks and pushes everything down.
    options.migrate.objects_per_sec = 0;
    if (command == "tier" && tier_sub == "demote") {
      options.migrate.demote_after = Nanos(0);
    }
  } else if (want_ec || (!replica_forced && evidence.ec_data_chunks)) {
    options.placement = DataPlacement::kEc;
  }
  if (!env_config.durability().empty()) {
    auto mode = journal::ParseDurabilityMode(env_config.durability());
    if (!mode.ok()) return Fail(mode.status(), "ARKFS_DURABILITY");
    options.client_template.journal.durability = *mode;
  }
  if (env_config.tenant()) {
    options.client_template.tenant = *env_config.tenant();
  }
  auto cluster_or = ArkFsCluster::Create(store, options);
  if (!cluster_or.ok()) return Fail(cluster_or.status(), "start");
  auto& cluster = *cluster_or;
  auto client_or = cluster->AddClient("arkfs-cli");
  if (!client_or.ok()) return Fail(client_or.status(), "client");
  auto fs = *client_or;

  int rc = 0;
  if (command == "mkdir" && argc == 4) {
    Status st = fs->MkdirAll(argv[3], 0755, user);
    if (!st.ok()) rc = Fail(st, "mkdir");
  } else if (command == "ls" && argc == 4) {
    auto entries = fs->ReadDir(argv[3], user);
    if (!entries.ok()) {
      rc = Fail(entries.status(), "ls");
    } else {
      for (const auto& d : *entries) {
        auto st = fs->Stat(std::string(argv[3]) == "/"
                               ? "/" + d.name
                               : std::string(argv[3]) + "/" + d.name,
                           user);
        std::printf("%-5s %10llu  %s\n", TypeName(d.type),
                    st.ok() ? static_cast<unsigned long long>(st->size) : 0,
                    d.name.c_str());
      }
    }
  } else if (command == "put" && argc == 5) {
    auto data = ReadLocalFile(argv[3]);
    if (!data.ok()) {
      rc = Fail(data.status(), "read local file");
    } else if (Status st = fs->WriteFileAt(argv[4], *data, user); !st.ok()) {
      rc = Fail(st, "put");
    } else {
      std::printf("wrote %zu bytes to %s\n", data->size(), argv[4]);
    }
  } else if (command == "get" && argc == 5) {
    auto data = fs->ReadWholeFile(argv[3], user);
    if (!data.ok()) {
      rc = Fail(data.status(), "get");
    } else if (Status st = WriteLocalFile(argv[4], *data); !st.ok()) {
      rc = Fail(st, "write local file");
    } else {
      std::printf("restored %zu bytes to %s\n", data->size(), argv[4]);
    }
  } else if (command == "cat" && argc == 4) {
    auto data = fs->ReadWholeFile(argv[3], user);
    if (!data.ok()) {
      rc = Fail(data.status(), "cat");
    } else {
      std::fwrite(data->data(), 1, data->size(), stdout);
    }
  } else if (command == "rm" && argc == 4) {
    if (Status st = fs->Unlink(argv[3], user); !st.ok()) rc = Fail(st, "rm");
  } else if (command == "rmdir" && argc == 4) {
    if (Status st = fs->Rmdir(argv[3], user); !st.ok()) rc = Fail(st, "rmdir");
  } else if (command == "mv" && argc == 5) {
    if (Status st = fs->Rename(argv[3], argv[4], user); !st.ok()) {
      rc = Fail(st, "mv");
    }
  } else if (command == "stat" && argc == 4) {
    auto st = fs->Stat(argv[3], user);
    if (!st.ok()) {
      rc = Fail(st.status(), "stat");
    } else {
      std::printf("%s: %s mode=%o uid=%u gid=%u size=%llu mtime=%lld ino=%s\n",
                  argv[3], TypeName(st->type), st->mode, st->uid, st->gid,
                  static_cast<unsigned long long>(st->size),
                  static_cast<long long>(st->mtime_sec),
                  st->ino.ToString().substr(0, 12).c_str());
    }
  } else if (command == "chmod" && argc == 5) {
    const auto mode = static_cast<std::uint32_t>(std::strtoul(argv[3], nullptr, 8));
    if (Status st = fs->Chmod(argv[4], mode, user); !st.ok()) {
      rc = Fail(st, "chmod");
    }
  } else if (command == "ln" && argc == 6 && std::strcmp(argv[3], "-s") == 0) {
    if (Status st = fs->Symlink(argv[4], argv[5], user); !st.ok()) {
      rc = Fail(st, "ln -s");
    }
  } else if (command == "introspect" && (argc == 3 || argc == 4)) {
    // With a path, touch it first so the lease / delegation plane reflects
    // at least that directory (a fresh CLI process starts cold).
    if (argc == 4) (void)fs->Stat(argv[3], user);
    const auto report = fs->Introspect();
    std::printf("--- delegation cache ---\n%s", report.delegations_text.c_str());
    if (!report.journal_text.empty()) {
      std::printf("--- journal ---\n%s", report.journal_text.c_str());
    }
    std::printf("--- metrics ---\n%s", report.metrics_text.c_str());
    if (!report.scrub_text.empty()) {
      std::printf("--- scrub ---\n%s", report.scrub_text.c_str());
    }
    if (!report.tiering_text.empty()) {
      std::printf("--- tiering ---\n%s", report.tiering_text.c_str());
    }
    std::printf("--- qos ---\n%s", cluster->QosIntrospectText().c_str());
  } else if (command == "tier" && (argc == 3 || argc == 4)) {
    if (tier_sub == "status") {
      std::printf("--- tiering ---\n%s",
                  cluster->tiering_store()->StatsText().c_str());
      std::printf("migrator: %s", cluster->migrator()->ReportText().c_str());
    } else if (tier_sub == "migrate" || tier_sub == "demote") {
      auto report = cluster->migrator()->RunOnce();
      if (!report.ok()) {
        rc = Fail(report.status(), "tier");
      } else {
        std::printf("tier %s: %s\n", tier_sub.c_str(),
                    report->ToString().c_str());
        // A one-shot CLI process exits before any journal checkpoint, so
        // the advisory access stats (and their cached hot/cold split) would
        // never reach the store; flush them here so the next invocation's
        // `tier status` reflects this pass.
        if (cluster->tiering_store()->ConsumeStatsDirty()) {
          const Bytes blob = cluster->tiering_store()->EncodeAccessStats();
          if (!cluster->store()->Put(kTierStatsKey, blob).ok()) {
            cluster->tiering_store()->MarkStatsDirty();
          }
        }
        // The tier.* slice of the metrics plane, for operators watching
        // placement drift. DumpText lines read "counter <name> <value>".
        const auto intro = fs->Introspect();
        std::string line;
        for (char c : intro.metrics_text) {
          if (c == '\n') {
            if (line.find(" tier.") != std::string::npos) {
              std::printf("%s\n", line.c_str());
            }
            line.clear();
          } else {
            line.push_back(c);
          }
        }
      }
    } else {
      rc = Usage();
    }
  } else if (command == "scrub" && argc == 3) {
    auto report = cluster->scrubber()->RunOnce();
    if (!report.ok()) {
      rc = Fail(report.status(), "scrub");
    } else {
      std::printf("scrub: %s\n", report->ToString().c_str());
      // The ec.* slice of the metrics plane, for operators watching decay.
      // DumpText lines read "counter <name> <value>".
      const auto intro = fs->Introspect();
      std::string line;
      for (char c : intro.metrics_text) {
        if (c == '\n') {
          if (line.find(" ec.") != std::string::npos) {
            std::printf("%s\n", line.c_str());
          }
          line.clear();
        } else {
          line.push_back(c);
        }
      }
    }
  } else {
    rc = Usage();
  }

  Status st = fs->Shutdown();  // flush journals + caches, release leases
  if (rc == 0 && !st.ok()) rc = Fail(st, "shutdown");
  return rc;
}
