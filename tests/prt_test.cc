// Tests for the PRT: key schema and POSIX<->REST data translation.
#include <gtest/gtest.h>

#include "objstore/memory_store.h"
#include "objstore/wrappers.h"
#include "prt/key_schema.h"
#include "prt/translator.h"

namespace arkfs {
namespace {

TEST(KeySchemaTest, PrefixesMatchPaper) {
  const Uuid u = DeterministicUuid(1, 1);
  EXPECT_EQ(InodeKey(u)[0], 'i');
  EXPECT_EQ(DentryKey(u)[0], 'e');
  EXPECT_EQ(JournalKey(u)[0], 'j');
  EXPECT_EQ(DataKey(u, 0)[0], 'd');
  EXPECT_EQ(InodeKey(u).size(), 33u);
}

TEST(KeySchemaTest, DataKeysSortNumerically) {
  const Uuid u = DeterministicUuid(2, 2);
  EXPECT_LT(DataKey(u, 9), DataKey(u, 10));
  EXPECT_LT(DataKey(u, 255), DataKey(u, 256));
  EXPECT_LT(DataKey(u, 0), DataKey(u, 1ull << 40));
}

TEST(KeySchemaTest, ParseRoundTrip) {
  const Uuid u = DeterministicUuid(3, 3);
  auto parsed = ParseKey(DataKey(u, 77));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, KeyKind::kData);
  EXPECT_EQ(parsed->ino, u);
  EXPECT_EQ(parsed->chunk_index, 77u);

  auto inode = ParseKey(InodeKey(u));
  ASSERT_TRUE(inode.ok());
  EXPECT_EQ(inode->kind, KeyKind::kInode);

  EXPECT_FALSE(ParseKey("x" + u.ToString()).ok());
  EXPECT_FALSE(ParseKey("i123").ok());
  EXPECT_FALSE(ParseKey(InodeKey(u) + "junk").ok());
}

class PrtTest : public ::testing::Test {
 protected:
  PrtTest()
      : store_(std::make_shared<CountingStore>(
            std::make_shared<MemoryObjectStore>(1024))),
        prt_(store_, 1024) {}

  Bytes Pattern(std::size_t n, int seed = 0) {
    Bytes b(n);
    for (std::size_t i = 0; i < n; ++i) {
      b[i] = static_cast<std::uint8_t>((i * 31 + seed) & 0xFF);
    }
    return b;
  }

  std::shared_ptr<CountingStore> store_;
  Prt prt_;
};

TEST_F(PrtTest, InodeRoundTrip) {
  Inode i = MakeInode(NewUuid(), FileType::kRegular, 0644, 5, 6, kRootIno);
  ASSERT_TRUE(prt_.StoreInode(i).ok());
  auto loaded = prt_.LoadInode(i.ino);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->uid, 5u);
  ASSERT_TRUE(prt_.DeleteInode(i.ino).ok());
  EXPECT_EQ(prt_.LoadInode(i.ino).code(), Errc::kNoEnt);
}

TEST_F(PrtTest, MissingDentryBlockIsEmptyDirectory) {
  auto block = prt_.LoadDentryBlock(NewUuid());
  ASSERT_TRUE(block.ok());
  EXPECT_TRUE(block->empty());
}

TEST_F(PrtTest, DentryBlockRoundTrip) {
  const Uuid dir = NewUuid();
  std::vector<Dentry> entries{{"x", NewUuid(), FileType::kRegular},
                              {"y", NewUuid(), FileType::kDirectory}};
  ASSERT_TRUE(prt_.StoreDentryBlock(dir, entries).ok());
  auto loaded = prt_.LoadDentryBlock(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
}

TEST_F(PrtTest, WriteReadWithinOneChunk) {
  const Uuid ino = NewUuid();
  Bytes data = Pattern(100);
  ASSERT_TRUE(prt_.WriteData(ino, 10, data).ok());
  auto read = prt_.ReadData(ino, 10, 100, 110);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_F(PrtTest, WriteSpansChunks) {
  const Uuid ino = NewUuid();
  // 1024-byte chunks; write 3000 bytes at offset 500 -> chunks 0..3.
  Bytes data = Pattern(3000);
  ASSERT_TRUE(prt_.WriteData(ino, 500, data).ok());
  EXPECT_TRUE(prt_.store().Head(DataKey(ino, 0)).ok());
  EXPECT_TRUE(prt_.store().Head(DataKey(ino, 3)).ok());
  auto read = prt_.ReadData(ino, 500, 3000, 3500);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_F(PrtTest, HolesReadAsZeros) {
  const Uuid ino = NewUuid();
  ASSERT_TRUE(prt_.WriteData(ino, 3000, Pattern(10)).ok());
  // Chunks 0-1 were never written.
  auto read = prt_.ReadData(ino, 0, 3010, 3010);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 3010u);
  EXPECT_EQ((*read)[0], 0);
  EXPECT_EQ((*read)[2999], 0);
  EXPECT_EQ((*read)[3000], Pattern(10)[0]);
}

TEST_F(PrtTest, ReadClampsToFileSize) {
  const Uuid ino = NewUuid();
  ASSERT_TRUE(prt_.WriteData(ino, 0, Pattern(100)).ok());
  auto read = prt_.ReadData(ino, 50, 1000, 100);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 50u);
  EXPECT_TRUE(prt_.ReadData(ino, 200, 10, 100)->empty());
}

TEST_F(PrtTest, TruncateDropsAndTrimsChunks) {
  const Uuid ino = NewUuid();
  ASSERT_TRUE(prt_.WriteData(ino, 0, Pattern(4096)).ok());  // 4 chunks
  ASSERT_TRUE(prt_.TruncateData(ino, 4096, 1500).ok());
  EXPECT_TRUE(prt_.store().Head(DataKey(ino, 0)).ok());
  EXPECT_EQ(prt_.store().Head(DataKey(ino, 1))->size, 1500u - 1024u);
  EXPECT_EQ(prt_.store().Head(DataKey(ino, 2)).code(), Errc::kNoEnt);
  EXPECT_EQ(prt_.store().Head(DataKey(ino, 3)).code(), Errc::kNoEnt);
}

TEST_F(PrtTest, TruncateToZeroAndDelete) {
  const Uuid ino = NewUuid();
  ASSERT_TRUE(prt_.WriteData(ino, 0, Pattern(2500)).ok());
  ASSERT_TRUE(prt_.DeleteData(ino, 2500).ok());
  for (std::uint64_t c = 0; c < 3; ++c) {
    EXPECT_EQ(prt_.store().Head(DataKey(ino, c)).code(), Errc::kNoEnt);
  }
}

TEST_F(PrtTest, ChunkMath) {
  EXPECT_EQ(prt_.NumChunksFor(0), 0u);
  EXPECT_EQ(prt_.NumChunksFor(1), 1u);
  EXPECT_EQ(prt_.NumChunksFor(1024), 1u);
  EXPECT_EQ(prt_.NumChunksFor(1025), 2u);
  EXPECT_EQ(prt_.ChunkIndexFor(1023), 0u);
  EXPECT_EQ(prt_.ChunkIndexFor(1024), 1u);
}

TEST(PrtS3Test, PartialWriteAmplifiesToWholeChunk) {
  // On a whole-object store, a tiny overwrite must rewrite the full chunk —
  // the S3FS amplification the paper calls out (§II-C).
  auto base = std::make_shared<MemoryObjectStore>(4096, /*partial=*/false);
  auto counting = std::make_shared<CountingStore>(base);
  Prt prt(counting, 4096);
  const Uuid ino = NewUuid();
  Bytes initial(4096, 1);
  ASSERT_TRUE(prt.WriteData(ino, 0, initial).ok());
  counting->Reset();

  ASSERT_TRUE(prt.WriteData(ino, 100, Bytes(8, 2)).ok());
  auto c = counting->Snapshot();
  EXPECT_EQ(c.gets, 1u);                   // read-modify-write
  EXPECT_EQ(c.bytes_written, 4096u);       // whole chunk rewritten for 8 bytes
  auto read = prt.ReadData(ino, 98, 12, 4096);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ((*read)[0], 1);
  EXPECT_EQ((*read)[2], 2);
}

TEST(PrtS3Test, AlignedFullChunkWriteAvoidsRmw) {
  auto base = std::make_shared<MemoryObjectStore>(4096, /*partial=*/false);
  auto counting = std::make_shared<CountingStore>(base);
  Prt prt(counting, 4096);
  const Uuid ino = NewUuid();
  ASSERT_TRUE(prt.WriteData(ino, 0, Bytes(8192, 3)).ok());
  auto c = counting->Snapshot();
  EXPECT_EQ(c.gets, 0u);  // two aligned chunk PUTs, no read-modify-write
  EXPECT_EQ(c.puts, 2u);
}

}  // namespace
}  // namespace arkfs
