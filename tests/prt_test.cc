// Tests for the PRT: key schema and POSIX<->REST data translation.
#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "objstore/memory_store.h"
#include "objstore/wrappers.h"
#include "prt/key_schema.h"
#include "prt/translator.h"

namespace arkfs {
namespace {

TEST(KeySchemaTest, PrefixesMatchPaper) {
  const Uuid u = DeterministicUuid(1, 1);
  EXPECT_EQ(InodeKey(u)[0], 'i');
  EXPECT_EQ(DentryKey(u)[0], 'e');
  EXPECT_EQ(JournalKey(u)[0], 'j');
  EXPECT_EQ(DataKey(u, 0)[0], 'd');
  EXPECT_EQ(InodeKey(u).size(), 33u);
}

TEST(KeySchemaTest, DataKeysSortNumerically) {
  const Uuid u = DeterministicUuid(2, 2);
  EXPECT_LT(DataKey(u, 9), DataKey(u, 10));
  EXPECT_LT(DataKey(u, 255), DataKey(u, 256));
  EXPECT_LT(DataKey(u, 0), DataKey(u, 1ull << 40));
}

TEST(KeySchemaTest, ParseRoundTrip) {
  const Uuid u = DeterministicUuid(3, 3);
  auto parsed = ParseKey(DataKey(u, 77));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, KeyKind::kData);
  EXPECT_EQ(parsed->ino, u);
  EXPECT_EQ(parsed->chunk_index, 77u);

  auto inode = ParseKey(InodeKey(u));
  ASSERT_TRUE(inode.ok());
  EXPECT_EQ(inode->kind, KeyKind::kInode);

  EXPECT_FALSE(ParseKey("x" + u.ToString()).ok());
  EXPECT_FALSE(ParseKey("i123").ok());
  EXPECT_FALSE(ParseKey(InodeKey(u) + "junk").ok());
}

class PrtTest : public ::testing::Test {
 protected:
  PrtTest()
      : store_(std::make_shared<CountingStore>(
            std::make_shared<MemoryObjectStore>(1024))),
        prt_(store_, 1024, [this] {
          AsyncIoConfig cfg;
          cfg.metrics = &registry_;
          return cfg;
        }()) {}

  std::uint64_t AsyncBatches() {
    return registry_.Snapshot().counter("asyncio.batches");
  }

  Bytes Pattern(std::size_t n, int seed = 0) {
    Bytes b(n);
    for (std::size_t i = 0; i < n; ++i) {
      b[i] = static_cast<std::uint8_t>((i * 31 + seed) & 0xFF);
    }
    return b;
  }

  std::shared_ptr<CountingStore> store_;
  obs::MetricsRegistry registry_;
  Prt prt_;
};

TEST_F(PrtTest, InodeRoundTrip) {
  Inode i = MakeInode(NewUuid(), FileType::kRegular, 0644, 5, 6, kRootIno);
  ASSERT_TRUE(prt_.StoreInode(i).ok());
  auto loaded = prt_.LoadInode(i.ino);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->uid, 5u);
  ASSERT_TRUE(prt_.DeleteInode(i.ino).ok());
  EXPECT_EQ(prt_.LoadInode(i.ino).code(), Errc::kNoEnt);
}

TEST_F(PrtTest, MissingDentryBlockIsEmptyDirectory) {
  auto block = prt_.LoadDentryBlock(NewUuid());
  ASSERT_TRUE(block.ok());
  EXPECT_TRUE(block->empty());
}

TEST_F(PrtTest, DentryBlockRoundTrip) {
  const Uuid dir = NewUuid();
  std::vector<Dentry> entries{{"x", NewUuid(), FileType::kRegular},
                              {"y", NewUuid(), FileType::kDirectory}};
  ASSERT_TRUE(prt_.StoreDentryBlock(dir, entries).ok());
  auto loaded = prt_.LoadDentryBlock(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
}

TEST_F(PrtTest, WriteReadWithinOneChunk) {
  const Uuid ino = NewUuid();
  Bytes data = Pattern(100);
  ASSERT_TRUE(prt_.WriteData(ino, 10, data).ok());
  auto read = prt_.ReadData(ino, 10, 100, 110);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_F(PrtTest, WriteSpansChunks) {
  const Uuid ino = NewUuid();
  // 1024-byte chunks; write 3000 bytes at offset 500 -> chunks 0..3.
  Bytes data = Pattern(3000);
  ASSERT_TRUE(prt_.WriteData(ino, 500, data).ok());
  EXPECT_TRUE(prt_.store().Head(DataKey(ino, 0)).ok());
  EXPECT_TRUE(prt_.store().Head(DataKey(ino, 3)).ok());
  auto read = prt_.ReadData(ino, 500, 3000, 3500);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_F(PrtTest, HolesReadAsZeros) {
  const Uuid ino = NewUuid();
  ASSERT_TRUE(prt_.WriteData(ino, 3000, Pattern(10)).ok());
  // Chunks 0-1 were never written.
  auto read = prt_.ReadData(ino, 0, 3010, 3010);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 3010u);
  EXPECT_EQ((*read)[0], 0);
  EXPECT_EQ((*read)[2999], 0);
  EXPECT_EQ((*read)[3000], Pattern(10)[0]);
}

TEST_F(PrtTest, ReadClampsToFileSize) {
  const Uuid ino = NewUuid();
  ASSERT_TRUE(prt_.WriteData(ino, 0, Pattern(100)).ok());
  auto read = prt_.ReadData(ino, 50, 1000, 100);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 50u);
  EXPECT_TRUE(prt_.ReadData(ino, 200, 10, 100)->empty());
}

TEST_F(PrtTest, TruncateDropsAndTrimsChunks) {
  const Uuid ino = NewUuid();
  ASSERT_TRUE(prt_.WriteData(ino, 0, Pattern(4096)).ok());  // 4 chunks
  ASSERT_TRUE(prt_.TruncateData(ino, 4096, 1500).ok());
  EXPECT_TRUE(prt_.store().Head(DataKey(ino, 0)).ok());
  EXPECT_EQ(prt_.store().Head(DataKey(ino, 1))->size, 1500u - 1024u);
  EXPECT_EQ(prt_.store().Head(DataKey(ino, 2)).code(), Errc::kNoEnt);
  EXPECT_EQ(prt_.store().Head(DataKey(ino, 3)).code(), Errc::kNoEnt);
}

TEST_F(PrtTest, TruncateToZeroAndDelete) {
  const Uuid ino = NewUuid();
  ASSERT_TRUE(prt_.WriteData(ino, 0, Pattern(2500)).ok());
  ASSERT_TRUE(prt_.DeleteData(ino, 2500).ok());
  for (std::uint64_t c = 0; c < 3; ++c) {
    EXPECT_EQ(prt_.store().Head(DataKey(ino, c)).code(), Errc::kNoEnt);
  }
}

TEST_F(PrtTest, ChunkMath) {
  EXPECT_EQ(prt_.NumChunksFor(0), 0u);
  EXPECT_EQ(prt_.NumChunksFor(1), 1u);
  EXPECT_EQ(prt_.NumChunksFor(1024), 1u);
  EXPECT_EQ(prt_.NumChunksFor(1025), 2u);
  EXPECT_EQ(prt_.ChunkIndexFor(1023), 0u);
  EXPECT_EQ(prt_.ChunkIndexFor(1024), 1u);
}

TEST(KeySchemaTest, ShardedDentryKeysParse) {
  const Uuid u = DeterministicUuid(4, 4);

  auto manifest = ParseKey(DentryManifestKey(u));
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->kind, KeyKind::kDentryManifest);
  EXPECT_EQ(manifest->ino, u);

  auto shard = ParseKey(DentryShardKey(u, 16, 5, 0));
  ASSERT_TRUE(shard.ok());
  EXPECT_EQ(shard->kind, KeyKind::kDentryShard);
  EXPECT_EQ(shard->ino, u);
  EXPECT_EQ(shard->dentry_shard_count, 16u);
  EXPECT_EQ(shard->dentry_shard, 5u);
  EXPECT_EQ(shard->dentry_slot, 0u);

  // Max-generation keys and the second slot round-trip too.
  auto wide = ParseKey(DentryShardKey(u, kMaxDentryShards, 255, 1));
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide->dentry_shard_count, kMaxDentryShards);
  EXPECT_EQ(wide->dentry_shard, 255u);
  EXPECT_EQ(wide->dentry_slot, 1u);

  // Legacy block still parses as plain kDentry.
  auto legacy = ParseKey(DentryKey(u));
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy->kind, KeyKind::kDentry);

  // Malformed variants are rejected.
  EXPECT_FALSE(ParseKey(DentryManifestKey(u) + "x").ok());
  EXPECT_FALSE(ParseKey(DentryKey(u) + ".zz.0005.0").ok());
  EXPECT_FALSE(ParseKey(DentryKey(u) + ".04.00zz.0").ok());
  EXPECT_FALSE(ParseKey(DentryKey(u) + ".04.0005").ok());    // slotless (old)
  EXPECT_FALSE(ParseKey(DentryKey(u) + ".04.0005.2").ok());  // slot not 0/1
  // A generation byte beyond log2(kMaxDentryShards) must be rejected, not
  // shifted (1u << 0xff is undefined behavior).
  EXPECT_FALSE(ParseKey(DentryKey(u) + ".ff.0000.0").ok());
  EXPECT_FALSE(ParseKey(DentryKey(u) + ".09.0000.0").ok());
}

TEST(KeySchemaTest, DentryObjectPrefixCoversShardedNotLegacy) {
  const Uuid u = DeterministicUuid(5, 5);
  const std::string prefix = DentryObjectPrefix(u);
  auto starts_with = [&](const std::string& key) {
    return key.compare(0, prefix.size(), prefix) == 0;
  };
  EXPECT_TRUE(starts_with(DentryManifestKey(u)));
  EXPECT_TRUE(starts_with(DentryShardKey(u, 1, 0, 0)));
  EXPECT_TRUE(starts_with(DentryShardKey(u, 64, 63, 1)));
  EXPECT_FALSE(starts_with(DentryKey(u)));  // legacy has no '.'
}

TEST(KeySchemaTest, DentryShardOfIsStableAndInRange) {
  // Placement is persisted, so the hash must be deterministic across runs:
  // pin a few FNV-1a values.
  EXPECT_EQ(DentryShardOf("a", 1), 0u);
  const std::uint32_t b16 = DentryShardOf("hello", 16);
  EXPECT_EQ(DentryShardOf("hello", 16), b16);
  for (std::uint32_t b : {1u, 2u, 16u, 64u, 256u}) {
    for (const char* name : {"a", "bb", "file-000123", "x.y.z", ""}) {
      EXPECT_LT(DentryShardOf(name, b), b);
    }
  }
  // Doubling the shard count only refines placement (mask extension):
  // shard-at-B equals shard-at-2B modulo B for a power-of-two mask hash.
  for (const char* name : {"alpha", "beta", "gamma", "delta"}) {
    EXPECT_EQ(DentryShardOf(name, 8) % 4, DentryShardOf(name, 4));
  }
}

TEST(KeySchemaTest, DentryManifestCodecRoundTrip) {
  DentryManifest m{16, 123456};
  auto decoded = DecodeDentryManifest(EncodeDentryManifest(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);

  // Slot bits survive the round trip (including the high shard of the
  // bitmap's second byte), and an all-zero bitmap decodes to the canonical
  // empty form so manifests compare equal either way.
  DentryManifest slotted{16, 7};
  slotted.SetSlot(0, 1);
  slotted.SetSlot(9, 1);
  slotted.SetSlot(15, 1);
  auto slots = DecodeDentryManifest(EncodeDentryManifest(slotted));
  ASSERT_TRUE(slots.ok());
  EXPECT_EQ(*slots, slotted);
  EXPECT_EQ(slots->SlotOf(0), 1);
  EXPECT_EQ(slots->SlotOf(1), 0);
  EXPECT_EQ(slots->SlotOf(9), 1);
  EXPECT_EQ(slots->SlotOf(15), 1);
  DentryManifest zeroed{16, 7};
  zeroed.SetSlot(3, 1);
  zeroed.SetSlot(3, 0);
  auto canon = DecodeDentryManifest(EncodeDentryManifest(zeroed));
  ASSERT_TRUE(canon.ok());
  EXPECT_TRUE(canon->slots.empty());
  EXPECT_EQ(*canon, (DentryManifest{16, 7}));

  // Rejects: non-pow2 count, zero count, count over the format cap,
  // truncated buffer.
  EXPECT_FALSE(DecodeDentryManifest(EncodeDentryManifest({3, 0})).ok());
  EXPECT_FALSE(DecodeDentryManifest(EncodeDentryManifest({0, 0})).ok());
  EXPECT_FALSE(
      DecodeDentryManifest(EncodeDentryManifest({kMaxDentryShards * 2, 0}))
          .ok());
  Bytes enc = EncodeDentryManifest(m);
  enc.resize(1);
  EXPECT_FALSE(DecodeDentryManifest(enc).ok());
  EXPECT_FALSE(DecodeDentryManifest(Bytes{}).ok());
}

TEST_F(PrtTest, DentryManifestRoundTrip) {
  const Uuid dir = NewUuid();
  EXPECT_EQ(prt_.LoadDentryManifest(dir).code(), Errc::kNoEnt);  // legacy
  ASSERT_TRUE(prt_.StoreDentryManifest(dir, {4, 10}).ok());
  auto m = prt_.LoadDentryManifest(dir);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->shard_count, 4u);
  EXPECT_EQ(m->entry_count, 10u);
}

TEST_F(PrtTest, DentryShardRoundTrip) {
  const Uuid dir = NewUuid();
  std::vector<Dentry> entries{{"p", NewUuid(), FileType::kRegular},
                              {"q", NewUuid(), FileType::kDirectory}};
  ASSERT_TRUE(prt_.StoreDentryShard(dir, 4, 2, entries).ok());
  auto loaded = prt_.LoadDentryShard(dir, 4, 2);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);

  // The two slots of a shard are independent objects.
  ASSERT_TRUE(prt_.StoreDentryShard(dir, 4, 2, {entries[0]}, /*slot=*/1,
                                    /*epoch=*/2)
                  .ok());
  EXPECT_EQ(prt_.LoadDentryShard(dir, 4, 2, /*slot=*/1)->size(), 1u);
  EXPECT_EQ(prt_.LoadDentryShard(dir, 4, 2, /*slot=*/0)->size(), 2u);

  // Missing shard reads as empty.
  auto missing = prt_.LoadDentryShard(dir, 4, 3);
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->empty());

  ASSERT_TRUE(prt_.DeleteDentryShard(dir, 4, 2, /*slot=*/0).ok());
  EXPECT_TRUE(prt_.LoadDentryShard(dir, 4, 2)->empty());
  EXPECT_EQ(prt_.LoadDentryShard(dir, 4, 2, /*slot=*/1)->size(), 1u);
}

TEST_F(PrtTest, LoadDentryShardsIsStrictAndSlotAware) {
  const Uuid dir = NewUuid();
  ASSERT_TRUE(
      prt_.StoreDentryShard(dir, 4, 0, {{"a", NewUuid(), FileType::kRegular}})
          .ok());
  DentryManifest manifest{4, 1};

  // Missing live shards read as empty; intact ones decode with their epoch.
  auto ok_load = prt_.LoadDentryShards(dir, manifest, {0, 2});
  ASSERT_TRUE(ok_load.ok());
  ASSERT_EQ(ok_load->size(), 2u);
  EXPECT_EQ((*ok_load)[0].entries.size(), 1u);
  EXPECT_TRUE((*ok_load)[1].entries.empty());

  // Garbage at a manifest-referenced live slot is REAL corruption (the
  // manifest only ever references fully landed objects) and must fail
  // loudly, never silently read as an empty shard.
  ASSERT_TRUE(
      prt_.store().Put(DentryShardKey(dir, 4, 1, 0), Bytes{0xFF, 0xFF}).ok());
  auto strict = prt_.LoadDentryShards(dir, manifest, {0, 1, 2});
  EXPECT_FALSE(strict.ok());

  // The manifest's slot bits pick which object is live: garbage parked in
  // the INACTIVE slot (a torn checkpoint artifact) is invisible.
  ASSERT_TRUE(prt_.StoreDentryShard(dir, 4, 1,
                                    {{"b", NewUuid(), FileType::kRegular}},
                                    /*slot=*/1, /*epoch=*/3)
                  .ok());
  manifest.SetSlot(1, 1);
  auto live = prt_.LoadDentryShards(dir, manifest, {0, 1, 2});
  ASSERT_TRUE(live.ok());
  EXPECT_EQ((*live)[1].entries.size(), 1u);
  EXPECT_EQ((*live)[1].epoch, 3u);
}

TEST_F(PrtTest, LoadDentriesHandlesBothLayouts) {
  // Legacy layout.
  const Uuid legacy = NewUuid();
  ASSERT_TRUE(
      prt_.StoreDentryBlock(legacy, {{"old", NewUuid(), FileType::kRegular}})
          .ok());
  auto from_legacy = prt_.LoadDentries(legacy);
  ASSERT_TRUE(from_legacy.ok());
  ASSERT_EQ(from_legacy->size(), 1u);
  EXPECT_EQ((*from_legacy)[0].name, "old");

  // Sharded layout: entries spread over a 4-way generation.
  const Uuid sharded = NewUuid();
  std::vector<Dentry> all;
  for (int i = 0; i < 20; ++i) {
    all.push_back({"f" + std::to_string(i), NewUuid(), FileType::kRegular});
  }
  std::vector<std::vector<Dentry>> buckets(4);
  for (const auto& d : all) buckets[DentryShardOf(d.name, 4)].push_back(d);
  for (std::uint32_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(prt_.StoreDentryShard(sharded, 4, s, buckets[s]).ok());
  }
  ASSERT_TRUE(
      prt_.StoreDentryManifest(sharded, {4, all.size()}).ok());
  auto from_shards = prt_.LoadDentries(sharded);
  ASSERT_TRUE(from_shards.ok());
  EXPECT_EQ(from_shards->size(), all.size());

  // Never-checkpointed directory reads as empty.
  EXPECT_TRUE(prt_.LoadDentries(NewUuid())->empty());
}

TEST_F(PrtTest, DeleteDentryObjectsSweepsEveryLayout) {
  const Uuid dir = NewUuid();
  ASSERT_TRUE(
      prt_.StoreDentryBlock(dir, {{"l", NewUuid(), FileType::kRegular}}).ok());
  ASSERT_TRUE(prt_.StoreDentryManifest(dir, {4, 2}).ok());
  ASSERT_TRUE(
      prt_.StoreDentryShard(dir, 4, 1, {{"s", NewUuid(), FileType::kRegular}})
          .ok());
  // Stale shard from an older 2-way generation left by a crashed reshard.
  ASSERT_TRUE(
      prt_.StoreDentryShard(dir, 2, 0, {{"g", NewUuid(), FileType::kRegular}})
          .ok());

  ASSERT_TRUE(prt_.DeleteDentryObjects(dir).ok());
  EXPECT_EQ(prt_.store().Head(DentryKey(dir)).code(), Errc::kNoEnt);
  EXPECT_EQ(prt_.store().Head(DentryManifestKey(dir)).code(), Errc::kNoEnt);
  EXPECT_EQ(prt_.store().Head(DentryShardKey(dir, 4, 1, 0)).code(),
            Errc::kNoEnt);
  EXPECT_EQ(prt_.store().Head(DentryShardKey(dir, 2, 0, 0)).code(),
            Errc::kNoEnt);
  // Idempotent on an already-clean directory.
  EXPECT_TRUE(prt_.DeleteDentryObjects(dir).ok());
}

TEST_F(PrtTest, BootstrapIsOneBatchWhenHintMatches) {
  // Acceptance criterion: leader bootstrap of a sharded directory issues one
  // overlapped batch. With a correct hint the whole load is 4 + 2B gets
  // (inode, journal, manifest, legacy probe, both slots of B shards) in a
  // single MultiGet.
  const Uuid dir = NewUuid();
  const std::uint32_t kShards = 8;
  Inode di = MakeInode(dir, FileType::kDirectory, 0755, 0, 0, kRootIno);
  ASSERT_TRUE(prt_.StoreInode(di).ok());
  std::vector<std::vector<Dentry>> buckets(kShards);
  for (int i = 0; i < 32; ++i) {
    Dentry d{"n" + std::to_string(i), NewUuid(), FileType::kRegular};
    buckets[DentryShardOf(d.name, kShards)].push_back(d);
  }
  for (std::uint32_t s = 0; s < kShards; ++s) {
    ASSERT_TRUE(prt_.StoreDentryShard(dir, kShards, s, buckets[s]).ok());
  }
  ASSERT_TRUE(prt_.StoreDentryManifest(dir, {kShards, 32}).ok());

  store_->Reset();
  const auto batches_before = AsyncBatches();
  auto objs = prt_.LoadDirObjects(dir, kShards);
  ASSERT_TRUE(objs.inode.ok());
  ASSERT_TRUE(objs.dentries.ok());
  EXPECT_EQ(objs.dentries->size(), 32u);
  EXPECT_EQ(objs.shard_count, kShards);
  EXPECT_EQ(store_->Snapshot().gets, 4u + 2u * kShards);
  EXPECT_EQ(AsyncBatches() - batches_before, 1u);

  // A stale hint costs exactly one extra overlapped batch for the real
  // live shard set — never a per-shard serial loop.
  store_->Reset();
  const auto batches_mid = AsyncBatches();
  auto cold = prt_.LoadDirObjects(dir, /*shard_hint=*/1);
  ASSERT_TRUE(cold.dentries.ok());
  EXPECT_EQ(cold.dentries->size(), 32u);
  EXPECT_EQ(cold.shard_count, kShards);
  EXPECT_EQ(store_->Snapshot().gets, (4u + 2u) + kShards);
  EXPECT_EQ(AsyncBatches() - batches_mid, 2u);
}

TEST_F(PrtTest, BootstrapLegacyDirIsOneBatch) {
  const Uuid dir = NewUuid();
  Inode di = MakeInode(dir, FileType::kDirectory, 0755, 0, 0, kRootIno);
  ASSERT_TRUE(prt_.StoreInode(di).ok());
  ASSERT_TRUE(
      prt_.StoreDentryBlock(dir, {{"v", NewUuid(), FileType::kRegular}}).ok());

  store_->Reset();
  const auto batches_before = AsyncBatches();
  auto objs = prt_.LoadDirObjects(dir, /*shard_hint=*/1);
  ASSERT_TRUE(objs.inode.ok());
  ASSERT_TRUE(objs.dentries.ok());
  EXPECT_EQ(objs.dentries->size(), 1u);
  EXPECT_EQ(objs.shard_count, 0u);  // legacy layout reported to the caller
  EXPECT_EQ(store_->Snapshot().gets, 6u);
  EXPECT_EQ(AsyncBatches() - batches_before, 1u);
}

TEST(PrtS3Test, PartialWriteAmplifiesToWholeChunk) {
  // On a whole-object store, a tiny overwrite must rewrite the full chunk —
  // the S3FS amplification the paper calls out (§II-C).
  auto base = std::make_shared<MemoryObjectStore>(4096, /*partial=*/false);
  auto counting = std::make_shared<CountingStore>(base);
  Prt prt(counting, 4096);
  const Uuid ino = NewUuid();
  Bytes initial(4096, 1);
  ASSERT_TRUE(prt.WriteData(ino, 0, initial).ok());
  counting->Reset();

  ASSERT_TRUE(prt.WriteData(ino, 100, Bytes(8, 2)).ok());
  auto c = counting->Snapshot();
  EXPECT_EQ(c.gets, 1u);                   // read-modify-write
  EXPECT_EQ(c.bytes_written, 4096u);       // whole chunk rewritten for 8 bytes
  auto read = prt.ReadData(ino, 98, 12, 4096);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ((*read)[0], 1);
  EXPECT_EQ((*read)[2], 2);
}

TEST(PrtS3Test, AlignedFullChunkWriteAvoidsRmw) {
  auto base = std::make_shared<MemoryObjectStore>(4096, /*partial=*/false);
  auto counting = std::make_shared<CountingStore>(base);
  Prt prt(counting, 4096);
  const Uuid ino = NewUuid();
  ASSERT_TRUE(prt.WriteData(ino, 0, Bytes(8192, 3)).ok());
  auto c = counting->Snapshot();
  EXPECT_EQ(c.gets, 0u);  // two aligned chunk PUTs, no read-modify-write
  EXPECT_EQ(c.puts, 2u);
}

}  // namespace
}  // namespace arkfs
