// Property-based tests.
//
//  * Model-based FS checking: a random sequence of POSIX operations is
//    applied both to ArkFS (full stack: leases, metatables, journals,
//    cache, object store) and to a trivial in-memory reference model; the
//    observable state must match at every step and after a remount.
//  * Codec fuzz: random corruption of serialized inodes/journals must never
//    crash or be silently accepted where checksums exist.
//  * PRT round-trip sweeps across chunk sizes and I/O patterns.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "core/cluster.h"
#include "journal/record.h"
#include "objstore/memory_store.h"
#include "prt/translator.h"

namespace arkfs {
namespace {

// ---------------------------------------------------------------------------
// Model-based checking
// ---------------------------------------------------------------------------

struct RefNode {
  bool is_dir = false;
  Bytes data;
};

// Reference model: path -> node, directories tracked explicitly.
class RefFs {
 public:
  RefFs() { nodes_["/"] = RefNode{true, {}}; }

  bool Exists(const std::string& p) const { return nodes_.contains(p); }
  bool IsDir(const std::string& p) const {
    auto it = nodes_.find(p);
    return it != nodes_.end() && it->second.is_dir;
  }
  std::string Parent(const std::string& p) const {
    auto slash = p.find_last_of('/');
    return slash == 0 ? "/" : p.substr(0, slash);
  }

  bool Mkdir(const std::string& p) {
    if (Exists(p) || !IsDir(Parent(p))) return false;
    nodes_[p] = RefNode{true, {}};
    return true;
  }
  bool WriteFile(const std::string& p, Bytes data) {
    if (IsDir(p) || !IsDir(Parent(p))) return false;
    nodes_[p] = RefNode{false, std::move(data)};
    return true;
  }
  bool Unlink(const std::string& p) {
    auto it = nodes_.find(p);
    if (it == nodes_.end() || it->second.is_dir) return false;
    nodes_.erase(it);
    return true;
  }
  bool Rmdir(const std::string& p) {
    if (p == "/" || !IsDir(p)) return false;
    for (const auto& [path, _] : nodes_) {
      if (path.size() > p.size() && path.compare(0, p.size(), p) == 0 &&
          path[p.size()] == '/') {
        return false;  // not empty
      }
    }
    nodes_.erase(p);
    return true;
  }
  bool Rename(const std::string& from, const std::string& to) {
    auto it = nodes_.find(from);
    if (it == nodes_.end() || !IsDir(Parent(to)) || from == to) return false;
    if (it->second.is_dir) return false;  // keep the model simple: files only
    if (IsDir(to)) return false;
    RefNode moved = it->second;
    nodes_.erase(from);
    nodes_[to] = std::move(moved);
    return true;
  }
  const Bytes* FileData(const std::string& p) const {
    auto it = nodes_.find(p);
    return (it != nodes_.end() && !it->second.is_dir) ? &it->second.data
                                                      : nullptr;
  }
  std::vector<std::string> AllPaths() const {
    std::vector<std::string> out;
    for (const auto& [p, _] : nodes_) {
      if (p != "/") out.push_back(p);
    }
    return out;
  }

 private:
  std::map<std::string, RefNode> nodes_;
};

class ModelCheckTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelCheckTest, RandomOpsMatchReferenceModel) {
  Rng rng(GetParam());
  auto store = std::make_shared<MemoryObjectStore>();
  auto cluster =
      ArkFsCluster::Create(store, ArkFsClusterOptions::ForTests()).value();
  auto fs = cluster->AddClient().value();
  const UserCred root = UserCred::Root();
  RefFs ref;

  // A bounded path universe keeps collisions (and thus interesting
  // transitions) frequent.
  auto random_path = [&](int max_depth) {
    std::string p;
    const int depth = 1 + static_cast<int>(rng.Below(max_depth));
    for (int d = 0; d < depth; ++d) {
      p += "/n" + std::to_string(rng.Below(4));
    }
    return p;
  };

  for (int step = 0; step < 400; ++step) {
    const std::string path = random_path(3);
    switch (rng.Below(6)) {
      case 0: {  // mkdir
        const bool ref_ok = ref.Mkdir(path);
        const Status st = fs->Mkdir(path, 0755, root);
        EXPECT_EQ(st.ok(), ref_ok) << "mkdir " << path << " @" << step
                                   << " -> " << st.ToString();
        break;
      }
      case 1: {  // write whole file
        Bytes data(rng.Below(3000), static_cast<std::uint8_t>(rng.Next()));
        const bool ref_ok = ref.WriteFile(path, data);
        const Status st = fs->WriteFileAt(path, data, root);
        EXPECT_EQ(st.ok(), ref_ok) << "write " << path << " @" << step
                                   << " -> " << st.ToString();
        break;
      }
      case 2: {  // unlink
        const bool ref_ok = ref.Unlink(path);
        const Status st = fs->Unlink(path, root);
        EXPECT_EQ(st.ok(), ref_ok) << "unlink " << path << " @" << step;
        break;
      }
      case 3: {  // rmdir
        const bool ref_ok = ref.Rmdir(path);
        const Status st = fs->Rmdir(path, root);
        EXPECT_EQ(st.ok(), ref_ok) << "rmdir " << path << " @" << step
                                   << " -> " << st.ToString();
        break;
      }
      case 4: {  // rename (files only, mirroring the model)
        const std::string to = random_path(3);
        const bool from_is_file = ref.Exists(path) && !ref.IsDir(path);
        const bool to_is_dir = ref.IsDir(to);
        if (!from_is_file || to_is_dir || path == to) break;  // skip
        const bool ref_ok = ref.Rename(path, to);
        const Status st = fs->Rename(path, to, root);
        EXPECT_EQ(st.ok(), ref_ok)
            << "rename " << path << " -> " << to << " @" << step;
        break;
      }
      default: {  // stat + content check
        auto st = fs->Stat(path, root);
        EXPECT_EQ(st.ok(), ref.Exists(path)) << "stat " << path << " @" << step;
        if (st.ok() && !ref.IsDir(path)) {
          const Bytes* expected = ref.FileData(path);
          ASSERT_NE(expected, nullptr);
          EXPECT_EQ(st->size, expected->size());
        }
        break;
      }
    }
  }

  // Full-state comparison, twice: live, then after flush + fresh client
  // (everything rebuilt from the object store).
  auto compare_all = [&](Vfs& mount) {
    for (const auto& p : ref.AllPaths()) {
      auto st = mount.Stat(p, root);
      ASSERT_TRUE(st.ok()) << p;
      if (ref.IsDir(p)) {
        EXPECT_EQ(st->type, FileType::kDirectory) << p;
      } else {
        auto data = mount.ReadWholeFile(p, root);
        ASSERT_TRUE(data.ok()) << p;
        EXPECT_EQ(*data, *ref.FileData(p)) << p;
      }
    }
  };
  compare_all(*fs);
  ASSERT_TRUE(fs->Shutdown().ok());
  auto remounted = cluster->AddClient("remounted").value();
  compare_all(*remounted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelCheckTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------------
// Codec fuzz
// ---------------------------------------------------------------------------

class CodecFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzzTest, CorruptedInodeNeverCrashes) {
  Rng rng(GetParam());
  Inode inode = MakeInode(DeterministicUuid(1, GetParam()),
                          FileType::kRegular, 0644, 1, 1, kRootIno);
  inode.symlink_target = "some target";
  inode.acl.Set({AclTag::kUserObj, 0, 7});
  const Bytes original = inode.Encode();

  for (int round = 0; round < 300; ++round) {
    Bytes mutated = original;
    const int mutations = 1 + static_cast<int>(rng.Below(4));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.Below(3)) {
        case 0:  // flip a byte
          mutated[rng.Below(mutated.size())] ^=
              static_cast<std::uint8_t>(1 + rng.Below(255));
          break;
        case 1:  // truncate
          mutated.resize(rng.Below(mutated.size() + 1));
          break;
        default:  // append garbage
          mutated.push_back(static_cast<std::uint8_t>(rng.Next()));
      }
    }
    // Must either decode to *something* or fail cleanly — never crash.
    (void)Inode::Decode(mutated);
  }
}

TEST_P(CodecFuzzTest, CorruptedJournalNeverReplaysGarbage) {
  Rng rng(GetParam());
  journal::Transaction txn;
  txn.seq = 9;
  txn.records.push_back(journal::Record::DentryAdd(
      {"victim", DeterministicUuid(2, GetParam()), FileType::kRegular}));
  txn.records.push_back(journal::Record::InodeUpsert(
      MakeInode(DeterministicUuid(3, GetParam()), FileType::kRegular, 0644, 1,
                1, kRootIno)));
  const Bytes original = journal::EncodeTransaction(txn);

  for (int round = 0; round < 300; ++round) {
    Bytes mutated = original;
    mutated[rng.Below(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.Below(255));
    const auto parsed = journal::ParseJournal(mutated);
    // CRC32C must reject any single-byte corruption of a framed txn (the
    // only acceptable outcomes are "rejected" or — if the flip hit bytes
    // after the frame, impossible here — identical content).
    if (!parsed.empty()) {
      // The corruption must have produced a bitwise-identical frame, which
      // a single-byte XOR with a nonzero value cannot; so this must be
      // unreachable.
      ADD_FAILURE() << "corrupted journal frame accepted at round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzTest, ::testing::Values(7, 77, 777));

// ---------------------------------------------------------------------------
// PRT sweeps
// ---------------------------------------------------------------------------

class PrtSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrtSweepTest, RandomIoPatternRoundTripsAtAnyChunkSize) {
  const std::uint64_t chunk = GetParam();
  auto store = std::make_shared<MemoryObjectStore>(chunk);
  Prt prt(store, chunk);
  const Uuid ino = DeterministicUuid(9, chunk);
  Rng rng(chunk * 31 + 7);

  Bytes shadow;  // reference content
  for (int op = 0; op < 60; ++op) {
    const std::uint64_t offset = rng.Below(4 * chunk);
    const std::uint64_t len = 1 + rng.Below(2 * chunk);
    Bytes data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());
    ASSERT_TRUE(prt.WriteData(ino, offset, data).ok());
    if (shadow.size() < offset + len) shadow.resize(offset + len, 0);
    std::copy(data.begin(), data.end(), shadow.begin() + offset);
  }
  auto read = prt.ReadData(ino, 0, shadow.size(), shadow.size());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, shadow);

  // Random ranged reads agree with the shadow too.
  for (int r = 0; r < 30; ++r) {
    const std::uint64_t offset = rng.Below(shadow.size());
    const std::uint64_t len = 1 + rng.Below(shadow.size() - offset);
    auto part = prt.ReadData(ino, offset, len, shadow.size());
    ASSERT_TRUE(part.ok());
    EXPECT_TRUE(std::equal(part->begin(), part->end(),
                           shadow.begin() + offset));
  }
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, PrtSweepTest,
                         ::testing::Values(64, 1000, 4096, 65536));

}  // namespace
}  // namespace arkfs
