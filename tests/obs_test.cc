// Tests for the unified observability plane: MetricsRegistry cell
// attachment/rollup, the runtime enable switch, concurrent mutation under
// Snapshot() (the TSan lane's target), and the Tracer ring + binary codec.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace arkfs::obs {
namespace {

TEST(MetricsRegistryTest, CountersSumAcrossSameNameCells) {
  MetricsRegistry registry;
  Counter a, b;
  a.Attach(&registry, "x.ops");
  b.Attach(&registry, "x.ops");
  a.Add(3);
  b.Add(4);
  EXPECT_EQ(registry.Snapshot().counter("x.ops"), 7u);
  EXPECT_EQ(registry.Snapshot().counter("absent"), 0u);
}

TEST(MetricsRegistryTest, GaugesTakeTheMaxAcrossCells) {
  MetricsRegistry registry;
  Gauge a, b;
  a.Attach(&registry, "x.peak");
  b.Attach(&registry, "x.peak");
  a.Set(9);
  b.UpdateMax(12);
  b.UpdateMax(5);  // never regresses
  EXPECT_EQ(registry.Snapshot().gauge("x.peak"), 12u);
}

TEST(MetricsRegistryTest, CellsDetachOnDestruction) {
  MetricsRegistry registry;
  {
    Counter tmp;
    tmp.Attach(&registry, "gone.ops");
    tmp.Add(5);
    EXPECT_EQ(registry.Snapshot().counter("gone.ops"), 5u);
  }
  EXPECT_EQ(registry.Snapshot().counters.count("gone.ops"), 0u);
}

TEST(MetricsRegistryTest, NullRegistryAttachesToProcessDefault) {
  Counter c;
  c.Attach(nullptr, "obs_test.default_cell");
  c.Add(2);
  EXPECT_EQ(MetricsRegistry::Default().Snapshot().counter(
                "obs_test.default_cell"),
            2u);
}

TEST(MetricsRegistryTest, DisableSwitchFreezesCells) {
  MetricsRegistry registry;
  Counter c;
  Gauge g;
  c.Attach(&registry, "x.ops");
  g.Attach(&registry, "x.peak");
  c.Add();
  SetMetricsEnabled(false);
  c.Add(100);
  g.Set(50);
  g.UpdateMax(50);
  SetMetricsEnabled(true);
  EXPECT_EQ(registry.Snapshot().counter("x.ops"), 1u);
  EXPECT_EQ(registry.Snapshot().gauge("x.peak"), 0u);
}

TEST(MetricsRegistryTest, HistogramsExportUnderPrefix) {
  MetricsRegistry registry;
  OpLatencySet lat({"put", "get"});
  registry.RegisterHistograms("objstore", &lat);
  lat.Record("put", Nanos(1000));
  lat.Record("put", Nanos(3000));
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.histogram("objstore.put").count, 2u);
  EXPECT_GT(snap.histogram("objstore.put").p99_ns, 0);
  registry.UnregisterHistograms(&lat);
  EXPECT_EQ(registry.Snapshot().histograms.count("objstore.put"), 0u);
}

TEST(MetricsRegistryTest, DumpTextListsEveryKind) {
  MetricsRegistry registry;
  Counter c;
  Gauge g;
  OpLatencySet lat({"get"});
  c.Attach(&registry, "a.count");
  g.Attach(&registry, "b.gauge");
  registry.RegisterHistograms("c", &lat);
  lat.Record("get", Nanos(500));
  c.Add(7);
  g.Set(3);
  const std::string text = registry.DumpText();
  EXPECT_NE(text.find("counter a.count 7"), std::string::npos);
  EXPECT_NE(text.find("gauge b.gauge 3"), std::string::npos);
  EXPECT_NE(text.find("hist c.get"), std::string::npos);
  registry.UnregisterHistograms(&lat);
}

// The TSan-lane target: writers hammer shared cells, attachers churn
// cells in and out, and a reader snapshots concurrently. Correctness bar:
// no data race, and the final snapshot sums exactly what the permanent
// cells recorded.
TEST(MetricsRegistryTest, ConcurrentMutationAndSnapshot) {
  MetricsRegistry registry;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  std::vector<Counter> cells(kWriters);
  for (auto& c : cells) c.Attach(&registry, "stress.ops");

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)registry.Snapshot().counter("stress.ops");
    }
  });
  std::thread churner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      Counter ephemeral;
      ephemeral.Attach(&registry, "stress.churn");
      ephemeral.Add();
      Gauge peak;
      peak.Attach(&registry, "stress.peak");
      peak.UpdateMax(1);
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) cells[w].Add();
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  churner.join();

  EXPECT_EQ(registry.Snapshot().counter("stress.ops"),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
}

TEST(TracerTest, SpansOutsideAnActiveTraceAreNoOps) {
  Tracer tracer(8);
  {
    Span s("orphan");  // no TraceScope installed
  }
  EXPECT_TRUE(tracer.Spans().empty());
}

TEST(TracerTest, RootSpanNestsChildrenUnderOneTraceId) {
  Tracer tracer(16);
  std::uint64_t trace_id = 0;
  {
    RootSpan root(&tracer, "vfs.op");
    trace_id = root.trace_id();
    Span child("lease.acquire");
    Span grandchild("objstore.put");
  }
  const auto spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 3u);
  for (const auto& s : spans) EXPECT_EQ(s.trace_id, trace_id);
  // Innermost spans close first; the root closes last and has no parent.
  EXPECT_EQ(spans[2].name, "vfs.op");
  EXPECT_EQ(spans[2].parent_span, 0u);
  EXPECT_EQ(spans[1].name, "lease.acquire");
  EXPECT_EQ(spans[1].parent_span, spans[2].span_id);
  EXPECT_EQ(spans[0].name, "objstore.put");
  EXPECT_EQ(spans[0].parent_span, spans[1].span_id);
}

TEST(TracerTest, NestedRootSpanJoinsTheActiveTrace) {
  // Convenience wrappers (WriteFileAt -> Open/Write/Close) re-enter Vfs
  // entry points; the inner RootSpan must NOT fork a second trace.
  Tracer tracer(16);
  std::uint64_t outer_id = 0;
  {
    RootSpan outer(&tracer, "vfs.write_file_at");
    outer_id = outer.trace_id();
    RootSpan inner(&tracer, "vfs.open");
    EXPECT_EQ(inner.trace_id(), outer_id);
  }
  for (const auto& s : tracer.Spans()) EXPECT_EQ(s.trace_id, outer_id);
}

TEST(TracerTest, RingDropsOldestBeyondCapacity) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    RootSpan root(&tracer, i % 2 ? "odd" : "even");
  }
  const auto spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first order is preserved across the wrap.
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].start_ns, spans[i - 1].start_ns);
  }
}

TEST(TracerTest, CaptureReplaysOnAnotherThread) {
  Tracer tracer(16);
  {
    RootSpan root(&tracer, "vfs.fsync");
    const ActiveTrace capture = CaptureTrace();
    std::thread worker([&] {
      TraceScope scope(capture);
      Span s("journal.commit");
    });
    worker.join();
  }
  const auto spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].trace_id, spans[1].trace_id);
  EXPECT_EQ(spans[0].name, "journal.commit");
}

TEST(TracerTest, BinaryDumpRoundTrips) {
  Tracer tracer(16);
  {
    RootSpan root(&tracer, "vfs.mkdir");
    Span child("journal.append");
  }
  const Bytes blob = tracer.DumpBinary();
  auto parsed = Tracer::ParseBinary(blob);
  ASSERT_TRUE(parsed.ok());
  const auto original = tracer.Spans();
  ASSERT_EQ(parsed->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*parsed)[i].trace_id, original[i].trace_id);
    EXPECT_EQ((*parsed)[i].span_id, original[i].span_id);
    EXPECT_EQ((*parsed)[i].parent_span, original[i].parent_span);
    EXPECT_EQ((*parsed)[i].name, original[i].name);
  }
  const std::string text = Tracer::FormatText(*parsed);
  EXPECT_NE(text.find("vfs.mkdir"), std::string::npos);
  EXPECT_NE(text.find("journal.append"), std::string::npos);
}

TEST(TracerTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Tracer::ParseBinary(AsBytes("not a span dump")).ok());
  EXPECT_FALSE(Tracer::ParseBinary(ByteSpan{}).ok());
}

}  // namespace
}  // namespace arkfs::obs
