// Tests for the lease manager and client-side lease protocol.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "lease/lease_client.h"
#include "lease/lease_manager.h"
#include "qos/admission.h"

namespace arkfs::lease {
namespace {

class LeaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fabric_ = std::make_shared<rpc::Fabric>(sim::NetworkProfile::Instant());
    manager_ = std::make_unique<LeaseManager>(fabric_, config_);
    ASSERT_TRUE(manager_->Start().ok());
  }

  LeaseClient MakeClient(const std::string& name) {
    LeaseClient::Options options;
    options.wait_budget = Millis(500);
    options.initial_backoff = Millis(1);
    // Keep transport retries short so unreachable-manager tests don't ride
    // the 2 s production deadline.
    options.rpc_retry.max_attempts = 3;
    options.rpc_retry.initial_backoff = Millis(1);
    options.rpc_retry.max_backoff = Millis(5);
    options.rpc_retry.deadline = Millis(100);
    return LeaseClient(fabric_, name, options);
  }

  LeaseManagerConfig config_ = LeaseManagerConfig::ForTests();
  rpc::FabricPtr fabric_;
  std::unique_ptr<LeaseManager> manager_;
  Uuid dir_ = DeterministicUuid(1, 1);
};

TEST_F(LeaseTest, FirstComeFirstServed) {
  auto c1 = MakeClient("c1");
  auto c2 = MakeClient("c2");
  auto grant = c1.Acquire(dir_);
  ASSERT_TRUE(grant.ok());
  EXPECT_FALSE(grant->fresh);  // first acquisition ever
  EXPECT_TRUE(grant->prev_leader.empty());

  auto denied = c2.Acquire(dir_);
  ASSERT_FALSE(denied.ok());
  ASSERT_TRUE(IsRedirect(denied.status()));
  EXPECT_EQ(denied.status().detail(), "c1");
  EXPECT_EQ(manager_->ActiveLeaseCount(), 1u);
}

TEST_F(LeaseTest, HolderExtensionIsFresh) {
  auto c1 = MakeClient("c1");
  ASSERT_TRUE(c1.Acquire(dir_).ok());
  auto again = c1.Acquire(dir_);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->fresh);
}

TEST_F(LeaseTest, ReacquireAfterExpiryBySameClientIsFresh) {
  auto c1 = MakeClient("c1");
  ASSERT_TRUE(c1.Acquire(dir_).ok());
  SleepFor(config_.lease_period + Millis(50));
  auto again = c1.Acquire(dir_);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->fresh);  // nobody led in between
}

TEST_F(LeaseTest, TakeoverAfterExpiryNamesPreviousLeader) {
  auto c1 = MakeClient("c1");
  auto c2 = MakeClient("c2");
  ASSERT_TRUE(c1.Acquire(dir_).ok());
  SleepFor(config_.lease_period + Millis(50));
  auto grant = c2.Acquire(dir_);
  ASSERT_TRUE(grant.ok());
  EXPECT_FALSE(grant->fresh);
  EXPECT_EQ(grant->prev_leader, "c1");  // flush-handshake target
}

TEST_F(LeaseTest, ReleaseFreesTheLease) {
  auto c1 = MakeClient("c1");
  auto c2 = MakeClient("c2");
  ASSERT_TRUE(c1.Acquire(dir_).ok());
  ASSERT_TRUE(c1.Release(dir_).ok());
  auto grant = c2.Acquire(dir_);
  ASSERT_TRUE(grant.ok());
  EXPECT_EQ(grant->prev_leader, "c1");
}

TEST_F(LeaseTest, ReleaseByNonHolderIgnored) {
  auto c1 = MakeClient("c1");
  auto c2 = MakeClient("c2");
  ASSERT_TRUE(c1.Acquire(dir_).ok());
  ASSERT_TRUE(c2.Release(dir_).ok());  // not the holder: no effect
  auto denied = c2.Acquire(dir_);
  EXPECT_TRUE(IsRedirect(denied.status()));
}

TEST_F(LeaseTest, IndependentDirectoriesIndependentLeases) {
  auto c1 = MakeClient("c1");
  auto c2 = MakeClient("c2");
  const Uuid other = DeterministicUuid(2, 2);
  ASSERT_TRUE(c1.Acquire(dir_).ok());
  ASSERT_TRUE(c2.Acquire(other).ok());
  EXPECT_EQ(manager_->ActiveLeaseCount(), 2u);
}

TEST_F(LeaseTest, LookupReportsLeader) {
  auto c1 = MakeClient("c1");
  auto before = c1.LookupLeader(dir_);
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before->has_value());
  ASSERT_TRUE(c1.Acquire(dir_).ok());
  auto after = c1.LookupLeader(dir_);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after->has_value());
  EXPECT_EQ(**after, "c1");
}

TEST_F(LeaseTest, RecoveryFencesAcquisition) {
  auto c1 = MakeClient("c1");
  auto c2 = MakeClient("c2");
  ASSERT_TRUE(c1.Acquire(dir_).ok());
  SleepFor(config_.lease_period + Millis(50));

  // c2 starts recovery of the crashed dir.
  ASSERT_TRUE(c2.BeginRecovery(dir_).ok());
  // c1 cannot sneak back in while recovery is running.
  LeaseClient::Options tight;
  tight.wait_budget = Millis(60);
  tight.initial_backoff = Millis(5);
  LeaseClient c1_tight(fabric_, "c1", tight);
  EXPECT_EQ(c1_tight.Acquire(dir_).code(), Errc::kBusy);

  ASSERT_TRUE(c2.EndRecovery(dir_).ok());
  // Recovery renewed the lease on c2.
  auto denied = c1.Acquire(dir_);
  ASSERT_TRUE(IsRedirect(denied.status()));
  EXPECT_EQ(denied.status().detail(), "c2");
}

TEST_F(LeaseTest, RecoveryRejectedWhileLeaderAlive) {
  auto c1 = MakeClient("c1");
  auto c2 = MakeClient("c2");
  ASSERT_TRUE(c1.Acquire(dir_).ok());
  EXPECT_EQ(c2.BeginRecovery(dir_).code(), Errc::kBusy);
}

TEST_F(LeaseTest, EndRecoveryByWrongClientRejected) {
  auto c2 = MakeClient("c2");
  auto c3 = MakeClient("c3");
  ASSERT_TRUE(c2.BeginRecovery(dir_).ok());
  EXPECT_EQ(c3.EndRecovery(dir_).code(), Errc::kInval);
  ASSERT_TRUE(c2.EndRecovery(dir_).ok());
}

TEST_F(LeaseTest, ManagerRestartImposesQuietPeriod) {
  auto c1 = MakeClient("c1");
  ASSERT_TRUE(c1.Acquire(dir_).ok());
  manager_->Restart();
  // Within the quiet period every acquire is told to wait.
  LeaseClient::Options tight;
  tight.wait_budget = Millis(20);
  tight.initial_backoff = Millis(5);
  LeaseClient c2(fabric_, "c2", tight);
  EXPECT_EQ(c2.Acquire(dir_).code(), Errc::kBusy);

  // After the quiet period (one lease term) acquisition works again — with
  // a patient client.
  auto patient = MakeClient("c3");
  auto grant = patient.Acquire(dir_);
  ASSERT_TRUE(grant.ok());
  // State was lost, so no previous leader is known.
  EXPECT_TRUE(grant->prev_leader.empty());
}

TEST_F(LeaseTest, ManagerUnreachableSurfacesTimeout) {
  manager_->Stop();
  auto c1 = MakeClient("c1");
  EXPECT_EQ(c1.Acquire(dir_).code(), Errc::kTimedOut);
}

TEST_F(LeaseTest, GrantCarriesFencingToken) {
  auto c1 = MakeClient("c1");
  auto grant = c1.Acquire(dir_);
  ASSERT_TRUE(grant.ok());
  EXPECT_TRUE(grant->token.valid());
  EXPECT_EQ(grant->token.epoch, manager_->epoch());

  // Extension keeps the token; a new tenure after expiry gets a fresh one.
  auto extended = c1.Acquire(dir_);
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ(extended->token, grant->token);

  SleepFor(config_.lease_period + Millis(50));
  auto fresh = c1.Acquire(dir_);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(grant->token < fresh->token);
}

TEST_F(LeaseTest, RedirectGrantsDelegationWithLeaderWatermark) {
  auto c1 = MakeClient("c1");
  auto c2 = MakeClient("c2");
  LeaseClient::AcquireOptions leader_opts;
  leader_opts.watermark = 5;  // leader-side journal watermark report
  auto grant = c1.Acquire(dir_, leader_opts, nullptr);
  ASSERT_TRUE(grant.ok());

  LeaseClient::AcquireOptions want;
  want.want_delegation = true;
  LeaseClient::Delegation deleg;
  auto redirected = c2.Acquire(dir_, want, &deleg);
  ASSERT_FALSE(redirected.ok());
  ASSERT_TRUE(IsRedirect(redirected.status()));
  EXPECT_TRUE(deleg.granted);
  EXPECT_EQ(deleg.token, grant->token);
  EXPECT_EQ(deleg.watermark, 5u);
  EXPECT_GT(deleg.until, Now());

  // The leader's renewal refreshes the stored watermark; the next redirect
  // hands the newer value out.
  leader_opts.watermark = 9;
  ASSERT_TRUE(c1.Acquire(dir_, leader_opts, nullptr).ok());
  LeaseClient::Delegation refreshed;
  ASSERT_FALSE(c2.Acquire(dir_, want, &refreshed).ok());
  EXPECT_TRUE(refreshed.granted);
  EXPECT_EQ(refreshed.watermark, 9u);

  // No delegation unless asked for.
  LeaseClient::Delegation unasked;
  ASSERT_FALSE(c2.Acquire(dir_, LeaseClient::AcquireOptions{}, &unasked).ok());
  EXPECT_FALSE(unasked.granted);
}

// --- wire-codec hardening -------------------------------------------------
//
// Lease grants are the root of all fencing decisions, so every message must
// reject truncated input, trailing garbage, and out-of-range enums instead
// of decoding to something plausible.

template <typename Message>
void ExpectStrictCodec(const Message& message) {
  const Bytes encoded = message.Encode();
  // Round trip succeeds on the exact bytes.
  ASSERT_TRUE(Message::Decode(encoded).ok());
  // Every strict prefix is rejected (truncation sweep).
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    Bytes truncated(encoded.begin(), encoded.begin() + len);
    EXPECT_FALSE(Message::Decode(truncated).ok())
        << "decoded a " << len << "-byte prefix of a " << encoded.size()
        << "-byte message";
  }
  // Trailing garbage is rejected.
  Bytes padded = encoded;
  padded.push_back(0x5a);
  EXPECT_FALSE(Message::Decode(padded).ok());
}

// Version-tolerant messages: newer fields ride in trailing extension
// blocks, so a frame that stops exactly at ANY older version's boundary
// must still decode (the missing extensions come back defaulted — frames
// from pre-extension peers keep working), while every OTHER truncation and
// any trailing garbage is still rejected. `extension_sizes` lists the
// trailing blocks oldest-first (v2 block, then v3 block, ...).
template <typename Message>
void ExpectVersionTolerantCodec(
    const Message& message,
    std::initializer_list<std::size_t> extension_sizes) {
  const Bytes encoded = message.Encode();
  ASSERT_TRUE(Message::Decode(encoded).ok());
  std::vector<std::size_t> boundaries;
  std::size_t suffix = 0;
  for (auto it = std::rbegin(extension_sizes); it != std::rend(extension_sizes);
       ++it) {
    suffix += *it;
    ASSERT_LT(suffix, encoded.size());
    boundaries.push_back(encoded.size() - suffix);
  }
  auto acceptable = [&](std::size_t len) {
    return std::find(boundaries.begin(), boundaries.end(), len) !=
           boundaries.end();
  };
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    Bytes truncated(encoded.begin(), encoded.begin() + len);
    if (acceptable(len)) {
      EXPECT_TRUE(Message::Decode(truncated).ok())
          << "an older-version frame stopping at byte " << len
          << " must still parse";
    } else {
      EXPECT_FALSE(Message::Decode(truncated).ok())
          << "decoded a " << len << "-byte prefix of a " << encoded.size()
          << "-byte message";
    }
  }
  Bytes padded = encoded;
  padded.push_back(0x5a);
  EXPECT_FALSE(Message::Decode(padded).ok());
}

// Trailing extension blocks, per version (fixed-width codec fields).
constexpr std::size_t kAcquireRequestV2Ext = 1 + 8;       // flag + watermark
constexpr std::size_t kAcquireRequestV3Ext = 4;           // tenant
constexpr std::size_t kAcquireResponseV2Ext = 8 + 1 + 8;  // wm + flag + until
constexpr std::size_t kAcquireResponseV3Ext = 8;          // retry_after_ns

TEST(LeaseWireTest, AcquireRequestCodec) {
  AcquireRequest req;
  req.dir_ino = DeterministicUuid(7, 7);
  req.client = "client-3";
  req.want_delegation = true;
  req.watermark = 99;
  req.tenant = 7;
  ExpectVersionTolerantCodec(req, {kAcquireRequestV2Ext, kAcquireRequestV3Ext});
  auto copy = AcquireRequest::Decode(req.Encode());
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy->dir_ino, req.dir_ino);
  EXPECT_EQ(copy->client, req.client);
  EXPECT_TRUE(copy->want_delegation);
  EXPECT_EQ(copy->watermark, 99u);
  EXPECT_EQ(copy->tenant, 7u);
}

TEST(LeaseWireTest, AcquireRequestLegacyFrameParses) {
  // A frame from a pre-delegation sender stops at the v1 boundary; the
  // extension fields must come back defaulted, everything else intact.
  AcquireRequest req;
  req.dir_ino = DeterministicUuid(7, 8);
  req.client = "client-old";
  req.want_delegation = true;  // must NOT survive the truncation
  req.watermark = 1234;
  req.tenant = 42;
  Bytes encoded = req.Encode();
  encoded.resize(encoded.size() - kAcquireRequestV2Ext - kAcquireRequestV3Ext);
  auto legacy = AcquireRequest::Decode(encoded);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy->dir_ino, req.dir_ino);
  EXPECT_EQ(legacy->client, req.client);
  EXPECT_FALSE(legacy->want_delegation);
  EXPECT_EQ(legacy->watermark, 0u);
  EXPECT_EQ(legacy->tenant, 0u);
}

TEST(LeaseWireTest, AcquireRequestV2FrameDefaultsTenant) {
  // A frame from a pre-tenant (v2) sender stops before the v3 block; the
  // delegation fields survive, the tenant defaults to 0 ("untenanted").
  AcquireRequest req;
  req.dir_ino = DeterministicUuid(7, 9);
  req.client = "client-v2";
  req.want_delegation = true;
  req.watermark = 55;
  req.tenant = 9;  // must NOT survive the truncation
  Bytes encoded = req.Encode();
  encoded.resize(encoded.size() - kAcquireRequestV3Ext);
  auto v2 = AcquireRequest::Decode(encoded);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->client, req.client);
  EXPECT_TRUE(v2->want_delegation);
  EXPECT_EQ(v2->watermark, 55u);
  EXPECT_EQ(v2->tenant, 0u);
}

TEST(LeaseWireTest, AcquireResponseCodec) {
  AcquireResponse resp;
  resp.outcome = AcquireOutcome::kGranted;
  resp.leader = "c1";
  resp.lease_until_ns = 123456789;
  resp.fresh = true;
  resp.prev_leader = "c0";
  resp.token = FenceToken{4, 17};
  resp.watermark = 41;
  resp.deleg = true;
  resp.deleg_until_ns = 987654321;
  resp.retry_after_ns = 2500000;
  ExpectVersionTolerantCodec(resp,
                             {kAcquireResponseV2Ext, kAcquireResponseV3Ext});
  auto copy = AcquireResponse::Decode(resp.Encode());
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy->outcome, resp.outcome);
  EXPECT_EQ(copy->leader, resp.leader);
  EXPECT_EQ(copy->lease_until_ns, resp.lease_until_ns);
  EXPECT_EQ(copy->fresh, resp.fresh);
  EXPECT_EQ(copy->prev_leader, resp.prev_leader);
  EXPECT_EQ(copy->token, resp.token);
  EXPECT_EQ(copy->watermark, 41u);
  EXPECT_TRUE(copy->deleg);
  EXPECT_EQ(copy->deleg_until_ns, 987654321);
  EXPECT_EQ(copy->retry_after_ns, 2500000);
}

TEST(LeaseWireTest, AcquireResponseLegacyFrameParses) {
  AcquireResponse resp;
  resp.outcome = AcquireOutcome::kRedirect;
  resp.leader = "c9";
  resp.lease_until_ns = 42;
  resp.token = FenceToken{2, 3};
  resp.watermark = 77;
  resp.deleg = true;
  resp.deleg_until_ns = 777;
  resp.retry_after_ns = 999;
  Bytes encoded = resp.Encode();
  encoded.resize(encoded.size() - kAcquireResponseV2Ext -
                 kAcquireResponseV3Ext);
  auto legacy = AcquireResponse::Decode(encoded);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy->outcome, resp.outcome);
  EXPECT_EQ(legacy->leader, resp.leader);
  EXPECT_EQ(legacy->token, resp.token);
  EXPECT_EQ(legacy->watermark, 0u);   // defaulted
  EXPECT_FALSE(legacy->deleg);        // defaulted: no phantom delegation
  EXPECT_EQ(legacy->deleg_until_ns, 0);
  EXPECT_EQ(legacy->retry_after_ns, 0);
}

TEST(LeaseWireTest, AcquireResponseV2FrameDefaultsRetryAfter) {
  // A frame from a pre-QoS (v2) manager stops before the v3 block; the
  // delegation fields survive, the retry-after hint defaults to "none".
  AcquireResponse resp;
  resp.outcome = AcquireOutcome::kWait;
  resp.leader = "c2";
  resp.watermark = 13;
  resp.deleg = true;
  resp.deleg_until_ns = 333;
  resp.retry_after_ns = 555;  // must NOT survive the truncation
  Bytes encoded = resp.Encode();
  encoded.resize(encoded.size() - kAcquireResponseV3Ext);
  auto v2 = AcquireResponse::Decode(encoded);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->outcome, resp.outcome);
  EXPECT_EQ(v2->watermark, 13u);
  EXPECT_TRUE(v2->deleg);
  EXPECT_EQ(v2->deleg_until_ns, 333);
  EXPECT_EQ(v2->retry_after_ns, 0);
}

// Manager-side admission control sheds IN-BAND: a throttled tenant gets a
// kWait outcome carrying retry_after_ns, never a status-level kAgain (which
// the client would misread as a standby/leader redirect hint).
TEST(LeaseQosTest, ManagerAdmissionShedsInBandAsWait) {
  auto fabric = std::make_shared<rpc::Fabric>(sim::NetworkProfile::Instant());
  qos::TenantMetrics metrics;
  qos::AdmissionConfig ac;
  ac.enabled = true;
  ac.tenants[5] = qos::TenantRate{1.0, 1.0};  // one token, 1/s refill
  qos::AdmissionController admission(ac, &metrics);
  LeaseManagerConfig config = LeaseManagerConfig::ForTests();
  config.admission = &admission;
  LeaseManager manager(fabric, config);
  ASSERT_TRUE(manager.Start().ok());

  AcquireRequest req;
  req.dir_ino = DeterministicUuid(3, 3);
  req.client = "c1";
  req.tenant = 5;
  AcquireResponse first = manager.Acquire(req);
  EXPECT_EQ(first.outcome, AcquireOutcome::kGranted);
  AcquireResponse second = manager.Acquire(req);  // bucket now empty
  EXPECT_EQ(second.outcome, AcquireOutcome::kWait);
  EXPECT_GT(second.retry_after_ns, 0);

  // An untenanted (tenant 0) request rides the unlimited default bucket.
  AcquireRequest other;
  other.dir_ino = DeterministicUuid(3, 4);
  other.client = "c2";
  AcquireResponse granted = manager.Acquire(other);
  EXPECT_EQ(granted.outcome, AcquireOutcome::kGranted);
  EXPECT_EQ(metrics.For(5).shed.value(), 1u);
  manager.Stop();
}

TEST(LeaseWireTest, AcquireResponseRejectsUnknownOutcome) {
  AcquireResponse resp;
  resp.outcome = AcquireOutcome::kNotActive;
  Bytes encoded = resp.Encode();
  encoded[0] = 0x7f;  // outcome is the first byte
  EXPECT_FALSE(AcquireResponse::Decode(encoded).ok());
}

TEST(LeaseWireTest, ReleaseRequestCodec) {
  ReleaseRequest req;
  req.dir_ino = DeterministicUuid(9, 1);
  req.client = "client-1";
  req.token = FenceToken{2, 5};
  ExpectStrictCodec(req);
  auto copy = ReleaseRequest::Decode(req.Encode());
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy->token, req.token);
}

TEST(LeaseWireTest, RecoveryRequestCodec) {
  RecoveryRequest req;
  req.dir_ino = DeterministicUuid(9, 2);
  req.client = "client-2";
  req.phase = RecoveryPhase::kEnd;
  ExpectStrictCodec(req);
}

TEST(LeaseWireTest, LookupCodecs) {
  LookupRequest req;
  req.dir_ino = DeterministicUuid(9, 3);
  ExpectStrictCodec(req);
  LookupResponse resp;
  resp.has_leader = true;
  resp.leader = "c9";
  ExpectStrictCodec(resp);
}

TEST(LeaseWireTest, PingCodecs) {
  PingRequest req;
  req.epoch = 12;
  req.from = "lease-manager-2";
  ExpectStrictCodec(req);
  PingResponse resp;
  resp.epoch = 12;
  resp.active = true;
  resp.active_hint = "lease-manager-0";
  ExpectStrictCodec(resp);
  auto copy = PingResponse::Decode(resp.Encode());
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy->epoch, 12u);
  EXPECT_TRUE(copy->active);
  EXPECT_EQ(copy->active_hint, "lease-manager-0");
}

TEST(LeaseWireTest, EpochRecordCodec) {
  EpochRecord rec;
  rec.epoch = 42;
  rec.active = "lease-manager-1";
  ExpectStrictCodec(rec);
  auto copy = EpochRecord::Decode(rec.Encode());
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy->epoch, 42u);
  EXPECT_EQ(copy->active, "lease-manager-1");
}

TEST(LeaseWireTest, EpochRecordRejectsCorruption) {
  EpochRecord rec;
  rec.epoch = 7;
  rec.active = "lease-manager-0";
  const Bytes good = rec.Encode();

  Bytes bad_magic = good;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(EpochRecord::Decode(bad_magic).ok());

  // A flipped bit anywhere in the body trips the CRC.
  for (std::size_t i = 4; i < good.size(); ++i) {
    Bytes flipped = good;
    flipped[i] ^= 0x01;
    EXPECT_FALSE(EpochRecord::Decode(flipped).ok()) << "byte " << i;
  }

  EXPECT_FALSE(EpochRecord::Decode(Bytes{}).ok());
  EXPECT_FALSE(EpochRecord::Decode(Bytes{0xde, 0xad, 0xbe, 0xef}).ok());
}

TEST(LeaseWireTest, FenceObjectCodec) {
  const FenceToken token{3, 9};
  const Bytes encoded = EncodeFenceObject(token);
  auto decoded = DecodeFenceObject(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, token);

  for (std::size_t len = 0; len < encoded.size(); ++len) {
    Bytes truncated(encoded.begin(), encoded.begin() + len);
    EXPECT_FALSE(DecodeFenceObject(truncated).ok()) << "prefix " << len;
  }
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    Bytes flipped = encoded;
    flipped[i] ^= 0x01;
    EXPECT_FALSE(DecodeFenceObject(flipped).ok()) << "byte " << i;
  }
  Bytes padded = encoded;
  padded.push_back(0);
  EXPECT_FALSE(DecodeFenceObject(padded).ok());
}

}  // namespace
}  // namespace arkfs::lease
