// Tests for the lease manager and client-side lease protocol.
#include <gtest/gtest.h>

#include "lease/lease_client.h"
#include "lease/lease_manager.h"

namespace arkfs::lease {
namespace {

class LeaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fabric_ = std::make_shared<rpc::Fabric>(sim::NetworkProfile::Instant());
    manager_ = std::make_unique<LeaseManager>(fabric_, config_);
    ASSERT_TRUE(manager_->Start().ok());
  }

  LeaseClient MakeClient(const std::string& name) {
    LeaseClient::Options options;
    options.wait_budget = Millis(500);
    options.initial_backoff = Millis(1);
    return LeaseClient(fabric_, name, options);
  }

  LeaseManagerConfig config_ = LeaseManagerConfig::ForTests();
  rpc::FabricPtr fabric_;
  std::unique_ptr<LeaseManager> manager_;
  Uuid dir_ = DeterministicUuid(1, 1);
};

TEST_F(LeaseTest, FirstComeFirstServed) {
  auto c1 = MakeClient("c1");
  auto c2 = MakeClient("c2");
  auto grant = c1.Acquire(dir_);
  ASSERT_TRUE(grant.ok());
  EXPECT_FALSE(grant->fresh);  // first acquisition ever
  EXPECT_TRUE(grant->prev_leader.empty());

  auto denied = c2.Acquire(dir_);
  ASSERT_FALSE(denied.ok());
  ASSERT_TRUE(IsRedirect(denied.status()));
  EXPECT_EQ(denied.status().detail(), "c1");
  EXPECT_EQ(manager_->ActiveLeaseCount(), 1u);
}

TEST_F(LeaseTest, HolderExtensionIsFresh) {
  auto c1 = MakeClient("c1");
  ASSERT_TRUE(c1.Acquire(dir_).ok());
  auto again = c1.Acquire(dir_);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->fresh);
}

TEST_F(LeaseTest, ReacquireAfterExpiryBySameClientIsFresh) {
  auto c1 = MakeClient("c1");
  ASSERT_TRUE(c1.Acquire(dir_).ok());
  SleepFor(config_.lease_period + Millis(50));
  auto again = c1.Acquire(dir_);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->fresh);  // nobody led in between
}

TEST_F(LeaseTest, TakeoverAfterExpiryNamesPreviousLeader) {
  auto c1 = MakeClient("c1");
  auto c2 = MakeClient("c2");
  ASSERT_TRUE(c1.Acquire(dir_).ok());
  SleepFor(config_.lease_period + Millis(50));
  auto grant = c2.Acquire(dir_);
  ASSERT_TRUE(grant.ok());
  EXPECT_FALSE(grant->fresh);
  EXPECT_EQ(grant->prev_leader, "c1");  // flush-handshake target
}

TEST_F(LeaseTest, ReleaseFreesTheLease) {
  auto c1 = MakeClient("c1");
  auto c2 = MakeClient("c2");
  ASSERT_TRUE(c1.Acquire(dir_).ok());
  ASSERT_TRUE(c1.Release(dir_).ok());
  auto grant = c2.Acquire(dir_);
  ASSERT_TRUE(grant.ok());
  EXPECT_EQ(grant->prev_leader, "c1");
}

TEST_F(LeaseTest, ReleaseByNonHolderIgnored) {
  auto c1 = MakeClient("c1");
  auto c2 = MakeClient("c2");
  ASSERT_TRUE(c1.Acquire(dir_).ok());
  ASSERT_TRUE(c2.Release(dir_).ok());  // not the holder: no effect
  auto denied = c2.Acquire(dir_);
  EXPECT_TRUE(IsRedirect(denied.status()));
}

TEST_F(LeaseTest, IndependentDirectoriesIndependentLeases) {
  auto c1 = MakeClient("c1");
  auto c2 = MakeClient("c2");
  const Uuid other = DeterministicUuid(2, 2);
  ASSERT_TRUE(c1.Acquire(dir_).ok());
  ASSERT_TRUE(c2.Acquire(other).ok());
  EXPECT_EQ(manager_->ActiveLeaseCount(), 2u);
}

TEST_F(LeaseTest, LookupReportsLeader) {
  auto c1 = MakeClient("c1");
  auto before = c1.LookupLeader(dir_);
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before->has_value());
  ASSERT_TRUE(c1.Acquire(dir_).ok());
  auto after = c1.LookupLeader(dir_);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after->has_value());
  EXPECT_EQ(**after, "c1");
}

TEST_F(LeaseTest, RecoveryFencesAcquisition) {
  auto c1 = MakeClient("c1");
  auto c2 = MakeClient("c2");
  ASSERT_TRUE(c1.Acquire(dir_).ok());
  SleepFor(config_.lease_period + Millis(50));

  // c2 starts recovery of the crashed dir.
  ASSERT_TRUE(c2.BeginRecovery(dir_).ok());
  // c1 cannot sneak back in while recovery is running.
  LeaseClient::Options tight;
  tight.wait_budget = Millis(60);
  tight.initial_backoff = Millis(5);
  LeaseClient c1_tight(fabric_, "c1", tight);
  EXPECT_EQ(c1_tight.Acquire(dir_).code(), Errc::kBusy);

  ASSERT_TRUE(c2.EndRecovery(dir_).ok());
  // Recovery renewed the lease on c2.
  auto denied = c1.Acquire(dir_);
  ASSERT_TRUE(IsRedirect(denied.status()));
  EXPECT_EQ(denied.status().detail(), "c2");
}

TEST_F(LeaseTest, RecoveryRejectedWhileLeaderAlive) {
  auto c1 = MakeClient("c1");
  auto c2 = MakeClient("c2");
  ASSERT_TRUE(c1.Acquire(dir_).ok());
  EXPECT_EQ(c2.BeginRecovery(dir_).code(), Errc::kBusy);
}

TEST_F(LeaseTest, EndRecoveryByWrongClientRejected) {
  auto c2 = MakeClient("c2");
  auto c3 = MakeClient("c3");
  ASSERT_TRUE(c2.BeginRecovery(dir_).ok());
  EXPECT_EQ(c3.EndRecovery(dir_).code(), Errc::kInval);
  ASSERT_TRUE(c2.EndRecovery(dir_).ok());
}

TEST_F(LeaseTest, ManagerRestartImposesQuietPeriod) {
  auto c1 = MakeClient("c1");
  ASSERT_TRUE(c1.Acquire(dir_).ok());
  manager_->Restart();
  // Within the quiet period every acquire is told to wait.
  LeaseClient::Options tight;
  tight.wait_budget = Millis(20);
  tight.initial_backoff = Millis(5);
  LeaseClient c2(fabric_, "c2", tight);
  EXPECT_EQ(c2.Acquire(dir_).code(), Errc::kBusy);

  // After the quiet period (one lease term) acquisition works again — with
  // a patient client.
  auto patient = MakeClient("c3");
  auto grant = patient.Acquire(dir_);
  ASSERT_TRUE(grant.ok());
  // State was lost, so no previous leader is known.
  EXPECT_TRUE(grant->prev_leader.empty());
}

TEST_F(LeaseTest, ManagerUnreachableSurfacesTimeout) {
  manager_->Stop();
  auto c1 = MakeClient("c1");
  EXPECT_EQ(c1.Acquire(dir_).code(), Errc::kTimedOut);
}

}  // namespace
}  // namespace arkfs::lease
