// Multi-client tests: forwarding to directory leaders, lease handoff,
// shared-file read/write leases, permission caching.
#include <gtest/gtest.h>

#include <thread>

#include "core/cluster.h"
#include "objstore/memory_store.h"

namespace arkfs {
namespace {

class MultiClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_shared<MemoryObjectStore>();
    cluster_ =
        ArkFsCluster::Create(store_, ArkFsClusterOptions::ForTests()).value();
    c1_ = cluster_->AddClient("c1").value();
    c2_ = cluster_->AddClient("c2").value();
  }

  ObjectStorePtr store_;
  std::unique_ptr<ArkFsCluster> cluster_;
  std::shared_ptr<Client> c1_, c2_;
  UserCred root_ = UserCred::Root();
};

TEST_F(MultiClientTest, SecondClientSeesFirstClientsFiles) {
  ASSERT_TRUE(c1_->WriteFileAt("/shared.txt", AsBytes("from-c1"), root_).ok());
  // c2 must see it immediately (the leader serves from its metatable even
  // though nothing is checkpointed yet).
  auto data = c2_->ReadWholeFile("/shared.txt", root_);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "from-c1");
  EXPECT_GT(c2_->stats().forwarded_ops, 0u);
  EXPECT_GT(c1_->stats().served_remote_ops, 0u);
}

TEST_F(MultiClientTest, CreateForwardedToLeader) {
  // c1 becomes leader of root; c2's create is served by c1.
  ASSERT_TRUE(c1_->Mkdir("/by_c1", 0755, root_).ok());
  ASSERT_TRUE(c2_->WriteFileAt("/by_c2.txt", AsBytes("x"), root_).ok());
  EXPECT_TRUE(c1_->Stat("/by_c2.txt", root_).ok());
  auto entries = c1_->ReadDir("/", root_);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
}

TEST_F(MultiClientTest, NonOverlappingDirectoriesNoForwarding) {
  // The paper's controlled environment: each client works in its own dir.
  ASSERT_TRUE(c1_->Mkdir("/dir1", 0755, root_).ok());
  ASSERT_TRUE(c2_->Mkdir("/dir2", 0755, root_).ok());
  const auto fwd1_before = c1_->stats().forwarded_ops;
  const auto fwd2_before = c2_->stats().forwarded_ops;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        c1_->WriteFileAt("/dir1/f" + std::to_string(i), AsBytes("1"), root_).ok());
    ASSERT_TRUE(
        c2_->WriteFileAt("/dir2/f" + std::to_string(i), AsBytes("2"), root_).ok());
  }
  // c1 leads /dir1 and c2 leads /dir2: per-file operations are local. Only
  // path resolution in / may forward (and the permission cache kills most
  // of that).
  const auto fwd1 = c1_->stats().forwarded_ops - fwd1_before;
  const auto fwd2 = c2_->stats().forwarded_ops - fwd2_before;
  EXPECT_LT(fwd1 + fwd2, 100u);
  EXPECT_GT(c1_->stats().local_meta_ops, 40u);
  EXPECT_GT(c2_->stats().local_meta_ops, 40u);
}

TEST_F(MultiClientTest, LeaseHandoffAfterExpiry) {
  ASSERT_TRUE(c1_->Mkdir("/handoff", 0755, root_).ok());
  ASSERT_TRUE(c1_->WriteFileAt("/handoff/f1", AsBytes("a"), root_).ok());
  // Wait out c1's lease so c2 can take leadership of /handoff.
  SleepFor(cluster_->lease_manager().config().lease_period + Millis(100));
  ASSERT_TRUE(c2_->WriteFileAt("/handoff/f2", AsBytes("b"), root_).ok());
  auto entries = c2_->ReadDir("/handoff", root_);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);  // the handoff preserved f1
  EXPECT_EQ(ToString(*c2_->ReadWholeFile("/handoff/f1", root_)), "a");
}

TEST_F(MultiClientTest, ConcurrentCreatesInSameDirectory) {
  ASSERT_TRUE(c1_->Mkdir("/contended", 0755, root_).ok());
  auto worker = [&](const std::shared_ptr<Client>& c, int base) {
    for (int i = 0; i < 25; ++i) {
      ASSERT_TRUE(c->WriteFileAt(
                       "/contended/f" + std::to_string(base + i),
                       AsBytes("v"), root_)
                      .ok());
    }
  };
  std::thread t1(worker, c1_, 0);
  std::thread t2(worker, c2_, 1000);
  t1.join();
  t2.join();
  auto entries = c1_->ReadDir("/contended", root_);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 50u);
}

TEST_F(MultiClientTest, ConcurrentCreatesInDistinctDirectories) {
  ASSERT_TRUE(c1_->Mkdir("/p1", 0755, root_).ok());
  ASSERT_TRUE(c2_->Mkdir("/p2", 0755, root_).ok());
  std::thread t1([&] {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(
          c1_->WriteFileAt("/p1/f" + std::to_string(i), AsBytes("1"), root_).ok());
    }
  });
  std::thread t2([&] {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(
          c2_->WriteFileAt("/p2/f" + std::to_string(i), AsBytes("2"), root_).ok());
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(c1_->ReadDir("/p1", root_)->size(), 40u);
  EXPECT_EQ(c1_->ReadDir("/p2", root_)->size(), 40u);
}

TEST_F(MultiClientTest, WriterFlushMakesDataVisibleToSecondReader) {
  // c1 writes with a write lease (cached); c2 opening for read triggers the
  // leader's coordination so it never reads stale data.
  OpenOptions create;
  create.write = true;
  create.create = true;
  auto w = c1_->Open("/wfile", create, root_);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(c1_->Write(*w, 0, AsBytes("cached-write")).ok());
  ASSERT_TRUE(c1_->Fsync(*w).ok());

  auto data = c2_->ReadWholeFile("/wfile", root_);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "cached-write");
  ASSERT_TRUE(c1_->Close(*w).ok());
}

TEST_F(MultiClientTest, ConcurrentWriterAndReaderForceDirectIo) {
  OpenOptions create;
  create.write = true;
  create.create = true;
  auto w = c1_->Open("/shared_rw", create, root_);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(c1_->Write(*w, 0, AsBytes("v1")).ok());  // upgrades to write lease

  // c2 opens for read while c1 holds the write lease: the leader broadcasts
  // a flush and everyone goes direct.
  OpenOptions read;
  auto r = c2_->Open("/shared_rw", read, root_);
  ASSERT_TRUE(r.ok());
  auto seen = c2_->Read(*r, 0, 10);
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(ToString(*seen), "v1");  // flushed by the broadcast

  // Subsequent writes are direct and visible after size commit.
  ASSERT_TRUE(c1_->Write(*w, 2, AsBytes("+direct")).ok());
  ASSERT_TRUE(c1_->Fsync(*w).ok());
  auto grown = c2_->ReadWholeFile("/shared_rw", root_);
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(ToString(*grown), "v1+direct");
  ASSERT_TRUE(c1_->Close(*w).ok());
  ASSERT_TRUE(c2_->Close(*r).ok());
}

TEST_F(MultiClientTest, PermissionChangeVisibleAfterPcacheTtl) {
  // pcache mode relaxes ACL visibility to the lease period (paper §III-C).
  UserCred alice{1000, 1000, {}};
  ASSERT_TRUE(c1_->Mkdir("/relaxed", 0755, root_).ok());
  ASSERT_TRUE(c2_->Stat("/relaxed", root_).ok());  // c2 caches perms
  ASSERT_TRUE(c1_->WriteFileAt("/relaxed/f", AsBytes("x"), root_).ok());
  ASSERT_TRUE(c2_->Stat("/relaxed/f", root_).ok());

  // Tighten the directory; c2 may still pass traversal checks from cache
  // until the TTL lapses, but must see the denial afterwards.
  ASSERT_TRUE(c1_->Chmod("/relaxed", 0700, root_).ok());
  SleepFor(c2_->config().perm_cache_ttl + Millis(50));
  EXPECT_EQ(c2_->Stat("/relaxed/f", alice).code(), Errc::kAccess);
}

TEST_F(MultiClientTest, ThirdClientJoinsLate) {
  ASSERT_TRUE(c1_->MkdirAll("/a/b", 0755, root_).ok());
  ASSERT_TRUE(c2_->WriteFileAt("/a/b/f", AsBytes("zzz"), root_).ok());
  auto c3 = cluster_->AddClient("c3").value();
  EXPECT_EQ(ToString(*c3->ReadWholeFile("/a/b/f", root_)), "zzz");
  ASSERT_TRUE(c3->Unlink("/a/b/f", root_).ok());
  EXPECT_EQ(c1_->Stat("/a/b/f", root_).code(), Errc::kNoEnt);
}

TEST_F(MultiClientTest, RemoteRenameWithinLeaderDirectory) {
  ASSERT_TRUE(c1_->Mkdir("/rn", 0755, root_).ok());
  ASSERT_TRUE(c1_->WriteFileAt("/rn/x", AsBytes("X"), root_).ok());
  // c2 renames within a directory led by c1 -> forwarded kRenameLocal.
  ASSERT_TRUE(c2_->Rename("/rn/x", "/rn/y", root_).ok());
  EXPECT_EQ(c1_->Stat("/rn/x", root_).code(), Errc::kNoEnt);
  EXPECT_EQ(ToString(*c1_->ReadWholeFile("/rn/y", root_)), "X");
}

}  // namespace
}  // namespace arkfs
