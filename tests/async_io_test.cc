// Tests for the async batched object-I/O layer: batch correctness, error
// aggregation, partial-failure injection, the in-flight cap, nested batches
// (deadlock-freedom via caller participation), and concurrency stress.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/clock.h"
#include "obs/metrics.h"
#include "objstore/async_io.h"
#include "objstore/cluster_store.h"
#include "objstore/memory_store.h"
#include "objstore/wrappers.h"
#include "prt/translator.h"

namespace arkfs {
namespace {

Bytes MakeData(std::size_t n, std::uint8_t seed) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>(seed + i);
  }
  return b;
}

// Tracks how many primitive operations run inside the base store at once.
class ConcurrencyProbeStore : public ObjectStore {
 public:
  explicit ConcurrencyProbeStore(ObjectStorePtr base, Nanos dwell = Nanos(0))
      : base_(std::move(base)), dwell_(dwell) {}

  Result<Bytes> Get(const std::string& key) override {
    Scope s(this);
    return base_->Get(key);
  }
  Result<Bytes> GetRange(const std::string& key, std::uint64_t offset,
                         std::uint64_t length) override {
    Scope s(this);
    return base_->GetRange(key, offset, length);
  }
  Status Put(const std::string& key, ByteSpan data) override {
    Scope s(this);
    return base_->Put(key, data);
  }
  Status PutRange(const std::string& key, std::uint64_t offset,
                  ByteSpan data) override {
    Scope s(this);
    return base_->PutRange(key, offset, data);
  }
  Status Delete(const std::string& key) override {
    Scope s(this);
    return base_->Delete(key);
  }
  Result<ObjectMeta> Head(const std::string& key) override {
    Scope s(this);
    return base_->Head(key);
  }
  Result<std::vector<std::string>> List(const std::string& prefix) override {
    Scope s(this);
    return base_->List(prefix);
  }

  bool supports_partial_write() const override {
    return base_->supports_partial_write();
  }
  std::uint64_t max_object_size() const override {
    return base_->max_object_size();
  }
  std::string name() const override { return "probe/" + base_->name(); }

  std::size_t peak() const { return peak_.load(); }

 private:
  struct Scope {
    explicit Scope(ConcurrencyProbeStore* s) : store(s) {
      const std::size_t cur = ++store->current_;
      std::size_t prev = store->peak_.load();
      while (cur > prev && !store->peak_.compare_exchange_weak(prev, cur)) {
      }
      if (store->dwell_ > Nanos(0)) SleepFor(store->dwell_);
    }
    ~Scope() { --store->current_; }
    ConcurrencyProbeStore* store;
  };

  ObjectStorePtr base_;
  Nanos dwell_;
  std::atomic<std::size_t> current_{0};
  std::atomic<std::size_t> peak_{0};
};

TEST(AsyncObjectIoTest, SingleSubmissionsRoundTrip) {
  auto store = std::make_shared<MemoryObjectStore>();
  AsyncObjectIo io(store, AsyncIoConfig::ForTests());

  auto put = io.SubmitPut("k1", MakeData(64, 1));
  ASSERT_TRUE(put.get().ok());

  auto get = io.SubmitGet("k1");
  auto got = get.get();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, MakeData(64, 1));

  auto range = io.SubmitGetRange("k1", 8, 16);
  auto part = range.get();
  ASSERT_TRUE(part.ok());
  EXPECT_EQ(part->size(), 16u);
  EXPECT_EQ((*part)[0], MakeData(64, 1)[8]);

  auto del = io.SubmitDelete("k1");
  ASSERT_TRUE(del.get().ok());
  EXPECT_EQ(io.SubmitGet("k1").get().code(), Errc::kNoEnt);
}

TEST(AsyncObjectIoTest, MultiGetReturnsPerKeyResults) {
  auto store = std::make_shared<MemoryObjectStore>();
  AsyncObjectIo io(store, AsyncIoConfig::ForTests());
  ASSERT_TRUE(store->Put("a", MakeData(10, 1)).ok());
  ASSERT_TRUE(store->Put("c", MakeData(20, 3)).ok());

  std::vector<BatchGet> gets(3);
  gets[0].key = "a";
  gets[1].key = "b";  // missing
  gets[2].key = "c";
  auto r = io.MultiGet(std::move(gets));

  EXPECT_EQ(r.status.code(), Errc::kNoEnt);  // first error surfaces
  ASSERT_EQ(r.results.size(), 3u);
  ASSERT_TRUE(r.results[0].ok());
  EXPECT_EQ(*r.results[0], MakeData(10, 1));
  EXPECT_EQ(r.results[1].code(), Errc::kNoEnt);
  ASSERT_TRUE(r.results[2].ok());
  EXPECT_EQ(*r.results[2], MakeData(20, 3));
  // Callers with hole semantics can ignore the kNoEnt.
  EXPECT_TRUE(r.FirstErrorIgnoringNoEnt().ok());
}

TEST(AsyncObjectIoTest, MultiPutThenMultiDelete) {
  auto store = std::make_shared<MemoryObjectStore>();
  AsyncObjectIo io(store, AsyncIoConfig::ForTests());

  std::vector<Bytes> bufs;
  std::vector<BatchPut> puts;
  for (int i = 0; i < 16; ++i) {
    bufs.push_back(MakeData(128, static_cast<std::uint8_t>(i)));
    BatchPut p;
    p.key = "k" + std::to_string(i);
    p.data = bufs.back();
    puts.push_back(std::move(p));
  }
  auto pr = io.MultiPut(std::move(puts));
  EXPECT_TRUE(pr.status.ok());
  for (int i = 0; i < 16; ++i) {
    auto got = store->Get("k" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, MakeData(128, static_cast<std::uint8_t>(i)));
  }

  std::vector<std::string> keys;
  for (int i = 0; i < 16; ++i) keys.push_back("k" + std::to_string(i));
  keys.push_back("never-existed");
  auto dr = io.MultiDelete(std::move(keys));
  EXPECT_EQ(dr.status.code(), Errc::kNoEnt);
  EXPECT_TRUE(dr.FirstErrorIgnoringNoEnt().ok());
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(store->Get("k" + std::to_string(i)).code(), Errc::kNoEnt);
  }
}

TEST(AsyncObjectIoTest, PartialBatchFailureIsAggregatedNotFatal) {
  auto base = std::make_shared<MemoryObjectStore>();
  // Every put whose key contains "poison" fails with kIo; the rest succeed.
  auto faulty = std::make_shared<FaultInjectionStore>(
      base, [](std::string_view op, const std::string& key) {
        return op == "put" && key.find("poison") != std::string::npos
                   ? Errc::kIo
                   : Errc::kOk;
      });
  AsyncObjectIo io(faulty, AsyncIoConfig::ForTests());

  std::vector<Bytes> bufs;
  std::vector<BatchPut> puts;
  for (int i = 0; i < 12; ++i) {
    bufs.push_back(MakeData(32, static_cast<std::uint8_t>(i)));
    BatchPut p;
    p.key = (i % 3 == 1 ? "poison" : "good") + std::to_string(i);
    p.data = bufs.back();
    puts.push_back(std::move(p));
  }
  auto r = io.MultiPut(std::move(puts));

  // The batch reports the first error but still attempted every element.
  EXPECT_EQ(r.status.code(), Errc::kIo);
  ASSERT_EQ(r.results.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    if (i % 3 == 1) {
      EXPECT_EQ(r.results[i].code(), Errc::kIo) << i;
      EXPECT_EQ(base->Get("poison" + std::to_string(i)).code(), Errc::kNoEnt);
    } else {
      EXPECT_TRUE(r.results[i].ok()) << i;
      EXPECT_TRUE(base->Get("good" + std::to_string(i)).ok()) << i;
    }
  }
}

TEST(AsyncObjectIoTest, InFlightCapIsEnforced) {
  auto base = std::make_shared<MemoryObjectStore>();
  // Dwell inside each op long enough that violations would be observable.
  auto probe = std::make_shared<ConcurrencyProbeStore>(base, Micros(200));
  obs::MetricsRegistry registry;
  AsyncIoConfig cfg;
  cfg.workers = 8;
  cfg.max_in_flight = 3;
  cfg.metrics = &registry;
  AsyncObjectIo io(probe, cfg);

  std::vector<Bytes> bufs;
  std::vector<BatchPut> puts;
  for (int i = 0; i < 32; ++i) {
    bufs.push_back(MakeData(16, static_cast<std::uint8_t>(i)));
    BatchPut p;
    p.key = "k" + std::to_string(i);
    p.data = bufs.back();
    puts.push_back(std::move(p));
  }
  EXPECT_TRUE(io.MultiPut(std::move(puts)).status.ok());

  std::vector<BatchGet> gets(32);
  for (int i = 0; i < 32; ++i) gets[i].key = "k" + std::to_string(i);
  EXPECT_TRUE(io.MultiGet(std::move(gets)).status.ok());

  EXPECT_LE(probe->peak(), 3u);
  // Overlap actually happened: the registry's high-water gauge saw >= 2
  // concurrently running primitives.
  EXPECT_GE(registry.Snapshot().gauge("asyncio.peak_in_flight"), 2u);
}

TEST(AsyncObjectIoTest, NestedBatchesDoNotDeadlock) {
  auto store = std::make_shared<MemoryObjectStore>();
  // A deliberately starved pool: every RunAll closure issues its own batch,
  // so forward progress depends on caller participation.
  AsyncIoConfig cfg;
  cfg.workers = 1;
  cfg.max_in_flight = 2;
  AsyncObjectIo io(store, cfg);

  std::vector<std::function<Status()>> outer;
  for (int t = 0; t < 6; ++t) {
    outer.push_back([&io, t] {
      std::vector<Bytes> bufs;
      std::vector<BatchPut> puts;
      for (int i = 0; i < 4; ++i) {
        bufs.push_back(MakeData(8, static_cast<std::uint8_t>(t * 16 + i)));
        BatchPut p;
        p.key = "t" + std::to_string(t) + "-" + std::to_string(i);
        p.data = bufs.back();
        puts.push_back(std::move(p));
      }
      return io.MultiPut(std::move(puts)).status;
    });
  }
  EXPECT_TRUE(io.RunAll(std::move(outer)).ok());
  for (int t = 0; t < 6; ++t) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(
          store->Get("t" + std::to_string(t) + "-" + std::to_string(i)).ok());
    }
  }
}

TEST(AsyncObjectIoTest, ConcurrentSubmittersStress) {
  auto store = std::make_shared<MemoryObjectStore>();
  obs::MetricsRegistry registry;
  AsyncIoConfig cfg;
  cfg.workers = 4;
  cfg.max_in_flight = 8;
  cfg.metrics = &registry;
  AsyncObjectIo io(store, cfg);

  constexpr int kThreads = 8;
  constexpr int kRounds = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<Bytes> bufs;
        std::vector<BatchPut> puts;
        for (int i = 0; i < 4; ++i) {
          bufs.push_back(
              MakeData(64, static_cast<std::uint8_t>(t * 31 + round + i)));
          BatchPut p;
          p.key = "s" + std::to_string(t) + "-" + std::to_string(i);
          p.data = bufs.back();
          puts.push_back(std::move(p));
        }
        if (!io.MultiPut(std::move(puts)).status.ok()) ++failures;

        std::vector<BatchGet> gets(4);
        for (int i = 0; i < 4; ++i) {
          gets[i].key = "s" + std::to_string(t) + "-" + std::to_string(i);
        }
        auto r = io.MultiGet(std::move(gets));
        if (!r.status.ok()) ++failures;
        for (const auto& res : r.results) {
          if (!res.ok() || res->size() != 64) ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_GE(snap.counter("asyncio.batches"),
            static_cast<std::uint64_t>(kThreads * kRounds * 2));
  EXPECT_GE(snap.counter("asyncio.ops_submitted"),
            static_cast<std::uint64_t>(kThreads * kRounds * 8));
}

TEST(AsyncObjectIoTest, OverlapSavingsOnLatencyBoundStore) {
  // A store that charges real latency per op: a batch of N independent GETs
  // must finish in well under N serial round trips.
  ClusterConfig cc = ClusterConfig::RadosLike();
  cc.num_nodes = 4;
  auto store = std::make_shared<ClusterObjectStore>(cc);
  obs::MetricsRegistry registry;
  AsyncIoConfig cfg;
  cfg.workers = 8;
  cfg.max_in_flight = 16;
  cfg.metrics = &registry;
  AsyncObjectIo io(store, cfg);

  constexpr int kOps = 16;
  std::vector<Bytes> bufs;
  std::vector<BatchPut> puts;
  for (int i = 0; i < kOps; ++i) {
    bufs.push_back(MakeData(4096, static_cast<std::uint8_t>(i)));
    BatchPut p;
    p.key = "k" + std::to_string(i);
    p.data = bufs.back();
    puts.push_back(std::move(p));
  }
  ASSERT_TRUE(io.MultiPut(std::move(puts)).status.ok());

  // Best-of-3 on both sides: ctest runs tests in parallel on tiny hosts,
  // and a single descheduled batch would otherwise flake the ratio.
  Nanos serial = Nanos::max();
  Nanos batched = Nanos::max();
  for (int rep = 0; rep < 3; ++rep) {
    const TimePoint serial_start = Now();
    for (int i = 0; i < kOps; ++i) {
      ASSERT_TRUE(store->Get("k" + std::to_string(i)).ok());
    }
    serial = std::min(
        serial, std::chrono::duration_cast<Nanos>(Now() - serial_start));

    std::vector<BatchGet> gets(kOps);
    for (int i = 0; i < kOps; ++i) gets[i].key = "k" + std::to_string(i);
    const TimePoint batch_start = Now();
    auto r = io.MultiGet(std::move(gets));
    batched = std::min(
        batched, std::chrono::duration_cast<Nanos>(Now() - batch_start));
    ASSERT_TRUE(r.status.ok());
  }

  EXPECT_LT(batched.count(), serial.count() / 2);  // >=2x speedup
  EXPECT_GT(registry.Snapshot().counter("asyncio.overlap_saved_ns"), 0u);
}

TEST(AsyncObjectIoTest, RunAllAggregatesFirstError) {
  auto store = std::make_shared<MemoryObjectStore>();
  AsyncObjectIo io(store, AsyncIoConfig::ForTests());

  std::atomic<int> ran{0};
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([&ran, i]() -> Status {
      ++ran;
      if (i == 3) return ErrStatus(Errc::kIo, "task 3 boom");
      return Status::Ok();
    });
  }
  Status st = io.RunAll(std::move(tasks));
  EXPECT_EQ(st.code(), Errc::kIo);
  EXPECT_EQ(ran.load(), 8);  // every task still ran
}

// Regression: on a whole-object backend a sub-chunk write is read-modify-
// write of the chunk; concurrent writers hitting disjoint ranges of the
// SAME chunk (exactly what a batched cache flush does when cache entries
// are smaller than the chunk) must not lose each other's updates.
TEST(AsyncObjectIoTest, ConcurrentRmwWritesToOneChunkDoNotLoseUpdates) {
  auto base = std::make_shared<MemoryObjectStore>(kDefaultMaxObjectSize,
                                                  /*partial=*/false);
  // The dwell widens the read→patch→put window so unsynchronized RMWs
  // would actually interleave and lose updates.
  auto store = std::make_shared<ConcurrencyProbeStore>(base, Micros(100));
  ASSERT_FALSE(store->supports_partial_write());
  Prt prt(store, /*chunk_size=*/0, AsyncIoConfig::ForTests());

  const Uuid ino = NewUuid();
  constexpr std::uint64_t kPiece = 4096;
  constexpr int kPieces = 16;
  for (int round = 0; round < 4; ++round) {
    std::vector<std::function<Status()>> tasks;
    for (int p = 0; p < kPieces; ++p) {
      tasks.push_back([&prt, &ino, round, p]() -> Status {
        const Bytes piece(kPiece,
                          static_cast<std::uint8_t>(round * kPieces + p));
        return prt.WriteData(ino, static_cast<std::uint64_t>(p) * kPiece,
                             piece);
      });
    }
    ASSERT_TRUE(prt.async().RunAll(std::move(tasks)).ok());
    auto got = prt.ReadData(ino, 0, kPieces * kPiece, kPieces * kPiece);
    ASSERT_TRUE(got.ok());
    for (int p = 0; p < kPieces; ++p) {
      EXPECT_EQ((*got)[static_cast<std::size_t>(p) * kPiece],
                static_cast<std::uint8_t>(round * kPieces + p))
          << "round " << round << " piece " << p;
    }
  }
}

}  // namespace
}  // namespace arkfs
