// Robustness tests: store fault injection, lease churn, concurrency stress,
// large directories, deep paths, and ArkFS over an S3-style (whole-object)
// backend.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/cluster.h"
#include "objstore/memory_store.h"
#include "objstore/wrappers.h"

namespace arkfs {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  std::unique_ptr<ArkFsCluster> MakeCluster(ObjectStorePtr store) {
    return ArkFsCluster::Create(store, ArkFsClusterOptions::ForTests()).value();
  }
  UserCred root_ = UserCred::Root();
};

// --- fault injection on the store ---

TEST_F(RobustnessTest, StorePutFailuresSurfaceOnFsync) {
  auto base = std::make_shared<MemoryObjectStore>();
  std::atomic<bool> fail_puts{false};
  auto faulty = std::make_shared<FaultInjectionStore>(
      base, [&](std::string_view op, const std::string&) {
        return (fail_puts && op.starts_with("put")) ? Errc::kIo : Errc::kOk;
      });
  auto cluster = MakeCluster(faulty);
  auto fs = cluster->AddClient().value();

  OpenOptions create;
  create.write = true;
  create.create = true;
  auto fd = fs->Open("/f", create, root_);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs->Write(*fd, 0, Bytes(8192, 1)).ok());  // buffered, no error

  fail_puts = true;
  EXPECT_FALSE(fs->Fsync(*fd).ok());  // flush must report the store failure

  // Recovery: once the store heals, the same data flushes cleanly.
  fail_puts = false;
  EXPECT_TRUE(fs->Fsync(*fd).ok());
  ASSERT_TRUE(fs->Close(*fd).ok());
  EXPECT_EQ(fs->ReadWholeFile("/f", root_)->size(), 8192u);
}

TEST_F(RobustnessTest, TransientGetFailuresDoNotCorruptCache) {
  auto base = std::make_shared<MemoryObjectStore>();
  std::atomic<bool> fail_data_reads{false};
  auto faulty = std::make_shared<FaultInjectionStore>(
      base, [&](std::string_view op, const std::string& key) {
        return (fail_data_reads && op.starts_with("get") && key[0] == 'd')
                   ? Errc::kIo
                   : Errc::kOk;
      });
  auto cluster = MakeCluster(faulty);
  auto fs = cluster->AddClient().value();
  ASSERT_TRUE(fs->WriteFileAt("/data", Bytes(10000, 7), root_).ok());
  ASSERT_TRUE(fs->DropCaches().ok());

  fail_data_reads = true;
  OpenOptions read;
  auto fd = fs->Open("/data", read, root_);
  ASSERT_TRUE(fd.ok());
  auto first = fs->Read(*fd, 0, 10000);
  EXPECT_FALSE(first.ok());  // injected failure surfaces

  // After the fault clears, a retry returns correct data — failed loads
  // must not leave zero-filled ghost entries in the cache.
  fail_data_reads = false;
  auto second = fs->Read(*fd, 0, 10000);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, Bytes(10000, 7));
  ASSERT_TRUE(fs->Close(*fd).ok());
}

TEST_F(RobustnessTest, MetatableBuildFailureDoesNotWedgeDirectory) {
  auto base = std::make_shared<MemoryObjectStore>();
  std::atomic<bool> fail_dentry_reads{false};
  auto faulty = std::make_shared<FaultInjectionStore>(
      base, [&](std::string_view op, const std::string& key) {
        return (fail_dentry_reads && op.starts_with("get") && key[0] == 'e')
                   ? Errc::kIo
                   : Errc::kOk;
      });
  auto cluster = MakeCluster(faulty);
  auto c1 = cluster->AddClient().value();
  ASSERT_TRUE(c1->Mkdir("/dir", 0755, root_).ok());
  ASSERT_TRUE(c1->WriteFileAt("/dir/f", AsBytes("x"), root_).ok());
  ASSERT_TRUE(c1->Shutdown().ok());  // checkpoints + releases the lease

  fail_dentry_reads = true;
  auto c2 = cluster->AddClient().value();
  EXPECT_FALSE(c2->ReadDir("/dir", root_).ok());  // build fails cleanly
  fail_dentry_reads = false;
  auto entries = c2->ReadDir("/dir", root_);  // and succeeds on retry
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 1u);
}

// --- lease churn ---

TEST_F(RobustnessTest, OpsSurviveContinuousLeaseExpiry) {
  auto store = std::make_shared<MemoryObjectStore>();
  ArkFsClusterOptions options = ArkFsClusterOptions::ForTests();
  options.lease.lease_period = Millis(30);  // expire constantly
  auto cluster = ArkFsCluster::Create(store, options).value();
  auto c1 = cluster->AddClient().value();
  auto c2 = cluster->AddClient().value();

  ASSERT_TRUE(c1->Mkdir("/churn", 0777, root_).ok());
  // Interleave two clients against one directory across many lease terms.
  for (int i = 0; i < 30; ++i) {
    auto& fs = (i % 2 == 0) ? c1 : c2;
    ASSERT_TRUE(fs->WriteFileAt("/churn/f" + std::to_string(i),
                                AsBytes("v"), root_)
                    .ok())
        << i;
    if (i % 5 == 4) SleepFor(Millis(40));  // force an expiry window
  }
  auto entries = c1->ReadDir("/churn", root_);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 30u);
}

// --- concurrency stress ---

TEST_F(RobustnessTest, ParallelMixedOpsSingleClient) {
  auto cluster = MakeCluster(std::make_shared<MemoryObjectStore>());
  auto fs = cluster->AddClient().value();
  ASSERT_TRUE(fs->Mkdir("/stress", 0777, root_).ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      const std::string mine = "/stress/t" + std::to_string(t);
      if (!fs->Mkdir(mine, 0777, root_).ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < 30; ++i) {
        const std::string f = mine + "/f" + std::to_string(i);
        if (!fs->WriteFileAt(f, Bytes(200 + i, static_cast<std::uint8_t>(i)),
                             root_)
                 .ok()) {
          ++failures;
        }
        if (i % 3 == 0) {
          if (!fs->Stat(f, root_).ok()) ++failures;
        }
        if (i % 7 == 6) {
          if (!fs->Rename(f, f + ".renamed", root_).ok()) ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(fs->SyncAll().ok());
  for (int t = 0; t < 6; ++t) {
    auto entries = fs->ReadDir("/stress/t" + std::to_string(t), root_);
    ASSERT_TRUE(entries.ok());
    EXPECT_EQ(entries->size(), 30u);
  }
}

TEST_F(RobustnessTest, ParallelWritersDistinctRangesSameFile) {
  auto cluster = MakeCluster(std::make_shared<MemoryObjectStore>());
  auto fs = cluster->AddClient().value();
  OpenOptions create;
  create.write = true;
  create.create = true;
  auto fd = fs->Open("/big", create, root_);
  ASSERT_TRUE(fd.ok());

  constexpr int kThreads = 4;
  constexpr std::uint64_t kSlice = 64 * 1024;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Bytes data(kSlice, static_cast<std::uint8_t>(t + 1));
      ASSERT_TRUE(fs->Write(*fd, t * kSlice, data).ok());
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_TRUE(fs->Fsync(*fd).ok());
  ASSERT_TRUE(fs->Close(*fd).ok());

  auto back = fs->ReadWholeFile("/big", root_);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), kThreads * kSlice);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ((*back)[t * kSlice], t + 1) << t;
    EXPECT_EQ((*back)[(t + 1) * kSlice - 1], t + 1) << t;
  }
}

// --- scale edges ---

TEST_F(RobustnessTest, LargeDirectorySurvivesCheckpointAndReload) {
  auto store = std::make_shared<MemoryObjectStore>();
  auto cluster = MakeCluster(store);
  auto c1 = cluster->AddClient().value();
  ASSERT_TRUE(c1->Mkdir("/big", 0755, root_).ok());
  constexpr int kFiles = 1500;
  OpenOptions create;
  create.write = true;
  create.create = true;
  for (int i = 0; i < kFiles; ++i) {
    auto fd = c1->Open("/big/f" + std::to_string(i), create, root_);
    ASSERT_TRUE(fd.ok()) << i;
    ASSERT_TRUE(c1->Close(*fd).ok());
  }
  ASSERT_TRUE(c1->Shutdown().ok());  // full checkpoint to dentry block

  auto c2 = cluster->AddClient().value();
  auto entries = c2->ReadDir("/big", root_);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), static_cast<std::size_t>(kFiles));
  EXPECT_TRUE(c2->Stat("/big/f777", root_).ok());
}

TEST_F(RobustnessTest, DeepDirectoryHierarchy) {
  auto cluster = MakeCluster(std::make_shared<MemoryObjectStore>());
  auto fs = cluster->AddClient().value();
  std::string path;
  for (int depth = 0; depth < 24; ++depth) {
    path += "/d" + std::to_string(depth);
    ASSERT_TRUE(fs->Mkdir(path, 0755, root_).ok()) << depth;
  }
  ASSERT_TRUE(fs->WriteFileAt(path + "/leaf", AsBytes("deep"), root_).ok());
  EXPECT_EQ(ToString(*fs->ReadWholeFile(path + "/leaf", root_)), "deep");
  // Tear it back down bottom-up.
  ASSERT_TRUE(fs->Unlink(path + "/leaf", root_).ok());
  for (int depth = 23; depth >= 0; --depth) {
    ASSERT_TRUE(fs->Rmdir(path, root_).ok()) << depth;
    auto slash = path.find_last_of('/');
    path = path.substr(0, slash);
  }
}

// --- ArkFS over a whole-object (S3-style) backend end to end ---

TEST_F(RobustnessTest, FullStackOnWholeObjectStore) {
  // No partial writes anywhere: journal appends and cache flushes must all
  // go through read-modify-write, and still be correct.
  auto store = std::make_shared<MemoryObjectStore>(kDefaultMaxObjectSize,
                                                   /*partial=*/false);
  auto cluster = MakeCluster(store);
  auto fs = cluster->AddClient().value();

  ASSERT_TRUE(fs->MkdirAll("/s3/nested", 0755, root_).ok());
  Bytes data(100000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131);
  }
  ASSERT_TRUE(fs->WriteFileAt("/s3/nested/blob", data, root_).ok());
  ASSERT_TRUE(fs->Rename("/s3/nested/blob", "/s3/moved", root_).ok());
  ASSERT_TRUE(fs->SyncAll().ok());
  ASSERT_TRUE(fs->DropCaches().ok());
  EXPECT_EQ(*fs->ReadWholeFile("/s3/moved", root_), data);

  // Crash + recover on the whole-object backend too.
  OpenOptions create;
  create.write = true;
  create.create = true;
  auto fd = fs->Open("/s3/crashy", create, root_);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs->Write(*fd, 0, AsBytes("durable")).ok());
  ASSERT_TRUE(fs->Fsync(*fd).ok());
  fs->CrashHard();
  SleepFor(cluster->lease_manager().config().lease_period + Millis(100));
  auto fresh = cluster->AddClient("fresh").value();
  EXPECT_EQ(ToString(*fresh->ReadWholeFile("/s3/crashy", root_)), "durable");
}

TEST_F(RobustnessTest, PcacheOffStillCorrect) {
  auto store = std::make_shared<MemoryObjectStore>();
  ArkFsClusterOptions options = ArkFsClusterOptions::ForTests();
  options.client_template.permission_cache = false;
  auto cluster = ArkFsCluster::Create(store, options).value();
  auto c1 = cluster->AddClient().value();
  auto c2 = cluster->AddClient().value();
  ASSERT_TRUE(c1->MkdirAll("/a/b/c", 0755, root_).ok());
  ASSERT_TRUE(c2->WriteFileAt("/a/b/c/f", AsBytes("no-pcache"), root_).ok());
  EXPECT_EQ(ToString(*c1->ReadWholeFile("/a/b/c/f", root_)), "no-pcache");
  EXPECT_EQ(c1->stats().perm_cache_hits + c2->stats().perm_cache_hits, 0u);
}

TEST_F(RobustnessTest, ReaddirWhileMutating) {
  auto cluster = MakeCluster(std::make_shared<MemoryObjectStore>());
  auto fs = cluster->AddClient().value();
  ASSERT_TRUE(fs->Mkdir("/live", 0777, root_).ok());
  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    int i = 0;
    while (!stop) {
      (void)fs->WriteFileAt("/live/m" + std::to_string(i % 50), AsBytes("x"),
                            root_);
      if (i % 3 == 2) (void)fs->Unlink("/live/m" + std::to_string((i - 2) % 50), root_);
      ++i;
    }
  });
  for (int i = 0; i < 50; ++i) {
    auto entries = fs->ReadDir("/live", root_);
    ASSERT_TRUE(entries.ok());
    // Every returned entry must be stat-able or racily deleted (ENOENT),
    // never a corrupt record.
    for (const auto& d : *entries) {
      auto st = fs->Stat("/live/" + d.name, root_);
      EXPECT_TRUE(st.ok() || st.code() == Errc::kNoEnt);
    }
  }
  stop = true;
  mutator.join();
}

}  // namespace
}  // namespace arkfs
