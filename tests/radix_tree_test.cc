// Tests for the radix tree indexing cached data objects.
#include <gtest/gtest.h>

#include <map>

#include "cache/radix_tree.h"
#include "common/rng.h"

namespace arkfs {
namespace {

TEST(RadixTreeTest, InsertFindErase) {
  RadixTree<int> tree;
  tree.Insert(0, 100);
  tree.Insert(63, 163);
  tree.Insert(64, 164);  // forces height growth
  EXPECT_EQ(tree.size(), 3u);
  ASSERT_NE(tree.Find(0), nullptr);
  EXPECT_EQ(*tree.Find(0), 100);
  EXPECT_EQ(*tree.Find(63), 163);
  EXPECT_EQ(*tree.Find(64), 164);
  EXPECT_EQ(tree.Find(65), nullptr);
  EXPECT_TRUE(tree.Erase(63));
  EXPECT_FALSE(tree.Erase(63));
  EXPECT_EQ(tree.Find(63), nullptr);
  EXPECT_EQ(tree.size(), 2u);
}

TEST(RadixTreeTest, InsertReplaces) {
  RadixTree<int> tree;
  tree.Insert(7, 1);
  tree.Insert(7, 2);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(*tree.Find(7), 2);
}

TEST(RadixTreeTest, ShallowForSmallKeys) {
  // The paper's observation: 2 MiB entries keep the tree shallow. A file
  // with 4096 entries (8 GiB at 2 MiB) needs only 2 six-bit levels.
  RadixTree<int> tree;
  for (std::uint64_t k = 0; k < 4096; ++k) tree.Insert(k, static_cast<int>(k));
  EXPECT_EQ(tree.height(), 2);
  RadixTree<int> big;
  big.Insert(1ull << 40, 1);
  EXPECT_GE(big.height(), 7);
}

TEST(RadixTreeTest, SparseHugeKeys) {
  RadixTree<std::uint64_t> tree;
  std::vector<std::uint64_t> keys{0,       1,          64,        4095,
                                  1 << 20, 1ull << 35, UINT64_MAX};
  for (auto k : keys) tree.Insert(k, k * 2);
  for (auto k : keys) {
    ASSERT_NE(tree.Find(k), nullptr) << k;
    EXPECT_EQ(*tree.Find(k), k * 2);
  }
  EXPECT_EQ(tree.size(), keys.size());
}

TEST(RadixTreeTest, GrowthPreservesExistingEntries) {
  RadixTree<int> tree;
  tree.Insert(5, 50);
  tree.Insert(1ull << 30, 99);  // multiple growth steps
  EXPECT_EQ(*tree.Find(5), 50);
  EXPECT_EQ(*tree.Find(1ull << 30), 99);
}

TEST(RadixTreeTest, ForEachVisitsInKeyOrder) {
  RadixTree<int> tree;
  for (std::uint64_t k : {900ull, 3ull, 77ull, 20000ull, 0ull}) {
    tree.Insert(k, static_cast<int>(k));
  }
  std::vector<std::uint64_t> visited;
  tree.ForEach([&](std::uint64_t k, int& v) {
    visited.push_back(k);
    EXPECT_EQ(static_cast<int>(k), v);
  });
  EXPECT_EQ(visited, (std::vector<std::uint64_t>{0, 3, 77, 900, 20000}));
}

TEST(RadixTreeTest, ClearResets) {
  RadixTree<int> tree;
  tree.Insert(123, 1);
  tree.Clear();
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Find(123), nullptr);
  tree.Insert(5, 9);
  EXPECT_EQ(*tree.Find(5), 9);
}

// Property test: the radix tree behaves exactly like std::map under a
// random workload of inserts/erases/lookups.
class RadixTreePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RadixTreePropertyTest, MatchesReferenceMap) {
  Rng rng(GetParam());
  RadixTree<std::uint64_t> tree;
  std::map<std::uint64_t, std::uint64_t> reference;
  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t key = rng.Below(512) * (1 + rng.Below(1 << 20));
    switch (rng.Below(3)) {
      case 0: {
        const std::uint64_t value = rng.Next();
        tree.Insert(key, value);
        reference[key] = value;
        break;
      }
      case 1: {
        EXPECT_EQ(tree.Erase(key), reference.erase(key) > 0);
        break;
      }
      default: {
        auto it = reference.find(key);
        auto* found = tree.Find(key);
        if (it == reference.end()) {
          EXPECT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          EXPECT_EQ(*found, it->second);
        }
      }
    }
  }
  EXPECT_EQ(tree.size(), reference.size());
  std::vector<std::uint64_t> tree_keys;
  tree.ForEach([&](std::uint64_t k, std::uint64_t&) { tree_keys.push_back(k); });
  std::vector<std::uint64_t> map_keys;
  for (auto& [k, _] : reference) map_keys.push_back(k);
  EXPECT_EQ(tree_keys, map_keys);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RadixTreePropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1337));

}  // namespace
}  // namespace arkfs
