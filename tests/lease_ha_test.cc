// Tests for the replicated lease-manager group: epoch-fenced failover,
// standby redirects, quiet periods, and the late/stale-lease races the
// fencing tokens exist to win.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lease/lease_client.h"
#include "lease/lease_manager.h"
#include "objstore/memory_store.h"

namespace arkfs::lease {
namespace {

class LeaseHaTest : public ::testing::Test {
 protected:
  static constexpr int kReplicas = 3;

  void SetUp() override {
    fabric_ = std::make_shared<rpc::Fabric>(sim::NetworkProfile::Instant());
    store_ = std::make_shared<MemoryObjectStore>();
    for (int i = 0; i < kReplicas; ++i) {
      addresses_.push_back("lease-manager-" + std::to_string(i));
    }
    for (int i = 0; i < kReplicas; ++i) {
      LeaseManagerConfig config = LeaseManagerConfig::ForTests();
      config.self_address = addresses_[static_cast<std::size_t>(i)];
      config.group = addresses_;
      config.start_active = (i == 0);
      managers_.push_back(
          std::make_unique<LeaseManager>(fabric_, store_, config));
    }
    for (auto& m : managers_) ASSERT_TRUE(m->Start().ok());
  }

  void TearDown() override {
    for (auto& m : managers_) m->Stop();
  }

  LeaseClient MakeClient(const std::string& name) {
    LeaseClient::Options options;
    options.wait_budget = Seconds(2);
    options.initial_backoff = Millis(2);
    options.managers = addresses_;
    options.rpc_retry.max_attempts = 4;
    options.rpc_retry.initial_backoff = Millis(1);
    options.rpc_retry.max_backoff = Millis(5);
    options.rpc_retry.deadline = Millis(250);
    return LeaseClient(fabric_, name, options);
  }

  int ActiveReplica() const {
    for (int i = 0; i < kReplicas; ++i) {
      if (managers_[static_cast<std::size_t>(i)]->is_active()) return i;
    }
    return -1;
  }

  int ClaimingActiveCount() const {
    int n = 0;
    for (const auto& m : managers_) {
      if (m->is_active()) ++n;
    }
    return n;
  }

  bool WaitFor(const std::function<bool()>& pred,
               Nanos timeout = Seconds(3)) const {
    const TimePoint deadline = Now() + timeout;
    while (Now() < deadline) {
      if (pred()) return true;
      SleepFor(Millis(5));
    }
    return pred();
  }

  LeaseManagerConfig config_ = LeaseManagerConfig::ForTests();
  rpc::FabricPtr fabric_;
  ObjectStorePtr store_;
  std::vector<std::string> addresses_;
  std::vector<std::unique_ptr<LeaseManager>> managers_;
  Uuid dir_ = DeterministicUuid(1, 1);
};

TEST_F(LeaseHaTest, BootstrapElectsDesignatedReplica) {
  EXPECT_EQ(ActiveReplica(), 0);
  EXPECT_EQ(ClaimingActiveCount(), 1);
  EXPECT_EQ(managers_[0]->epoch(), 1u);

  auto raw = store_->Get(kEpochRecordKey);
  ASSERT_TRUE(raw.ok());
  auto rec = EpochRecord::Decode(*raw);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->epoch, 1u);
  EXPECT_EQ(rec->active, addresses_[0]);
}

TEST_F(LeaseHaTest, StandbyAnswersWithRedirectHint) {
  // In-process API: kNotActive with the active replica's address as hint.
  AcquireRequest req{dir_, "c1"};
  AcquireResponse resp = managers_[1]->Acquire(req);
  EXPECT_EQ(resp.outcome, AcquireOutcome::kNotActive);
  EXPECT_EQ(resp.leader, addresses_[0]);

  // RPC path: a status-level kAgain + hint that the client sweep consumes.
  auto raw = fabric_->Call(addresses_[2], kMethodAcquire, req.Encode());
  ASSERT_FALSE(raw.ok());
  EXPECT_EQ(raw.status().code(), Errc::kAgain);
  EXPECT_EQ(raw.status().detail(), addresses_[0]);
}

TEST_F(LeaseHaTest, ClientFollowsStandbyHintTransparently) {
  // Point the client's list at a standby first: the sweep must follow the
  // hint to the active replica without surfacing anything to the caller.
  LeaseClient::Options options;
  options.wait_budget = Seconds(2);
  options.initial_backoff = Millis(2);
  options.managers = {addresses_[1], addresses_[2], addresses_[0]};
  LeaseClient c1(fabric_, "c1", options);
  auto grant = c1.Acquire(dir_);
  ASSERT_TRUE(grant.ok());
  EXPECT_EQ(grant->token.epoch, 1u);
  ASSERT_TRUE(grant->token.valid());
}

TEST_F(LeaseHaTest, FailoverElectsStandbyAndBumpsEpoch) {
  auto c1 = MakeClient("c1");
  auto before = c1.Acquire(dir_);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->token.epoch, 1u);

  managers_[0]->Stop();
  ASSERT_TRUE(WaitFor([&] { return ActiveReplica() > 0; }));
  const int active = ActiveReplica();
  EXPECT_EQ(managers_[static_cast<std::size_t>(active)]->epoch(), 2u);

  // The persisted record names the winner.
  auto rec = EpochRecord::Decode(*store_->Get(kEpochRecordKey));
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->epoch, 2u);
  EXPECT_EQ(rec->active, addresses_[static_cast<std::size_t>(active)]);

  // Acquisition works again once the quiet period drains (the client's wait
  // budget rides it out), and the new grant is strictly fence-ordered after
  // every old-epoch grant.
  auto after = c1.Acquire(dir_);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->token.epoch, 2u);
  EXPECT_TRUE(before->token < after->token);
  // The successor lost all lease state, so no previous leader is known.
  EXPECT_TRUE(after->prev_leader.empty());
}

TEST_F(LeaseHaTest, TakeoverServesQuietPeriodFirst) {
  auto c1 = MakeClient("c1");
  ASSERT_TRUE(c1.Acquire(dir_).ok());
  managers_[0]->Stop();
  ASSERT_TRUE(WaitFor([&] { return ActiveReplica() > 0; }));

  // Within the quiet period (one lease term) every acquire is told to wait:
  // the dead active's grants may still be live and the successor has no
  // record of them.
  LeaseClient::Options tight;
  tight.wait_budget = Millis(20);
  tight.initial_backoff = Millis(5);
  tight.managers = addresses_;
  LeaseClient c2(fabric_, "c2", tight);
  EXPECT_EQ(c2.Acquire(dir_).code(), Errc::kBusy);
}

TEST_F(LeaseHaTest, PartitionedActiveAbdicatesViaEpochRecord) {
  // Cut the active replica off from both standbys. The standbys elect a new
  // active through the store; the old active — which never receives the
  // announce ping — must notice its deposition from the epoch record audit.
  fabric_->BlockPair(addresses_[0], addresses_[1]);
  fabric_->BlockPair(addresses_[0], addresses_[2]);

  ASSERT_TRUE(WaitFor([&] { return ActiveReplica() > 0; }));
  ASSERT_TRUE(WaitFor([&] { return !managers_[0]->is_active(); }));
  EXPECT_EQ(ClaimingActiveCount(), 1);

  fabric_->HealPartitions();
  // Healing must not resurrect the deposed replica.
  SleepFor(Millis(50));
  EXPECT_FALSE(managers_[0]->is_active());
  EXPECT_EQ(ClaimingActiveCount(), 1);
  EXPECT_GE(managers_[0]->epoch(), 2u);
}

TEST_F(LeaseHaTest, SameEpochRecordNamingPeerForcesAbdication) {
  // Two standbys racing the non-atomic Get/Put/Get takeover can both confirm
  // the same new epoch (the loser's Put lands after the winner's confirm
  // read). Ownership is decided by the record's named active, not by epoch
  // comparison — simulate the losing side by rewriting the record to name a
  // peer at replica 0's OWN epoch.
  ASSERT_TRUE(managers_[0]->is_active());
  const EpochRecord rival{managers_[0]->epoch(), addresses_[1]};
  ASSERT_TRUE(store_->Put(kEpochRecordKey, rival.Encode()).ok());

  // The active audits the record every heartbeat tick and must abdicate on
  // the name mismatch even though the epoch never moved.
  ASSERT_TRUE(WaitFor([&] { return !managers_[0]->is_active(); }));
}

TEST(LeaseAmnesiacRestartTest, CrashRestartedActiveResumesUnderNewEpoch) {
  // A crashed active comes back as a FRESH process over the same store while
  // the epoch record still names it. It must not resume at the recorded
  // epoch with a reset grant counter — that would re-mint the tokens its
  // previous life granted — but bump the epoch and serve a quiet period,
  // exactly like an in-place Restart(). Single-replica group: no heartbeat
  // thread, so the test is deterministic.
  auto fabric = std::make_shared<rpc::Fabric>(sim::NetworkProfile::Instant());
  auto store = std::make_shared<MemoryObjectStore>();
  LeaseManagerConfig config = LeaseManagerConfig::ForTests();
  config.self_address = "lease-manager-0";
  config.group = {"lease-manager-0"};

  auto manager = std::make_unique<LeaseManager>(fabric, store, config);
  ASSERT_TRUE(manager->Start().ok());
  ASSERT_TRUE(manager->is_active());
  EXPECT_EQ(manager->epoch(), 1u);

  LeaseClient::Options options;
  options.wait_budget = Seconds(2);
  options.initial_backoff = Millis(2);
  options.managers = {config.self_address};
  LeaseClient c1(fabric, "c1", options);
  const Uuid dir = DeterministicUuid(2, 2);
  auto old_grant = c1.Acquire(dir);
  ASSERT_TRUE(old_grant.ok());
  EXPECT_EQ(old_grant->token.epoch, 1u);

  // Hard crash: destroy the process's state, start a fresh manager.
  manager->Stop();
  manager = std::make_unique<LeaseManager>(fabric, store, config);
  ASSERT_TRUE(manager->Start().ok());
  EXPECT_TRUE(manager->is_active());
  EXPECT_EQ(manager->epoch(), 2u);

  // The bumped epoch is persisted, fencing the previous life durably.
  auto rec = EpochRecord::Decode(*store->Get(kEpochRecordKey));
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->epoch, 2u);

  // Quiet period first: c1's pre-crash lease may still be live.
  LeaseClient::Options tight;
  tight.wait_budget = Millis(20);
  tight.initial_backoff = Millis(5);
  tight.managers = {config.self_address};
  LeaseClient c2(fabric, "c2", tight);
  EXPECT_EQ(c2.Acquire(dir).code(), Errc::kBusy);

  // Once the quiet period drains, the new tenure's grants strictly dominate
  // every pre-crash token — never equal one.
  auto new_grant = c1.Acquire(dir);
  ASSERT_TRUE(new_grant.ok());
  EXPECT_EQ(new_grant->token.epoch, 2u);
  EXPECT_TRUE(old_grant->token < new_grant->token);
  manager->Stop();
}

TEST(LeaseDeposedRestartTest, RestartWhileDeposedDoesNotClobberSuccessor) {
  // A deposed-but-unaware active calling Restart() must notice the successor
  // in the epoch record and rejoin as a standby instead of clobbering the
  // record and seizing activeness outside the takeover protocol.
  // Single-replica group: no heartbeat/audit thread, so the manager still
  // believes it is active when Restart() runs.
  auto fabric = std::make_shared<rpc::Fabric>(sim::NetworkProfile::Instant());
  auto store = std::make_shared<MemoryObjectStore>();
  LeaseManagerConfig config = LeaseManagerConfig::ForTests();
  config.self_address = "lease-manager-0";
  config.group = {"lease-manager-0"};

  LeaseManager manager(fabric, store, config);
  ASSERT_TRUE(manager.Start().ok());
  ASSERT_TRUE(manager.is_active());

  // Behind its back, a successor moved the record on.
  const EpochRecord successor{5, "lease-manager-1"};
  ASSERT_TRUE(store->Put(kEpochRecordKey, successor.Encode()).ok());

  manager.Restart();
  EXPECT_FALSE(manager.is_active());
  EXPECT_EQ(manager.epoch(), 5u);

  auto rec = EpochRecord::Decode(*store->Get(kEpochRecordKey));
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->epoch, 5u);
  EXPECT_EQ(rec->active, "lease-manager-1");
  manager.Stop();
}

TEST_F(LeaseHaTest, ReleaseFromDeposedLeaderIgnored) {
  auto c1 = MakeClient("c1");
  auto c2 = MakeClient("c2");
  auto old_grant = c1.Acquire(dir_);
  ASSERT_TRUE(old_grant.ok());

  managers_[0]->Stop();
  ASSERT_TRUE(WaitFor([&] { return ActiveReplica() > 0; }));

  // Successor takes the directory under the new epoch.
  auto new_grant = c2.Acquire(dir_);
  ASSERT_TRUE(new_grant.ok());
  EXPECT_EQ(new_grant->token.epoch, 2u);

  // The deposed leader's release arrives late. Its token no longer matches
  // the live lease, so it must not evict the successor.
  ASSERT_TRUE(c1.Release(dir_, old_grant->token).ok());
  auto leader = c2.LookupLeader(dir_);
  ASSERT_TRUE(leader.ok());
  ASSERT_TRUE(leader->has_value());
  EXPECT_EQ(**leader, "c2");
}

TEST_F(LeaseHaTest, LateReleaseAfterReacquireBySameClientIgnored) {
  auto c1 = MakeClient("c1");
  auto first = c1.Acquire(dir_);
  ASSERT_TRUE(first.ok());
  SleepFor(config_.lease_period + Millis(50));

  // Same client, new tenure: a fresh fencing token.
  auto second = c1.Acquire(dir_);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(first->token < second->token);

  // A delayed release from the first tenure must not kill the second.
  ASSERT_TRUE(c1.Release(dir_, first->token).ok());
  auto leader = c1.LookupLeader(dir_);
  ASSERT_TRUE(leader.ok());
  ASSERT_TRUE(leader->has_value());
  EXPECT_EQ(**leader, "c1");

  // The live token does release it.
  ASSERT_TRUE(c1.Release(dir_, second->token).ok());
  leader = c1.LookupLeader(dir_);
  ASSERT_TRUE(leader.ok());
  EXPECT_FALSE(leader->has_value());
}

TEST_F(LeaseHaTest, DoubleAcquireAcrossExpiryLeavesOneLiveLease) {
  auto c1 = MakeClient("c1");
  auto c2 = MakeClient("c2");
  auto g1 = c1.Acquire(dir_);
  ASSERT_TRUE(g1.ok());
  SleepFor(config_.lease_period + Millis(50));

  auto g2 = c2.Acquire(dir_);
  ASSERT_TRUE(g2.ok());
  EXPECT_TRUE(g1->token < g2->token);

  // The original holder's extension attempt is a redirect, not a grant:
  // exactly one live lease exists.
  auto denied = c1.Acquire(dir_);
  ASSERT_FALSE(denied.ok());
  ASSERT_TRUE(IsRedirect(denied.status()));
  EXPECT_EQ(denied.status().detail(), "c2");
  EXPECT_EQ(managers_[0]->ActiveLeaseCount(), 1u);
}

TEST_F(LeaseHaTest, RevivedReplicaRejoinsAsStandby) {
  managers_[0]->Stop();
  ASSERT_TRUE(WaitFor([&] { return ActiveReplica() > 0; }));
  const int active = ActiveReplica();

  ASSERT_TRUE(managers_[0]->Start().ok());
  // The epoch moved on while replica 0 was down: it must come back standby.
  EXPECT_FALSE(managers_[0]->is_active());
  EXPECT_GE(managers_[0]->epoch(), 2u);
  EXPECT_EQ(ActiveReplica(), active);
  EXPECT_EQ(ClaimingActiveCount(), 1);
}

// Satellite regression: a transient manager blip (dropped packets, brief
// partition) must be absorbed by the transport retry policy instead of
// surfacing kTimedOut from one flaky RPC. Uses an unreplicated manager so no
// failover machinery can mask the retry path under test.
TEST(LeaseFlakyFabricTest, AcquireRidesOutManagerBlip) {
  auto fabric = std::make_shared<rpc::Fabric>(sim::NetworkProfile::Instant());
  LeaseManager manager(fabric, LeaseManagerConfig::ForTests());
  ASSERT_TRUE(manager.Start().ok());

  LeaseClient::Options options;
  options.wait_budget = Millis(500);
  options.initial_backoff = Millis(1);
  options.rpc_retry.max_attempts = 30;
  options.rpc_retry.initial_backoff = Millis(1);
  options.rpc_retry.max_backoff = Millis(5);
  options.rpc_retry.deadline = Millis(500);
  LeaseClient c1(fabric, "c1", options);

  fabric->SetUnreachable(kManagerAddress, true);
  std::thread healer([&] {
    SleepFor(Millis(25));
    fabric->SetUnreachable(kManagerAddress, false);
  });
  auto grant = c1.Acquire(DeterministicUuid(5, 5));
  healer.join();
  ASSERT_TRUE(grant.ok()) << grant.status().ToString();
  EXPECT_TRUE(grant->token.valid());
  manager.Stop();
}

}  // namespace
}  // namespace arkfs::lease
