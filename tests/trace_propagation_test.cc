// End-to-end trace propagation: one Vfs request carries ONE trace id from
// the entry-point root span through the lease RPC, the journal append /
// fence, and down to the object-store PUT — the acceptance path of the
// unified observability plane.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/wire.h"
#include "obs/metrics.h"
#include "objstore/memory_store.h"

namespace arkfs {
namespace {

class TracePropagationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_shared<MemoryObjectStore>();
    ArkFsClusterOptions opts = ArkFsClusterOptions::ForTests();
    opts.client_template.metrics = &registry_;
    opts.lease.metrics = &registry_;
    cluster_ = ArkFsCluster::Create(store_, opts).value();
    client_ = cluster_->AddClient("tracer").value();
  }

  // All span names recorded under `trace_id`, in completion order.
  std::vector<std::string> NamesIn(const std::vector<obs::SpanRecord>& spans,
                                   std::uint64_t trace_id) {
    std::vector<std::string> names;
    for (const auto& s : spans) {
      if (s.trace_id == trace_id) names.push_back(s.name);
    }
    return names;
  }

  obs::MetricsRegistry registry_;
  ObjectStorePtr store_;
  std::unique_ptr<ArkFsCluster> cluster_;
  std::shared_ptr<Client> client_;
  UserCred root_ = UserCred::Root();
};

TEST_F(TracePropagationTest, OneCreateIsOneTraceAcrossAllLayers) {
  OpenOptions create;
  create.write = true;
  create.create = true;
  auto fd = client_->Open("/traced.txt", create, root_);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(client_->Close(*fd).ok());

  const auto report = client_->Introspect();
  ASSERT_FALSE(report.spans.empty());

  // The create's root span: the first "vfs.open" recorded.
  auto root_it = std::find_if(
      report.spans.begin(), report.spans.end(),
      [](const obs::SpanRecord& s) { return s.name == "vfs.open"; });
  ASSERT_NE(root_it, report.spans.end());
  const std::uint64_t trace_id = root_it->trace_id;
  ASSERT_NE(trace_id, 0u);

  const auto names = NamesIn(report.spans, trace_id);
  // Every layer the first create in a fresh directory must cross, all
  // under the SAME trace id: client dispatch, the lease-acquire RPC (both
  // the client stub and the manager handler — the in-process fabric runs
  // it on the caller thread), the journal fence of the new leadership, the
  // dentry-add journal append, and the fence's object-store PUT.
  for (const char* required :
       {"client.run_dir_op", "lease.acquire", "lease.manager.acquire",
        "journal.fence", "journal.append", "objstore.put"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << "missing span \"" << required << "\" in trace; got "
        << ::testing::PrintToString(names);
  }

  // The root span is the trace's only parentless span.
  int roots = 0;
  for (const auto& s : report.spans) {
    if (s.trace_id == trace_id && s.parent_span == 0) ++roots;
  }
  EXPECT_EQ(roots, 1);
}

TEST_F(TracePropagationTest, SeparateRequestsGetSeparateTraceIds) {
  ASSERT_TRUE(client_->Mkdir("/a", 0755, root_).ok());
  ASSERT_TRUE(client_->Mkdir("/b", 0755, root_).ok());
  const auto spans = client_->Introspect().spans;
  std::set<std::uint64_t> mkdir_traces;
  for (const auto& s : spans) {
    if (s.name == "vfs.mkdir") mkdir_traces.insert(s.trace_id);
  }
  EXPECT_EQ(mkdir_traces.size(), 2u);
}

TEST_F(TracePropagationTest, ForwardedOpKeepsTheRequesterTraceId) {
  // Client A becomes leader of a directory; client B's create in it is
  // forwarded over the dir-op RPC. The wire frame carries B's trace
  // context, so A's serving spans land under B's trace id (in A's ring).
  ASSERT_TRUE(client_->Mkdir("/shared", 0755, root_).ok());
  ASSERT_TRUE(
      client_->WriteFileAt("/shared/warm", AsBytes("x"), root_).ok());

  auto peer = cluster_->AddClient("peer").value();
  ASSERT_TRUE(peer->WriteFileAt("/shared/from_peer", AsBytes("y"), root_).ok());

  // Find the peer's trace that carried the forwarded create.
  std::uint64_t forwarded_trace = 0;
  for (const auto& s : peer->tracer().Spans()) {
    if (s.name == "client.run_dir_op") forwarded_trace = s.trace_id;
  }
  ASSERT_NE(forwarded_trace, 0u);

  // The serving leader recorded its handler span under that same id.
  bool served_under_same_trace = false;
  for (const auto& s : client_->tracer().Spans()) {
    if (s.name == "client.serve_dir_op" && s.trace_id == forwarded_trace) {
      served_under_same_trace = true;
    }
  }
  EXPECT_TRUE(served_under_same_trace);
  EXPECT_GT(client_->stats().served_remote_ops, 0u);
}

TEST_F(TracePropagationTest, IntrospectExportsTheMetricsPlane) {
  ASSERT_TRUE(client_->Mkdir("/m", 0755, root_).ok());
  const auto report = client_->Introspect();
  EXPECT_NE(report.metrics_text.find("client.lease_acquires"),
            std::string::npos);
  EXPECT_NE(report.metrics_text.find("journal.transactions_committed"),
            std::string::npos);
  EXPECT_NE(report.metrics_text.find("lease.grants"), std::string::npos);
  EXPECT_GT(registry_.Snapshot().counter("client.lease_acquires"), 0u);
}

// The tenant id rides the dir-op wire frame as a v3 trailing extension:
// new<->new peers round-trip it, a pre-bump frame decodes as tenant 0, and
// a pre-bump decoder (which tolerates trailing bytes) keeps working.
TEST(DirOpWireTenantTest, TenantRoundTripsAndDefaultsOnLegacyFrames) {
  wire::DirOpRequest req;
  req.op = wire::DirOp::kCreate;
  req.dir_ino = DeterministicUuid(5, 5);
  req.name = "f";
  req.client = "c1";
  req.trace_id = 111;
  req.parent_span = 222;
  req.tenant = 7;
  const Bytes encoded = req.Encode();
  auto copy = wire::DirOpRequest::Decode(encoded);
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy->tenant, 7u);
  EXPECT_EQ(copy->trace_id, 111u);

  // Pre-bump sender: the frame stops before the 4-byte tenant block.
  Bytes legacy(encoded.begin(), encoded.end() - 4);
  auto old = wire::DirOpRequest::Decode(legacy);
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(old->op, req.op);
  EXPECT_EQ(old->name, req.name);
  EXPECT_EQ(old->trace_id, 111u);
  EXPECT_EQ(old->parent_span, 222u);
  EXPECT_EQ(old->tenant, 0u);

  // Frames from an even NEWER sender (unknown future extension) still parse
  // — the request decoder deliberately tolerates trailing bytes.
  Bytes padded = encoded;
  padded.push_back(0x5a);
  EXPECT_TRUE(wire::DirOpRequest::Decode(padded).ok());
}

// End-to-end: each client's tenant id crosses the dir-op RPC and is what
// the serving leader's admission controller sees — per-tenant admitted
// counters appear for BOTH the leader's own tenant and the forwarding
// peer's.
TEST(TenantPropagationTest, TenantReachesTheServingLeaderAdmission) {
  obs::MetricsRegistry registry;
  auto store = std::make_shared<MemoryObjectStore>();
  ArkFsClusterOptions opts = ArkFsClusterOptions::ForTests();
  opts.client_template.metrics = &registry;
  opts.admission.enabled = true;  // unlimited default rate: admit and count
  auto cluster = ArkFsCluster::Create(store, opts).value();
  const UserCred root = UserCred::Root();

  auto leader = cluster->AddClient("leader", /*tenant=*/3).value();
  ASSERT_TRUE(leader->Mkdir("/t", 0755, root).ok());
  ASSERT_TRUE(leader->WriteFileAt("/t/file", AsBytes("x"), root).ok());

  auto peer = cluster->AddClient("peer", /*tenant=*/9).value();
  ASSERT_TRUE(peer->WriteFileAt("/t/peer", AsBytes("y"), root).ok());

  const auto snap = registry.Snapshot();
  EXPECT_GT(snap.counter("tenant.3.admitted"), 0u);
  EXPECT_GT(snap.counter("tenant.9.admitted"), 0u);
  EXPECT_EQ(snap.counter("tenant.3.shed"), 0u);
  EXPECT_EQ(snap.counter("tenant.9.shed"), 0u);
}

}  // namespace
}  // namespace arkfs
