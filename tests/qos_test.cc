// Multi-tenant QoS: token-bucket admission, weighted fair queueing and
// namespace quotas — plus the retry-after hint protocol gluing them to the
// retry engines.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/retry_hint.h"
#include "objstore/cluster_store.h"
#include "objstore/retry.h"
#include "obs/trace.h"
#include "qos/admission.h"
#include "qos/fair_queue.h"
#include "qos/quota.h"
#include "qos/tenant.h"

namespace arkfs::qos {
namespace {

// --- retry-after hint protocol -----------------------------------------

TEST(RetryHintTest, RoundTrips) {
  const std::string detail = FormatRetryAfterHint(Millis(7), "too fast");
  Nanos hint{};
  ASSERT_TRUE(ParseRetryAfterHint(detail, &hint));
  EXPECT_EQ(hint, Millis(7));
  EXPECT_NE(detail.find("too fast"), std::string::npos);
}

TEST(RetryHintTest, AbsentOrMalformedParsesFalse) {
  Nanos hint{};
  EXPECT_FALSE(ParseRetryAfterHint("", &hint));
  EXPECT_FALSE(ParseRetryAfterHint("tenant 3 over rate", &hint));
  EXPECT_FALSE(ParseRetryAfterHint("retry-after-ns=", &hint));
  EXPECT_FALSE(ParseRetryAfterHint("retry-after-ns=bogus", &hint));
  // Absurd values are rejected rather than slept on.
  EXPECT_FALSE(
      ParseRetryAfterHint("retry-after-ns=99999999999999999999", &hint));
}

// Satellite requirement: a server-supplied hint BOUNDS the first retry
// sleep. The policy's own jitter floor is 50 ms; the failing op hints 1 ms,
// so a hint-honoring RetryCall finishes far under the jitter floor.
TEST(RetryHintTest, HintBoundsTheFirstRetrySleep) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff = Millis(50);  // jitter draw is >= this
  policy.max_backoff = Millis(200);
  int calls = 0;
  const TimePoint start = Now();
  Status st = RetryCall(policy, /*salt=*/1, nullptr, TimePoint::max(), [&] {
    ++calls;
    if (calls == 1) {
      return ErrStatus(Errc::kAgain, FormatRetryAfterHint(Millis(1), "shed"));
    }
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 2);
  EXPECT_LT(Now() - start, Millis(40)) << "hint did not bound the sleep";
}

TEST(RetryHintTest, HintIsCappedByMaxBackoff) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff = Millis(1);
  policy.max_backoff = Millis(5);
  int calls = 0;
  const TimePoint start = Now();
  Status st = RetryCall(policy, /*salt=*/2, nullptr, TimePoint::max(), [&] {
    ++calls;
    if (calls == 1) {
      // A bogus ten-second hint must not stall the caller.
      return ErrStatus(Errc::kAgain,
                       FormatRetryAfterHint(Seconds(10), "bogus"));
    }
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_LT(Now() - start, Millis(100));
}

// --- token-bucket admission --------------------------------------------

TEST(AdmissionTest, DisabledAdmitsEverythingFree) {
  AdmissionController admission(AdmissionConfig{}, nullptr);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(admission.Admit(3).ok());
}

TEST(AdmissionTest, BucketEmptiesAndRejectsWithHint) {
  TenantMetrics metrics;
  AdmissionConfig config;
  config.enabled = true;
  config.tenants[7] = TenantRate{10.0, 2.0};  // burst 2, refill 10/s
  AdmissionController admission(config, &metrics);

  EXPECT_TRUE(admission.Admit(7).ok());
  EXPECT_TRUE(admission.Admit(7).ok());
  Status rejected = admission.Admit(7);
  ASSERT_EQ(rejected.code(), Errc::kAgain);
  Nanos hint{};
  ASSERT_TRUE(ParseRetryAfterHint(rejected.detail(), &hint));
  EXPECT_GT(hint.count(), 0);
  EXPECT_LE(hint, Millis(150));  // 1 token at 10/s accrues in <= 100 ms
  EXPECT_EQ(metrics.For(7).admitted.value(), 2u);
  EXPECT_EQ(metrics.For(7).shed.value(), 1u);

  // Waiting out the hint refills enough for one more op.
  SleepFor(hint + Millis(5));
  EXPECT_TRUE(admission.Admit(7).ok());
}

TEST(AdmissionTest, UnlimitedDefaultNeverRejects) {
  AdmissionConfig config;
  config.enabled = true;  // default_rate rate 0 = unlimited
  AdmissionController admission(config, nullptr);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(admission.Admit(1).ok());
}

TEST(AdmissionTest, TenantsAreIsolated) {
  AdmissionConfig config;
  config.enabled = true;
  config.tenants[1] = TenantRate{1.0, 1.0};
  AdmissionController admission(config, nullptr);
  EXPECT_TRUE(admission.Admit(1).ok());
  EXPECT_EQ(admission.Admit(1).code(), Errc::kAgain);
  // Tenant 2 rides the (unlimited) default bucket, unaffected.
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(admission.Admit(2).ok());
}

// --- weighted fair queueing --------------------------------------------

TEST(FairQueueTest, DisabledGrantsInstantly) {
  WeightedFairQueue queue(FairQueueConfig{}, nullptr);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(queue.Acquire(1).ok());
  EXPECT_EQ(queue.QueuedDepth(), 0u);
}

TEST(FairQueueTest, FreeSlotGrantsWithoutQueueing) {
  FairQueueConfig config;
  config.enabled = true;
  config.service_slots = 2;
  WeightedFairQueue queue(config, nullptr);
  ASSERT_TRUE(queue.Acquire(1).ok());
  ASSERT_TRUE(queue.Acquire(2).ok());
  EXPECT_EQ(queue.QueuedDepth(), 0u);
  queue.Release();
  queue.Release();
}

TEST(FairQueueTest, WaiterIsGrantedWhenSlotFrees) {
  FairQueueConfig config;
  config.enabled = true;
  config.service_slots = 1;
  WeightedFairQueue queue(config, nullptr);
  ASSERT_TRUE(queue.Acquire(1).ok());

  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    Status st = queue.Acquire(2);
    ASSERT_TRUE(st.ok());
    granted = true;
    queue.Release();
  });
  while (queue.QueuedDepth() == 0) std::this_thread::yield();
  EXPECT_FALSE(granted.load());
  queue.Release();
  waiter.join();
  EXPECT_TRUE(granted.load());
}

TEST(FairQueueTest, OverflowShedsOldestWaiterOfHeaviestTenant) {
  TenantMetrics metrics;
  FairQueueConfig config;
  config.enabled = true;
  config.service_slots = 1;
  config.max_depth = 1;
  config.shed_retry_after = Millis(3);
  WeightedFairQueue queue(config, &metrics);
  ASSERT_TRUE(queue.Acquire(1).ok());  // occupy the only slot

  // First waiter of tenant 2 parks...
  Status first_status;
  std::thread first([&] { first_status = queue.Acquire(2); });
  while (queue.QueuedDepth() == 0) std::this_thread::yield();

  // ...the second overflows the depth bound: tenant 2 is the heaviest
  // (only) tenant, so its OLDEST waiter (the first) is shed to make room.
  Status second_status;
  std::thread second([&] {
    second_status = queue.Acquire(2);
    if (second_status.ok()) queue.Release();
  });
  first.join();
  ASSERT_EQ(first_status.code(), Errc::kAgain);
  Nanos hint{};
  ASSERT_TRUE(ParseRetryAfterHint(first_status.detail(), &hint));
  EXPECT_EQ(hint, Millis(3));
  EXPECT_EQ(metrics.For(2).shed.value(), 1u);  // counted, never silent

  queue.Release();
  second.join();
  EXPECT_TRUE(second_status.ok());
}

TEST(FairQueueTest, ZeroDepthShedsTheNewcomer) {
  FairQueueConfig config;
  config.enabled = true;
  config.service_slots = 1;
  config.max_depth = 0;  // no parking at all
  WeightedFairQueue queue(config, nullptr);
  ASSERT_TRUE(queue.Acquire(1).ok());
  EXPECT_EQ(queue.Acquire(2).code(), Errc::kAgain);
  queue.Release();
}

TEST(FairQueueTest, TimedOutWaiterShedsItself) {
  TenantMetrics metrics;
  FairQueueConfig config;
  config.enabled = true;
  config.service_slots = 1;
  config.max_wait = Millis(30);
  WeightedFairQueue queue(config, &metrics);
  ASSERT_TRUE(queue.Acquire(1).ok());
  Status st = queue.Acquire(2);  // never granted: times out
  EXPECT_EQ(st.code(), Errc::kAgain);
  Nanos hint{};
  EXPECT_TRUE(ParseRetryAfterHint(st.detail(), &hint));
  EXPECT_EQ(metrics.For(2).shed.value(), 1u);
  EXPECT_EQ(queue.QueuedDepth(), 0u);
  queue.Release();
}

// Deficit round-robin with weight 2:1 drains the heavy tenant twice as
// fast: with 4 waiters each and one slot, at least 4 of the first 6 grants
// go to the heavy tenant (order 1,1,2,1,1,2,...), and it finishes first.
TEST(FairQueueTest, WeightedDrainFavorsHeavyTenant) {
  FairQueueConfig config;
  config.enabled = true;
  config.service_slots = 1;
  config.weights[1] = 2.0;
  config.weights[2] = 1.0;
  WeightedFairQueue queue(config, nullptr);
  ASSERT_TRUE(queue.Acquire(1).ok());  // hold the slot while waiters park

  std::mutex order_mu;
  std::vector<TenantId> order;
  std::vector<std::thread> waiters;
  // Park deterministically: interleave tenants, waiting for each park to
  // land before starting the next, so sub-queue FIFO order is fixed.
  for (int i = 0; i < 8; ++i) {
    const TenantId tenant = (i % 2 == 0) ? 1 : 2;
    const std::size_t parked_before = queue.QueuedDepth();
    waiters.emplace_back([&, tenant] {
      ASSERT_TRUE(queue.Acquire(tenant).ok());
      {
        std::lock_guard lock(order_mu);
        order.push_back(tenant);
      }
      queue.Release();
    });
    while (queue.QueuedDepth() == parked_before) std::this_thread::yield();
  }
  queue.Release();  // start the drain
  for (auto& t : waiters) t.join();

  ASSERT_EQ(order.size(), 8u);
  int heavy_in_first_six = 0;
  for (int i = 0; i < 6; ++i) heavy_in_first_six += order[i] == 1 ? 1 : 0;
  EXPECT_GE(heavy_in_first_six, 4)
      << "drain order " << ::testing::PrintToString(order);
  // The heavy tenant's last grant precedes the light tenant's last.
  std::size_t last_heavy = 0, last_light = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    (order[i] == 1 ? last_heavy : last_light) = i;
  }
  EXPECT_LT(last_heavy, last_light);
}

// --- namespace quotas ---------------------------------------------------

QuotaConfig LimitedConfig(TenantId tenant, std::uint64_t inodes,
                          std::uint64_t bytes) {
  QuotaConfig config;
  config.enabled = true;
  config.tenants[tenant] = QuotaLimits{inodes, bytes};
  return config;
}

TEST(QuotaTest, DisabledChargesNothing) {
  QuotaManager quota(QuotaConfig{}, nullptr);
  EXPECT_TRUE(quota.ChargeInodes(1, 1 << 20).ok());
  EXPECT_EQ(quota.UsageFor(1).inodes, 0u);
}

TEST(QuotaTest, InodeLimitRejectsWithNoSpc) {
  TenantMetrics metrics;
  QuotaManager quota(LimitedConfig(4, /*inodes=*/2, /*bytes=*/0), &metrics);
  EXPECT_TRUE(quota.ChargeInodes(4, 1).ok());
  EXPECT_TRUE(quota.ChargeInodes(4, 1).ok());
  Status full = quota.ChargeInodes(4, 1);
  EXPECT_EQ(full.code(), Errc::kNoSpc);
  EXPECT_EQ(quota.UsageFor(4).inodes, 2u);  // failed charge charged nothing
  EXPECT_EQ(metrics.For(4).quota_rejects.value(), 1u);
  // Deleting frees the budget again.
  EXPECT_TRUE(quota.ChargeInodes(4, -1).ok());
  EXPECT_TRUE(quota.ChargeInodes(4, 1).ok());
}

TEST(QuotaTest, ByteLimitTracksDeltas) {
  QuotaManager quota(LimitedConfig(9, 0, /*bytes=*/100), nullptr);
  EXPECT_TRUE(quota.ChargeBytes(9, 80).ok());
  EXPECT_EQ(quota.ChargeBytes(9, 30).code(), Errc::kNoSpc);
  EXPECT_TRUE(quota.ChargeBytes(9, -40).ok());  // truncate down
  EXPECT_TRUE(quota.ChargeBytes(9, 30).ok());
  EXPECT_EQ(quota.UsageFor(9).bytes, 70u);
}

TEST(QuotaTest, CreditsFloorAtZero) {
  QuotaManager quota(LimitedConfig(2, 10, 10), nullptr);
  EXPECT_TRUE(quota.ChargeInodes(2, -5).ok());
  EXPECT_TRUE(quota.ChargeBytes(2, -5).ok());
  EXPECT_EQ(quota.UsageFor(2).inodes, 0u);
  EXPECT_EQ(quota.UsageFor(2).bytes, 0u);
}

TEST(QuotaTest, OtherTenantsUnaffectedByOneTenantsLimit) {
  QuotaManager quota(LimitedConfig(1, 1, 0), nullptr);
  EXPECT_TRUE(quota.ChargeInodes(1, 1).ok());
  EXPECT_EQ(quota.ChargeInodes(1, 1).code(), Errc::kNoSpc);
  for (int i = 0; i < 64; ++i) ASSERT_TRUE(quota.ChargeInodes(2, 1).ok());
}

TEST(QuotaTest, UsageCodecRoundTrips) {
  QuotaManager quota(LimitedConfig(3, 100, 1000), nullptr);
  ASSERT_TRUE(quota.ChargeInodes(3, 7).ok());
  ASSERT_TRUE(quota.ChargeBytes(3, 512).ok());
  ASSERT_TRUE(quota.ChargeInodes(8, 2).ok());
  EXPECT_TRUE(quota.ConsumeDirty());
  EXPECT_FALSE(quota.ConsumeDirty());

  const Bytes blob = quota.EncodeUsage();
  QuotaManager restored(LimitedConfig(3, 100, 1000), nullptr);
  ASSERT_TRUE(restored.LoadUsage(blob).ok());
  EXPECT_EQ(restored.UsageFor(3).inodes, 7u);
  EXPECT_EQ(restored.UsageFor(3).bytes, 512u);
  EXPECT_EQ(restored.UsageFor(8).inodes, 2u);
  EXPECT_FALSE(restored.ConsumeDirty());  // loading is not a mutation
}

TEST(QuotaTest, UsageCodecRejectsEveryTruncationAndBitflip) {
  QuotaManager quota(LimitedConfig(3, 0, 0), nullptr);
  ASSERT_TRUE(quota.ChargeInodes(3, 5).ok());
  ASSERT_TRUE(quota.ChargeBytes(6, 64).ok());
  const Bytes blob = quota.EncodeUsage();

  QuotaManager sink(QuotaConfig{.enabled = true}, nullptr);
  for (std::size_t len = 0; len < blob.size(); ++len) {
    Bytes truncated(blob.begin(), blob.begin() + len);
    EXPECT_FALSE(sink.LoadUsage(truncated).ok()) << "at length " << len;
  }
  for (std::size_t i = 0; i < blob.size(); ++i) {
    Bytes flipped = blob;
    flipped[i] ^= 0x40;
    EXPECT_FALSE(sink.LoadUsage(flipped).ok()) << "flipped byte " << i;
  }
  Bytes padded = blob;
  padded.push_back(0);
  EXPECT_FALSE(sink.LoadUsage(padded).ok());
}

TEST(QuotaTest, CorruptLoadLeavesStateUntouched) {
  QuotaManager quota(QuotaConfig{.enabled = true}, nullptr);
  ASSERT_TRUE(quota.ChargeInodes(5, 3).ok());
  Bytes blob = quota.EncodeUsage();
  blob[0] ^= 0xff;
  EXPECT_FALSE(quota.LoadUsage(blob).ok());
  EXPECT_EQ(quota.UsageFor(5).inodes, 3u);
}

TEST(QuotaTest, MarkDirtyReArmsPersistence) {
  QuotaManager quota(QuotaConfig{.enabled = true}, nullptr);
  ASSERT_TRUE(quota.ChargeInodes(1, 1).ok());
  EXPECT_TRUE(quota.ConsumeDirty());
  quota.MarkDirty();  // persist hook failed: retry next checkpoint
  EXPECT_TRUE(quota.ConsumeDirty());
}

// --- WFQ wired into the cluster store -----------------------------------

TEST(ClusterStoreQosTest, ConcurrentTenantsAllSucceedUnderWfq) {
  obs::MetricsRegistry registry;
  TenantMetrics metrics(&registry);
  ClusterConfig config = ClusterConfig::Instant(/*nodes=*/2);
  config.fair_queue.enabled = true;
  config.fair_queue.service_slots = 1;
  config.fair_queue.max_depth = 64;
  config.tenant_metrics = &metrics;
  ClusterObjectStore store(config);

  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 1; t <= 3; ++t) {
    workers.emplace_back([&, t] {
      obs::TenantScope scope(static_cast<TenantId>(t));
      for (int i = 0; i < 16; ++i) {
        const std::string key =
            "k" + std::to_string(t) + "-" + std::to_string(i);
        if (!store.Put(key, AsBytes("payload")).ok()) ++failures;
        if (!store.Get(key).ok()) ++failures;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  // Whether any op actually PARKED is timing-dependent; what must hold is
  // that nothing was silently dropped and every byte is readable.
  for (int t = 1; t <= 3; ++t) {
    for (int i = 0; i < 16; ++i) {
      auto got = store.Get("k" + std::to_string(t) + "-" + std::to_string(i));
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got->size(), 7u);
    }
  }
}

TEST(ClusterStoreQosTest, EmulatedPartialWritePassesThroughTheQueue) {
  ClusterConfig config = ClusterConfig::S3Like();
  config.num_nodes = 2;
  config.profile = sim::CostProfile::Instant();
  config.profile.supports_partial_write = false;  // keep S3 semantics
  config.fair_queue.enabled = true;
  config.fair_queue.service_slots = 1;
  ClusterObjectStore store(config);
  ASSERT_FALSE(store.supports_partial_write());

  ASSERT_TRUE(store.Put("obj", AsBytes("AAAA")).ok());
  // RMW emulation re-enters Get+Put; each leg takes and releases the node
  // queue on its own — no self-deadlock, real bytes at the end.
  ASSERT_TRUE(store.PutRange("obj", 2, AsBytes("bb")).ok());
  auto got = store.Get("obj");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::string(got->begin(), got->end()), "AAbb");
}

}  // namespace
}  // namespace arkfs::qos
