// Tests for the FUSE behaviour model.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "objstore/memory_store.h"

namespace arkfs {
namespace {

class FuseSimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_shared<MemoryObjectStore>();
    cluster_ =
        ArkFsCluster::Create(store_, ArkFsClusterOptions::ForTests()).value();
    client_ = cluster_->AddClient().value();
  }

  ObjectStorePtr store_;
  std::unique_ptr<ArkFsCluster> cluster_;
  std::shared_ptr<Client> client_;
  UserCred root_ = UserCred::Root();
};

TEST_F(FuseSimTest, OperationsWorkThroughTheWrapper) {
  FuseSimConfig config;
  config.crossing_cost = Micros(1);
  auto fuse = cluster_->WithFuse(client_, config);
  ASSERT_TRUE(fuse->Mkdir("/d", 0755, root_).ok());
  ASSERT_TRUE(fuse->WriteFileAt("/d/f", AsBytes("via-fuse"), root_).ok());
  auto data = fuse->ReadWholeFile("/d/f", root_);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "via-fuse");
  ASSERT_TRUE(fuse->Rename("/d/f", "/d/g", root_).ok());
  EXPECT_TRUE(fuse->Stat("/d/g", root_).ok());
  ASSERT_TRUE(fuse->Unlink("/d/g", root_).ok());
  ASSERT_TRUE(fuse->Rmdir("/d", root_).ok());
}

TEST_F(FuseSimTest, PerComponentLookupsAreIssued) {
  FuseSimConfig config;
  config.crossing_cost = Nanos(0);
  auto fuse = std::dynamic_pointer_cast<FuseSim>(
      cluster_->WithFuse(client_, config));
  ASSERT_NE(fuse, nullptr);
  ASSERT_TRUE(client_->MkdirAll("/a/b", 0755, root_).ok());

  const auto before = fuse->lookups_issued();
  // CREATE /a/b/c.txt: the paper says this incurs LOOKUPs for each
  // component (a, b, c.txt).
  ASSERT_TRUE(fuse->WriteFileAt("/a/b/c.txt", AsBytes("x"), root_).ok());
  EXPECT_GE(fuse->lookups_issued() - before, 3u);
}

TEST_F(FuseSimTest, LookupsCanBeDisabled) {
  auto fuse = std::dynamic_pointer_cast<FuseSim>(
      cluster_->WithFuse(client_, FuseSimConfig::Off()));
  ASSERT_TRUE(client_->MkdirAll("/a/b", 0755, root_).ok());
  ASSERT_TRUE(fuse->WriteFileAt("/a/b/c.txt", AsBytes("x"), root_).ok());
  EXPECT_EQ(fuse->lookups_issued(), 0u);
}

TEST_F(FuseSimTest, CrossingCostSlowsOperations) {
  FuseSimConfig slow;
  slow.crossing_cost = Millis(2);
  slow.per_component_lookup = false;
  auto fuse = cluster_->WithFuse(client_, slow);
  const TimePoint start = Now();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fuse->Stat("/", root_).ok());
  }
  EXPECT_GE(Now() - start, Millis(9));
}

TEST_F(FuseSimTest, ProbeUsesPermissionCache) {
  // With pcache on, repeated probes of the same path resolve locally.
  ASSERT_TRUE(client_->MkdirAll("/p/q", 0755, root_).ok());
  ASSERT_TRUE(client_->Probe("/p/q", root_).ok());
  const auto hits_before = client_->stats().perm_cache_hits;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client_->Probe("/p/q", root_).ok());
  }
  EXPECT_GT(client_->stats().perm_cache_hits, hits_before);
}

}  // namespace
}  // namespace arkfs
