// End-to-end single-client tests of the ArkFS file system.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "objstore/memory_store.h"

namespace arkfs {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_shared<MemoryObjectStore>();
    cluster_ =
        ArkFsCluster::Create(store_, ArkFsClusterOptions::ForTests()).value();
    client_ = cluster_->AddClient().value();
  }

  Bytes Pattern(std::size_t n, int seed = 0) {
    Bytes b(n);
    for (std::size_t i = 0; i < n; ++i) {
      b[i] = static_cast<std::uint8_t>((i * 13 + seed) & 0xFF);
    }
    return b;
  }

  ObjectStorePtr store_;
  std::unique_ptr<ArkFsCluster> cluster_;
  std::shared_ptr<Client> client_;
  UserCred root_ = UserCred::Root();
  UserCred alice_{1000, 1000, {}};
  UserCred bob_{1001, 1001, {}};
};

TEST_F(ClientTest, FormatIsRequiredAndIdempotentlyGuarded) {
  auto fresh = std::make_shared<MemoryObjectStore>();
  EXPECT_TRUE(Client::Format(fresh).ok());
  EXPECT_EQ(Client::Format(fresh).code(), Errc::kExist);
  EXPECT_TRUE(Client::Format(fresh, /*force=*/true).ok());
}

TEST_F(ClientTest, RootStat) {
  auto st = client_->Stat("/", root_);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->ino, kRootIno);
  EXPECT_EQ(st->type, FileType::kDirectory);
  EXPECT_EQ(st->mode, 0755u);
}

TEST_F(ClientTest, CreateWriteReadRoundTrip) {
  OpenOptions create;
  create.write = true;
  create.create = true;
  auto fd = client_->Open("/hello.txt", create, root_);
  ASSERT_TRUE(fd.ok());
  Bytes data = Pattern(10000);
  auto written = client_->Write(*fd, 0, data);
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(*written, data.size());
  ASSERT_TRUE(client_->Fsync(*fd).ok());
  ASSERT_TRUE(client_->Close(*fd).ok());

  auto st = client_->Stat("/hello.txt", root_);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, data.size());

  auto back = client_->ReadWholeFile("/hello.txt", root_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(ClientTest, OpenMissingFileFails) {
  OpenOptions read;
  EXPECT_EQ(client_->Open("/nope", read, root_).code(), Errc::kNoEnt);
  EXPECT_EQ(client_->Stat("/nope", root_).code(), Errc::kNoEnt);
}

TEST_F(ClientTest, ExclusiveCreateConflict) {
  OpenOptions create;
  create.write = true;
  create.create = true;
  create.exclusive = true;
  ASSERT_TRUE(client_->Open("/x", create, root_).ok());
  EXPECT_EQ(client_->Open("/x", create, root_).code(), Errc::kExist);
  // Non-exclusive create opens the existing file.
  create.exclusive = false;
  EXPECT_TRUE(client_->Open("/x", create, root_).ok());
}

TEST_F(ClientTest, MkdirHierarchyAndReaddir) {
  ASSERT_TRUE(client_->Mkdir("/a", 0755, root_).ok());
  ASSERT_TRUE(client_->Mkdir("/a/b", 0755, root_).ok());
  ASSERT_TRUE(client_->WriteFileAt("/a/b/f.txt", AsBytes("content"), root_).ok());

  auto entries = client_->ReadDir("/a/b", root_);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "f.txt");

  auto root_entries = client_->ReadDir("/", root_);
  ASSERT_TRUE(root_entries.ok());
  EXPECT_EQ(root_entries->size(), 1u);

  EXPECT_EQ(client_->Mkdir("/a", 0755, root_).code(), Errc::kExist);
  EXPECT_EQ(client_->Mkdir("/missing/sub", 0755, root_).code(), Errc::kNoEnt);
}

TEST_F(ClientTest, MkdirAllCreatesChain) {
  ASSERT_TRUE(client_->MkdirAll("/deep/nested/dirs", 0755, root_).ok());
  auto st = client_->Stat("/deep/nested/dirs", root_);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->type, FileType::kDirectory);
}

TEST_F(ClientTest, UnlinkRemovesFileAndData) {
  Bytes data = Pattern(5000);
  ASSERT_TRUE(client_->WriteFileAt("/victim", data, root_).ok());
  ASSERT_TRUE(client_->Unlink("/victim", root_).ok());
  EXPECT_EQ(client_->Stat("/victim", root_).code(), Errc::kNoEnt);
  EXPECT_EQ(client_->Unlink("/victim", root_).code(), Errc::kNoEnt);
  // Unlink of a directory is rejected.
  ASSERT_TRUE(client_->Mkdir("/d", 0755, root_).ok());
  EXPECT_EQ(client_->Unlink("/d", root_).code(), Errc::kIsDir);
}

TEST_F(ClientTest, RmdirSemantics) {
  ASSERT_TRUE(client_->Mkdir("/dir", 0755, root_).ok());
  ASSERT_TRUE(client_->WriteFileAt("/dir/f", AsBytes("x"), root_).ok());
  EXPECT_EQ(client_->Rmdir("/dir", root_).code(), Errc::kNotEmpty);
  ASSERT_TRUE(client_->Unlink("/dir/f", root_).ok());
  EXPECT_TRUE(client_->Rmdir("/dir", root_).ok());
  EXPECT_EQ(client_->Stat("/dir", root_).code(), Errc::kNoEnt);
  // Rmdir of a file is ENOTDIR.
  ASSERT_TRUE(client_->WriteFileAt("/file", AsBytes("x"), root_).ok());
  EXPECT_EQ(client_->Rmdir("/file", root_).code(), Errc::kNotDir);
}

TEST_F(ClientTest, SameDirectoryRename) {
  ASSERT_TRUE(client_->WriteFileAt("/old", AsBytes("payload"), root_).ok());
  ASSERT_TRUE(client_->Rename("/old", "/new", root_).ok());
  EXPECT_EQ(client_->Stat("/old", root_).code(), Errc::kNoEnt);
  auto back = client_->ReadWholeFile("/new", root_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(ToString(*back), "payload");
}

TEST_F(ClientTest, SameDirectoryRenameReplacesTarget) {
  ASSERT_TRUE(client_->WriteFileAt("/src", AsBytes("SRC"), root_).ok());
  ASSERT_TRUE(client_->WriteFileAt("/dst", AsBytes("DST"), root_).ok());
  ASSERT_TRUE(client_->Rename("/src", "/dst", root_).ok());
  EXPECT_EQ(client_->Stat("/src", root_).code(), Errc::kNoEnt);
  EXPECT_EQ(ToString(*client_->ReadWholeFile("/dst", root_)), "SRC");
}

TEST_F(ClientTest, CrossDirectoryRename) {
  ASSERT_TRUE(client_->Mkdir("/from", 0755, root_).ok());
  ASSERT_TRUE(client_->Mkdir("/to", 0755, root_).ok());
  Bytes data = Pattern(3000, 9);
  ASSERT_TRUE(client_->WriteFileAt("/from/file", data, root_).ok());

  ASSERT_TRUE(client_->Rename("/from/file", "/to/moved", root_).ok());
  EXPECT_EQ(client_->Stat("/from/file", root_).code(), Errc::kNoEnt);
  auto st = client_->Stat("/to/moved", root_);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, data.size());
  EXPECT_EQ(*client_->ReadWholeFile("/to/moved", root_), data);
  // Directory listings reflect the move.
  EXPECT_TRUE(client_->ReadDir("/from", root_)->empty());
  EXPECT_EQ(client_->ReadDir("/to", root_)->size(), 1u);
}

TEST_F(ClientTest, CrossDirectoryRenameOfDirectory) {
  ASSERT_TRUE(client_->MkdirAll("/p1/sub", 0755, root_).ok());
  ASSERT_TRUE(client_->Mkdir("/p2", 0755, root_).ok());
  ASSERT_TRUE(client_->WriteFileAt("/p1/sub/f", AsBytes("deep"), root_).ok());
  ASSERT_TRUE(client_->Rename("/p1/sub", "/p2/moved_sub", root_).ok());
  EXPECT_EQ(ToString(*client_->ReadWholeFile("/p2/moved_sub/f", root_)),
            "deep");
  EXPECT_EQ(client_->Stat("/p1/sub", root_).code(), Errc::kNoEnt);
}

TEST_F(ClientTest, SetAttrChmodChownTruncate) {
  ASSERT_TRUE(client_->WriteFileAt("/f", Pattern(1000), root_).ok());
  ASSERT_TRUE(client_->Chmod("/f", 0600, root_).ok());
  EXPECT_EQ(client_->Stat("/f", root_)->mode, 0600u);
  ASSERT_TRUE(client_->Chown("/f", 1000, 1000, root_).ok());
  EXPECT_EQ(client_->Stat("/f", root_)->uid, 1000u);

  ASSERT_TRUE(client_->Truncate("/f", 100, root_).ok());
  EXPECT_EQ(client_->Stat("/f", root_)->size, 100u);
  auto data = client_->ReadWholeFile("/f", root_);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 100u);
  EXPECT_EQ(*data, Pattern(100));
}

TEST_F(ClientTest, ChmodOnDirectory) {
  ASSERT_TRUE(client_->Mkdir("/d", 0755, root_).ok());
  ASSERT_TRUE(client_->Chmod("/d", 0700, root_).ok());
  EXPECT_EQ(client_->Stat("/d", root_)->mode, 0700u);
}

TEST_F(ClientTest, PermissionEnforcement) {
  ASSERT_TRUE(client_->Mkdir("/secure", 0700, root_).ok());
  ASSERT_TRUE(client_->Chown("/secure", 1000, 1000, root_).ok());
  ASSERT_TRUE(
      client_->WriteFileAt("/secure/data", AsBytes("secret"), alice_).ok());

  // bob cannot traverse /secure (no exec) nor create inside it.
  EXPECT_EQ(client_->Stat("/secure/data", bob_).code(), Errc::kAccess);
  EXPECT_EQ(client_->WriteFileAt("/secure/other", AsBytes("x"), bob_).code(),
            Errc::kAccess);
  // bob cannot read a 0600 file even in an open directory.
  ASSERT_TRUE(client_->Chmod("/", 0777, root_).ok());
  ASSERT_TRUE(client_->WriteFileAt("/shared", AsBytes("mine"), alice_).ok());
  ASSERT_TRUE(client_->Chmod("/shared", 0600, alice_).ok());
  OpenOptions read;
  EXPECT_EQ(client_->Open("/shared", read, bob_).code(), Errc::kAccess);
  // Only the owner (or root) may chmod.
  EXPECT_EQ(client_->Chmod("/shared", 0666, bob_).code(), Errc::kPerm);
}

TEST_F(ClientTest, AclGrantsAccessBeyondModeBits) {
  ASSERT_TRUE(client_->Chmod("/", 0777, root_).ok());
  ASSERT_TRUE(client_->WriteFileAt("/acl_file", AsBytes("data"), alice_).ok());
  ASSERT_TRUE(client_->Chmod("/acl_file", 0600, alice_).ok());
  OpenOptions read;
  EXPECT_EQ(client_->Open("/acl_file", read, bob_).code(), Errc::kAccess);

  Acl acl;
  acl.Set({AclTag::kUserObj, 0, 7});
  acl.Set({AclTag::kGroupObj, 0, 0});
  acl.Set({AclTag::kMask, 0, 7});
  acl.Set({AclTag::kOther, 0, 0});
  acl.Set({AclTag::kUser, bob_.uid, kPermRead});
  ASSERT_TRUE(client_->SetAcl("/acl_file", acl, alice_).ok());

  auto got = client_->GetAcl("/acl_file", alice_);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, acl);
  EXPECT_TRUE(client_->Open("/acl_file", read, bob_).ok());
}

TEST_F(ClientTest, SymlinkAndReadlink) {
  ASSERT_TRUE(client_->WriteFileAt("/target", AsBytes("pointed-at"), root_).ok());
  ASSERT_TRUE(client_->Symlink("/target", "/link", root_).ok());
  auto target = client_->ReadLink("/link", root_);
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(*target, "/target");
  // Open follows the final symlink.
  OpenOptions read;
  auto fd = client_->Open("/link", read, root_);
  ASSERT_TRUE(fd.ok());
  auto data = client_->Read(*fd, 0, 100);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "pointed-at");
  ASSERT_TRUE(client_->Close(*fd).ok());
}

TEST_F(ClientTest, SymlinkedDirectoryInPath) {
  ASSERT_TRUE(client_->MkdirAll("/real/dir", 0755, root_).ok());
  ASSERT_TRUE(client_->WriteFileAt("/real/dir/f", AsBytes("via-link"), root_).ok());
  ASSERT_TRUE(client_->Symlink("/real/dir", "/shortcut", root_).ok());
  auto data = client_->ReadWholeFile("/shortcut/f", root_);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "via-link");
}

TEST_F(ClientTest, SymlinkLoopDetected) {
  ASSERT_TRUE(client_->Symlink("/loop_b", "/loop_a", root_).ok());
  ASSERT_TRUE(client_->Symlink("/loop_a", "/loop_b", root_).ok());
  EXPECT_EQ(client_->Stat("/loop_a/x", root_).code(), Errc::kLoop);
}

TEST_F(ClientTest, AppendMode) {
  OpenOptions append;
  append.write = true;
  append.create = true;
  append.append = true;
  auto fd = client_->Open("/log", append, root_);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(client_->Write(*fd, 0, AsBytes("one")).ok());
  ASSERT_TRUE(client_->Write(*fd, 0, AsBytes("two")).ok());
  ASSERT_TRUE(client_->Close(*fd).ok());
  EXPECT_EQ(ToString(*client_->ReadWholeFile("/log", root_)), "onetwo");
}

TEST_F(ClientTest, TruncateOnOpen) {
  ASSERT_TRUE(client_->WriteFileAt("/t", Pattern(1000), root_).ok());
  OpenOptions trunc;
  trunc.write = true;
  trunc.truncate = true;
  auto fd = client_->Open("/t", trunc, root_);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(client_->Close(*fd).ok());
  EXPECT_EQ(client_->Stat("/t", root_)->size, 0u);
}

TEST_F(ClientTest, LargeFileSpansManyChunks) {
  // Test-config cache has 4 KiB entries; the store chunks at 4 MiB. Write
  // enough to exercise multi-chunk paths end to end.
  Bytes data = Pattern(300000, 4);
  ASSERT_TRUE(client_->WriteFileAt("/big", data, root_).ok());
  auto back = client_->ReadWholeFile("/big", root_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(ClientTest, RandomOffsetReadsAfterSequentialWrite) {
  Bytes data = Pattern(50000, 5);
  ASSERT_TRUE(client_->WriteFileAt("/r", data, root_).ok());
  OpenOptions read;
  auto fd = client_->Open("/r", read, root_);
  ASSERT_TRUE(fd.ok());
  for (std::uint64_t off : {49999u, 0u, 31111u, 4096u, 12345u}) {
    auto got = client_->Read(*fd, off, 17);
    ASSERT_TRUE(got.ok());
    const std::size_t expect_len = std::min<std::size_t>(17, 50000 - off);
    ASSERT_EQ(got->size(), expect_len);
    EXPECT_TRUE(std::equal(got->begin(), got->end(), data.begin() + off));
  }
  ASSERT_TRUE(client_->Close(*fd).ok());
}

TEST_F(ClientTest, MetadataSurvivesClientRestart) {
  ASSERT_TRUE(client_->MkdirAll("/persist/dir", 0750, root_).ok());
  ASSERT_TRUE(client_->WriteFileAt("/persist/dir/f", Pattern(777), root_).ok());
  ASSERT_TRUE(client_->Shutdown().ok());

  auto reborn = cluster_->AddClient("client-reborn").value();
  auto st = reborn->Stat("/persist/dir/f", root_);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 777u);
  EXPECT_EQ(*reborn->ReadWholeFile("/persist/dir/f", root_), Pattern(777));
  EXPECT_EQ(reborn->Stat("/persist/dir", root_)->mode, 0750u);
}

TEST_F(ClientTest, ManyFilesInOneDirectory) {
  ASSERT_TRUE(client_->Mkdir("/many", 0755, root_).ok());
  const int kFiles = 200;
  OpenOptions create;
  create.write = true;
  create.create = true;
  for (int i = 0; i < kFiles; ++i) {
    auto fd = client_->Open("/many/f" + std::to_string(i), create, root_);
    ASSERT_TRUE(fd.ok()) << i;
    ASSERT_TRUE(client_->Close(*fd).ok());
  }
  EXPECT_EQ(client_->ReadDir("/many", root_)->size(),
            static_cast<std::size_t>(kFiles));
  for (int i = 0; i < kFiles; i += 17) {
    EXPECT_TRUE(client_->Stat("/many/f" + std::to_string(i), root_).ok());
  }
  for (int i = 0; i < kFiles; ++i) {
    ASSERT_TRUE(client_->Unlink("/many/f" + std::to_string(i), root_).ok());
  }
  EXPECT_TRUE(client_->ReadDir("/many", root_)->empty());
}

TEST_F(ClientTest, Utimens) {
  ASSERT_TRUE(client_->WriteFileAt("/t", AsBytes("x"), root_).ok());
  SetAttrRequest req;
  req.mask = kSetAtime | kSetMtime;
  req.atime_sec = 1111111111;
  req.mtime_sec = 2222222222;
  ASSERT_TRUE(client_->SetAttr("/t", req, root_).ok());
  auto st = client_->Stat("/t", root_);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->atime_sec, 1111111111);
  EXPECT_EQ(st->mtime_sec, 2222222222);
}

TEST_F(ClientTest, LeaseExtensionReusesMetatable) {
  // Paper §III-B: a leader that re-acquires its lease before anyone else
  // led the directory keeps its metatable — no reload from the store.
  ASSERT_TRUE(client_->Mkdir("/mine", 0755, root_).ok());
  ASSERT_TRUE(client_->WriteFileAt("/mine/f", AsBytes("x"), root_).ok());
  const auto acquires_before = client_->stats().lease_acquires;
  // Work across several lease periods (test config: 200 ms leases, renewal
  // at 25% remaining) — each op revalidates and extends as needed.
  for (int round = 0; round < 3; ++round) {
    SleepFor(Millis(120));
    ASSERT_TRUE(client_->Stat("/mine/f", root_).ok());
  }
  // Leases were re-acquired (extension), yet no recovery or rebuild ran:
  EXPECT_GT(client_->stats().lease_acquires, acquires_before);
  EXPECT_EQ(client_->stats().recoveries, 0u);
}

TEST_F(ClientTest, LocalOpsDominateForOwnDirectory) {
  ASSERT_TRUE(client_->Mkdir("/mine", 0755, root_).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client_
                    ->WriteFileAt("/mine/f" + std::to_string(i),
                                  AsBytes("x"), root_)
                    .ok());
  }
  auto stats = client_->stats();
  // Single client: everything is a local metadata op; nothing forwarded.
  EXPECT_GT(stats.local_meta_ops, 0u);
  EXPECT_EQ(stats.forwarded_ops, 0u);
}

}  // namespace
}  // namespace arkfs
