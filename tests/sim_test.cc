// Tests for the timing models: latency, shared link, simulated disk.
#include <gtest/gtest.h>

#include <thread>

#include "sim/disk.h"
#include "sim/models.h"
#include "sim/shared_link.h"

namespace arkfs::sim {
namespace {

TEST(LatencyModelTest, ZeroModelIsFree) {
  LatencyModel zero;
  EXPECT_TRUE(zero.zero());
  EXPECT_EQ(zero.Sample().count(), 0);
  const TimePoint start = Now();
  zero.Apply();
  EXPECT_LT(Now() - start, Millis(2));
}

TEST(LatencyModelTest, SamplesWithinJitterBounds) {
  LatencyModel model(Micros(1000), 0.2);
  for (int i = 0; i < 1000; ++i) {
    const auto s = model.Sample();
    EXPECT_GE(s.count(), Micros(790).count());
    EXPECT_LE(s.count(), Micros(1210).count());
  }
}

TEST(LatencyModelTest, MeanIsApproximatelyRight) {
  LatencyModel model(Micros(1000), 0.3);
  std::int64_t sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += model.Sample().count();
  const double mean = static_cast<double>(sum) / n;
  EXPECT_NEAR(mean, 1e6, 3e4);
}

TEST(SharedLinkTest, InfiniteBandwidthIsFree) {
  SharedLink link(0);
  EXPECT_EQ(link.Transfer(1 << 30).count(), 0);
}

TEST(SharedLinkTest, TransferTimeMatchesRate) {
  SharedLink link(100e6);  // 100 MB/s
  const TimePoint start = Now();
  link.Transfer(1 << 20);  // 1 MiB -> ~10.5 ms
  const auto elapsed = Now() - start;
  EXPECT_GE(elapsed, Millis(9));
  EXPECT_LE(elapsed, Millis(60));
}

TEST(SharedLinkTest, ConcurrentTransfersShareBandwidth) {
  SharedLink link(100e6);
  const TimePoint start = Now();
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] { link.Transfer(1 << 20); });
  }
  for (auto& t : threads) t.join();
  // 4 MiB over a shared 100 MB/s link takes ~42 ms regardless of threads.
  EXPECT_GE(Now() - start, Millis(35));
}

TEST(SimDiskTest, ReadWriteDelete) {
  SimDisk disk(DiskConfig::Instant());
  ASSERT_TRUE(disk.WriteFile("f1", AsBytes("hello")).ok());
  auto data = disk.ReadFile("f1");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "hello");
  EXPECT_TRUE(disk.Exists("f1"));
  EXPECT_EQ(disk.FileCount(), 1u);
  EXPECT_EQ(disk.TotalBytes(), 5u);
  ASSERT_TRUE(disk.DeleteFile("f1").ok());
  EXPECT_EQ(disk.ReadFile("f1").code(), Errc::kNoEnt);
}

TEST(SimDiskTest, BandwidthBoundsThroughput) {
  DiskConfig config;
  config.bandwidth_bps = 50e6;  // 50 MB/s
  config.request_latency = Nanos(0);
  SimDisk disk(config);
  Bytes megabyte(1 << 20, 1);
  const TimePoint start = Now();
  ASSERT_TRUE(disk.WriteFile("big", megabyte).ok());
  EXPECT_GE(Now() - start, Millis(18));  // ~21 ms at 50 MB/s
}

TEST(ProfilesTest, SaneRelativeMagnitudes) {
  const auto rados = CostProfile::RadosLike();
  const auto s3 = CostProfile::S3Like();
  EXPECT_GT(s3.op_latency, rados.op_latency * 10);
  EXPECT_TRUE(rados.supports_partial_write);
  EXPECT_FALSE(s3.supports_partial_write);
  EXPECT_GT(NetworkProfile::Datacenter10G().rtt.count(), 0);
}

}  // namespace
}  // namespace arkfs::sim
