// Crash-consistency tests (paper §III-E): client failure with journal
// recovery, lease-manager failure with quiet-period restart.
#include <gtest/gtest.h>

#include <atomic>

#include "core/cluster.h"
#include "objstore/memory_store.h"
#include "objstore/wrappers.h"

namespace arkfs {
namespace {

class CrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_shared<MemoryObjectStore>();
    auto options = ArkFsClusterOptions::ForTests();
    cluster_ = ArkFsCluster::Create(store_, options).value();
  }

  Nanos LeasePeriod() {
    return cluster_->lease_manager().config().lease_period;
  }

  ObjectStorePtr store_;
  std::unique_ptr<ArkFsCluster> cluster_;
  UserCred root_ = UserCred::Root();
};

TEST_F(CrashTest, CommittedButNotCheckpointedSurvivesCrash) {
  auto c1 = cluster_->AddClient("crasher").value();
  ASSERT_TRUE(c1->Mkdir("/work", 0755, root_).ok());
  // The mkdir itself is async-acked into the ROOT journal; make it durable
  // before the burst — this test is about the fsynced files surviving, not
  // about the parent riding the async loss window.
  ASSERT_TRUE(c1->SyncAll().ok());
  OpenOptions create;
  create.write = true;
  create.create = true;
  for (int i = 0; i < 10; ++i) {
    auto fd = c1->Open("/work/f" + std::to_string(i), create, root_);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(c1->Write(*fd, 0, AsBytes("payload")).ok());
    ASSERT_TRUE(c1->Fsync(*fd).ok());  // data + journal commit, NO checkpoint
    ASSERT_TRUE(c1->Close(*fd).ok());
  }
  // Hard crash: no flush, no release, vanishes from the fabric.
  c1->CrashHard();

  // A new client takes over after the lease expires; finding valid journal
  // transactions it must replay them before serving the directory.
  SleepFor(LeasePeriod() + Millis(100));
  auto c2 = cluster_->AddClient("recoverer").value();
  auto entries = c2->ReadDir("/work", root_);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  EXPECT_EQ(entries->size(), 10u);
  for (int i = 0; i < 10; ++i) {
    auto data = c2->ReadWholeFile("/work/f" + std::to_string(i), root_);
    ASSERT_TRUE(data.ok()) << i;
    EXPECT_EQ(ToString(*data), "payload");
  }
  EXPECT_GT(c2->stats().recoveries, 0u);
}

TEST_F(CrashTest, UnsyncedDataIsLostButFsConsistent) {
  auto c1 = cluster_->AddClient("crasher").value();
  ASSERT_TRUE(c1->Mkdir("/d", 0755, root_).ok());
  ASSERT_TRUE(c1->WriteFileAt("/d/durable", AsBytes("safe"), root_).ok());
  ASSERT_TRUE(c1->SyncAll().ok());

  // A create whose journal never committed (running txn only).
  OpenOptions create;
  create.write = true;
  create.create = true;
  auto fd = c1->Open("/d/volatile", create, root_);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(c1->Write(*fd, 0, AsBytes("gone")).ok());
  // No fsync. Crash immediately (before the 20 ms background commit).
  c1->CrashHard();

  SleepFor(LeasePeriod() + Millis(100));
  auto c2 = cluster_->AddClient("recoverer").value();
  EXPECT_EQ(ToString(*c2->ReadWholeFile("/d/durable", root_)), "safe");
  // The unsynced file may or may not exist depending on commit timing, but
  // the file system is consistent: stat either succeeds or says ENOENT.
  auto st = c2->Stat("/d/volatile", root_);
  if (!st.ok()) {
    EXPECT_EQ(st.code(), Errc::kNoEnt);
  }
  auto entries = c2->ReadDir("/d", root_);
  ASSERT_TRUE(entries.ok());
  EXPECT_GE(entries->size(), 1u);
}

TEST_F(CrashTest, UnrelatedDirectoriesUnaffectedByRecovery) {
  auto c1 = cluster_->AddClient("crasher").value();
  auto c2 = cluster_->AddClient("bystander").value();
  ASSERT_TRUE(c1->Mkdir("/doomed", 0755, root_).ok());
  ASSERT_TRUE(c2->Mkdir("/healthy", 0755, root_).ok());
  ASSERT_TRUE(c1->WriteFileAt("/doomed/f", AsBytes("x"), root_).ok());
  // Both mkdirs live in the ROOT journal, led by c1: flush it so /healthy
  // exists durably before c1 takes the root journal down with it.
  ASSERT_TRUE(c1->SyncAll().ok());
  c1->CrashHard();

  // The bystander keeps working in its own directory throughout.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        c2->WriteFileAt("/healthy/f" + std::to_string(i), AsBytes("y"), root_)
            .ok());
  }
  EXPECT_EQ(c2->ReadDir("/healthy", root_)->size(), 10u);
}

TEST_F(CrashTest, LeaseManagerRestartRecovers) {
  auto c1 = cluster_->AddClient("worker").value();
  ASSERT_TRUE(c1->Mkdir("/before", 0755, root_).ok());

  cluster_->lease_manager().Restart();  // crash + restart, state lost

  // After the quiet period, normal operation resumes; leases are re-acquired
  // and no metadata was lost (it lives in the object store + journals).
  ASSERT_TRUE(c1->WriteFileAt("/before/f", AsBytes("alive"), root_).ok());
  EXPECT_EQ(ToString(*c1->ReadWholeFile("/before/f", root_)), "alive");
}

TEST_F(CrashTest, RecoveryReplaysRenameTwoPhaseCommit) {
  auto c1 = cluster_->AddClient("crasher").value();
  ASSERT_TRUE(c1->Mkdir("/src", 0755, root_).ok());
  ASSERT_TRUE(c1->Mkdir("/dst", 0755, root_).ok());
  ASSERT_TRUE(c1->WriteFileAt("/src/file", AsBytes("moving"), root_).ok());
  ASSERT_TRUE(c1->SyncAll().ok());
  // Cross-directory rename commits its 2PC durably, then crash before the
  // checkpoint can run.
  ASSERT_TRUE(c1->Rename("/src/file", "/dst/file", root_).ok());
  c1->CrashHard();

  SleepFor(LeasePeriod() + Millis(100));
  auto c2 = cluster_->AddClient("recoverer").value();
  EXPECT_EQ(c2->Stat("/src/file", root_).code(), Errc::kNoEnt);
  auto data = c2->ReadWholeFile("/dst/file", root_);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "moving");
}

TEST_F(CrashTest, LeaderLosesLeaseMidBurst) {
  auto c1 = cluster_->AddClient("leader").value();
  ASSERT_TRUE(c1->Mkdir("/burst", 0755, root_).ok());
  OpenOptions create;
  create.write = true;
  create.create = true;
  constexpr int kAcked = 6;
  for (int i = 0; i < kAcked; ++i) {
    auto fd = c1->Open("/burst/f" + std::to_string(i), create, root_);
    ASSERT_TRUE(fd.ok()) << i;
    ASSERT_TRUE(c1->Write(*fd, 0, AsBytes("acked-" + std::to_string(i))).ok());
    ASSERT_TRUE(c1->Fsync(*fd).ok());  // journal-committed: must survive
    ASSERT_TRUE(c1->Close(*fd).ok());
  }

  // The lease manager dies mid-burst. The lease itself is still valid, so
  // the leader keeps running — until proactive renewal starts failing.
  cluster_->lease_manager().Stop();
  SleepFor(LeasePeriod() * 4 / 5);  // into the proactive-renewal window

  // Lame duck: renewal fails while the lease is unexpired. New mutations
  // must be fenced with kStale (a successor could be elected any moment and
  // would never learn about them)...
  auto fenced = c1->Open("/burst/rejected", create, root_);
  ASSERT_FALSE(fenced.ok());
  EXPECT_EQ(fenced.code(), Errc::kStale);
  // ...while reads keep being served from the in-memory metatable.
  auto dir = c1->ReadDir("/burst", root_);
  ASSERT_TRUE(dir.ok());
  EXPECT_EQ(dir->size(), static_cast<std::size_t>(kAcked));

  c1->CrashHard();

  // Manager comes back with all lease state lost (crash-restart semantics);
  // wait out the quiet period plus the dead leader's lease.
  cluster_->lease_manager().Restart();
  ASSERT_TRUE(cluster_->lease_manager().Start().ok());
  SleepFor(LeasePeriod() + Millis(100));

  // The successor finds the journal and replays it: zero acked ops lost,
  // and the fenced create never happened.
  auto c2 = cluster_->AddClient("successor").value();
  auto entries = c2->ReadDir("/burst", root_);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), static_cast<std::size_t>(kAcked));
  for (int i = 0; i < kAcked; ++i) {
    auto data = c2->ReadWholeFile("/burst/f" + std::to_string(i), root_);
    ASSERT_TRUE(data.ok()) << i;
    EXPECT_EQ(ToString(*data), "acked-" + std::to_string(i));
  }
  EXPECT_EQ(c2->Stat("/burst/rejected", root_).code(), Errc::kNoEnt);
  EXPECT_GT(c2->stats().recoveries, 0u);
}

TEST_F(CrashTest, LegacyLayoutDirSurvivesCrashAndMigrates) {
  // A directory from a pre-sharding FS image (unsharded "e<uuid>" block on
  // the store): a leader must bootstrap it, serve acked mutations, and after
  // a hard crash the successor must replay the journal over the legacy block
  // — migrating to the sharded layout along the way — with zero acked ops
  // lost.
  auto c1 = cluster_->AddClient("settler").value();
  ASSERT_TRUE(c1->Mkdir("/old", 0755, root_).ok());
  ASSERT_TRUE(c1->WriteFileAt("/old/settled", AsBytes("v1"), root_).ok());
  ASSERT_TRUE(c1->SyncAll().ok());
  auto st = c1->Stat("/old", root_);
  ASSERT_TRUE(st.ok());
  const Uuid old_ino = st->ino;
  // Clean shutdown: checkpoints everything and releases the leases, leaving
  // the directory fully materialized in its dentry objects.
  ASSERT_TRUE(c1->Shutdown().ok());

  // Rewrite the directory's on-store layout back to the legacy format, as a
  // file system written before sharding existed would have left it.
  {
    Prt prt(store_);
    auto entries = prt.LoadDentries(old_ino);
    ASSERT_TRUE(entries.ok());
    ASSERT_EQ(entries->size(), 1u);
    ASSERT_TRUE(prt.DeleteDentryObjects(old_ino).ok());
    ASSERT_TRUE(prt.StoreDentryBlock(old_ino, *entries).ok());
    ASSERT_EQ(prt.LoadDentryManifest(old_ino).code(), Errc::kNoEnt);
  }

  // A new leader bootstraps the legacy directory and serves acked creates.
  auto c2 = cluster_->AddClient("crasher").value();
  OpenOptions create;
  create.write = true;
  create.create = true;
  for (int i = 0; i < 5; ++i) {
    auto fd = c2->Open("/old/acked" + std::to_string(i), create, root_);
    ASSERT_TRUE(fd.ok()) << i;
    ASSERT_TRUE(c2->Write(*fd, 0, AsBytes("acked")).ok());
    ASSERT_TRUE(c2->Fsync(*fd).ok());
    ASSERT_TRUE(c2->Close(*fd).ok());
  }
  c2->CrashHard();
  SleepFor(LeasePeriod() + Millis(100));

  auto c3 = cluster_->AddClient("recoverer").value();
  auto entries = c3->ReadDir("/old", root_);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 6u);  // settled + 5 acked
  EXPECT_EQ(ToString(*c3->ReadWholeFile("/old/settled", root_)), "v1");
  for (int i = 0; i < 5; ++i) {
    auto data = c3->ReadWholeFile("/old/acked" + std::to_string(i), root_);
    ASSERT_TRUE(data.ok()) << i;
    EXPECT_EQ(ToString(*data), "acked");
  }
  EXPECT_GT(c3->stats().recoveries, 0u);

  // Recovery's checkpoint migrated the directory: the manifest is now the
  // layout authority and the legacy block is gone.
  Prt prt(store_);
  auto manifest = prt.LoadDentryManifest(old_ino);
  ASSERT_TRUE(manifest.ok());
  EXPECT_GE(manifest->shard_count, 1u);
  EXPECT_EQ(prt.store().Head(DentryKey(old_ino)).code(), Errc::kNoEnt);
}

TEST_F(CrashTest, DeposedEpochGrantFencedAtJournalCommit) {
  // Split brain at the journal layer: two JournalManagers over one store
  // model a deposed leader (grant from epoch 1) and its successor (epoch 2).
  // The epoch-1 commit that races the takeover must be rejected kStale and
  // never acked; everything acked BEFORE the fence advanced must be replayed
  // by the successor.
  auto prt = std::make_shared<Prt>(store_);
  const Uuid dir = DeterministicUuid(3, 3);
  ASSERT_TRUE(
      prt->StoreInode(MakeInode(dir, FileType::kDirectory, 0755, 0, 0, kRootIno))
          .ok());
  ASSERT_TRUE(prt->StoreDentryManifest(dir, DentryManifest{}).ok());

  journal::JournalManager deposed(prt, journal::JournalConfig::ForTests());
  journal::JournalManager successor(prt, journal::JournalConfig::ForTests());
  const FenceToken old_token{1, 1};
  const FenceToken new_token{2, 1};

  // Old leader fences the directory and commits one acked transaction.
  ASSERT_TRUE(deposed.FenceDir(dir, old_token).ok());
  deposed.RegisterDir(dir, old_token);
  (void)deposed.Append(dir, {journal::Record::DentryAdd(
                     Dentry{"acked", DeterministicUuid(3, 4)})});
  ASSERT_TRUE(deposed.CommitDir(dir).ok());

  // Failover: the successor advances the fence BEFORE touching the journal
  // (the BecomeLeader ordering). From here on the old grant is dead.
  ASSERT_TRUE(successor.FenceDir(dir, new_token).ok());

  // The deposed leader's in-flight commit is refused at the store and never
  // acked.
  (void)deposed.Append(dir, {journal::Record::DentryAdd(
                     Dentry{"lost", DeterministicUuid(3, 5)})});
  EXPECT_EQ(deposed.CommitDir(dir).code(), Errc::kStale);
  EXPECT_GE(deposed.metrics().fence_rejections.value(), 1u);
  EXPECT_EQ(deposed.metrics().fence_violations.value(), 0u);
  // Re-fencing with the stale token is just as dead.
  EXPECT_EQ(deposed.FenceDir(dir, old_token).code(), Errc::kStale);

  // The successor replays exactly the acked transaction.
  successor.RegisterDir(dir, new_token);
  auto report = successor.RecoverDir(dir);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->transactions_replayed, 1u);
  auto entries = prt->LoadDentries(dir);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "acked");
}

TEST_F(CrashTest, FencedWritesRedrivenUnderSuccessorEpoch) {
  // Full stack: the active lease-manager replica dies mid-burst; the client
  // rides the failover, reacquires under the bumped epoch, and every acked
  // write survives into the new epoch with zero fence violations.
  auto store = std::make_shared<MemoryObjectStore>();
  auto options = ArkFsClusterOptions::ForTests();
  options.lease_replicas = 3;
  auto cluster = ArkFsCluster::Create(store, options).value();
  const Nanos lease = cluster->lease_manager().config().lease_period;

  auto c1 = cluster->AddClient("writer").value();
  ASSERT_TRUE(c1->Mkdir("/ha", 0755, root_).ok());
  ASSERT_TRUE(c1->WriteFileAt("/ha/acked0", AsBytes("pre"), root_).ok());
  ASSERT_TRUE(c1->SyncAll().ok());

  const int active = cluster->ActiveLeaseReplica();
  ASSERT_GE(active, 0);
  ASSERT_TRUE(cluster->KillLeaseReplica(active).ok());

  // Wait for a standby to take over under a bumped epoch.
  const TimePoint deadline = Now() + Seconds(3);
  while (cluster->ActiveLeaseReplica() < 0 && Now() < deadline) {
    SleepFor(Millis(5));
  }
  const int successor = cluster->ActiveLeaseReplica();
  ASSERT_GE(successor, 0);
  ASSERT_NE(successor, active);
  EXPECT_GE(cluster->lease_manager(successor).epoch(), 2u);

  // Ride out the quiet period + the old lease, then write through the new
  // epoch. RunDirOp absorbs the kStale/kBusy churn of the reacquisition.
  SleepFor(lease + Millis(50));
  ASSERT_TRUE(c1->WriteFileAt("/ha/acked1", AsBytes("post"), root_).ok());
  ASSERT_TRUE(c1->SyncAll().ok());

  // A fresh client sees both writes; nobody ever observed a fence violation.
  auto c2 = cluster->AddClient("reader").value();
  EXPECT_EQ(ToString(*c2->ReadWholeFile("/ha/acked0", root_)), "pre");
  EXPECT_EQ(ToString(*c2->ReadWholeFile("/ha/acked1", root_)), "post");
  for (const auto& client : cluster->clients()) {
    EXPECT_EQ(client->journal_metrics().fence_violations.value(), 0u);
  }
}

TEST_F(CrashTest, RevivedLeaseReplicaIsAmnesiac) {
  // Revive must model a crash-restart, not a pause: the revived replica is a
  // fresh process over the shared store. Even if it wins its role back
  // before any standby notices the outage, it may only resume under a
  // bumped, persisted epoch — resuming at the old epoch with a reset grant
  // counter would re-mint the tokens its previous life handed out.
  auto store = std::make_shared<MemoryObjectStore>();
  auto options = ArkFsClusterOptions::ForTests();
  options.lease_replicas = 3;
  auto cluster = ArkFsCluster::Create(store, options).value();

  const int active = cluster->ActiveLeaseReplica();
  ASSERT_GE(active, 0);
  const std::uint64_t before = cluster->lease_manager(active).epoch();

  ASSERT_TRUE(cluster->KillLeaseReplica(active).ok());
  ASSERT_TRUE(cluster->ReviveLeaseReplica(active).ok());

  const TimePoint deadline = Now() + Seconds(3);
  int now_active = cluster->ActiveLeaseReplica();
  while (now_active < 0 && Now() < deadline) {
    SleepFor(Millis(5));
    now_active = cluster->ActiveLeaseReplica();
  }
  ASSERT_GE(now_active, 0);
  // Whoever serves now — the revived replica or a standby that took over —
  // does so under a strictly newer epoch than the pre-crash tenure.
  EXPECT_GE(cluster->lease_manager(now_active).epoch(), before + 1);
}

// --- durability-mode x kill-point matrix (DESIGN.md §4.7) ---
//
// Each cell pins the documented loss window for one durability mode at one
// kill point. The invariant across every cell: an op whose ack implied
// durability is NEVER lost, and every lost op is one that was sequenced but
// not yet flushed (group/async) or never acked at all (sync).
class DurabilityMatrixTest
    : public ::testing::TestWithParam<journal::DurabilityMode> {
 protected:
  void SetUp() override {
    base_ = std::make_shared<MemoryObjectStore>();
    armed_ = std::make_shared<std::atomic<bool>>(false);
    // Armed: journal objects (keys "j<uuid>") reject writes, so nothing
    // sequenced after arming can reach durability until the store heals.
    // This freezes the instant between ack and flush that a real crash
    // would have to hit by luck.
    store_ = std::make_shared<FaultInjectionStore>(
        base_, [armed = armed_](std::string_view op, const std::string& key) {
          return armed->load() && op.substr(0, 3) == "put" && !key.empty() &&
                         key[0] == 'j'
                     ? Errc::kIo
                     : Errc::kOk;
        });
    auto options = ArkFsClusterOptions::ForTests();
    options.client_template.journal.durability = GetParam();
    cluster_ = ArkFsCluster::Create(store_, options).value();
  }

  Nanos LeasePeriod() {
    return cluster_->lease_manager().config().lease_period;
  }

  // Creates /d/f<i> for i in [lo, hi) and returns how many creates acked.
  int CreateFiles(const std::shared_ptr<Client>& c, int lo, int hi) {
    OpenOptions create;
    create.write = true;
    create.create = true;
    int acked = 0;
    for (int i = lo; i < hi; ++i) {
      auto fd = c->Open("/d/f" + std::to_string(i), create, root_);
      if (!fd.ok()) continue;
      EXPECT_TRUE(c->Write(*fd, 0, AsBytes("payload")).ok());
      EXPECT_TRUE(c->Close(*fd).ok());
      ++acked;
    }
    return acked;
  }

  // Recover after a hard crash and assert /d holds EXACTLY f<i> for
  // i in [0, survivors) — the loss boundary, not just a lower bound.
  void ExpectExactlySurvivors(int survivors) {
    SleepFor(LeasePeriod() + Millis(100));
    auto c = cluster_->AddClient("recoverer").value();
    auto entries = c->ReadDir("/d", root_);
    ASSERT_TRUE(entries.ok());
    EXPECT_EQ(entries->size(), static_cast<std::size_t>(survivors));
    for (int i = 0; i < survivors; ++i) {
      auto data = c->ReadWholeFile("/d/f" + std::to_string(i), root_);
      ASSERT_TRUE(data.ok()) << "durable f" << i << " lost";
      EXPECT_EQ(ToString(*data), "payload");
    }
    EXPECT_EQ(c->Stat("/d/f" + std::to_string(survivors), root_).code(),
              Errc::kNoEnt);
    EXPECT_EQ(c->journal_metrics().fence_violations.value(), 0u);
  }

  ObjectStorePtr base_;
  std::shared_ptr<std::atomic<bool>> armed_;
  ObjectStorePtr store_;
  std::unique_ptr<ArkFsCluster> cluster_;
  UserCred root_ = UserCred::Root();
};

TEST_P(DurabilityMatrixTest, KillBeforeSequencingLosesNothing) {
  auto c1 = cluster_->AddClient("crasher").value();
  ASSERT_TRUE(c1->Mkdir("/d", 0755, root_).ok());
  ASSERT_EQ(CreateFiles(c1, 0, 5), 5);
  ASSERT_TRUE(c1->SyncAll().ok());
  // The crash lands before f5..f9 are ever submitted: no mode may lose any
  // of the durable base, and nothing else ever entered the pipeline.
  c1->CrashHard();
  ExpectExactlySurvivors(5);
}

TEST_P(DurabilityMatrixTest, KillAfterAckBeforeFlushLosesExactlyTheWindow) {
  auto c1 = cluster_->AddClient("crasher").value();
  ASSERT_TRUE(c1->Mkdir("/d", 0755, root_).ok());
  ASSERT_EQ(CreateFiles(c1, 0, 5), 5);
  ASSERT_TRUE(c1->SyncAll().ok());  // f0..f4 are durable in every mode

  armed_->store(true);  // journal flushes now fail: acks cannot be backed
  const int acked = CreateFiles(c1, 5, 10);
  if (GetParam() == journal::DurabilityMode::kSync) {
    // Sync acks only after the commit: with the journal unwritable the ops
    // FAIL instead of acking, so the loss window is empty by construction.
    EXPECT_EQ(acked, 0);
  } else {
    // Group acks on sequence, async on buffer: all five ops ack while the
    // dirty window holds them.
    EXPECT_EQ(acked, 5);
  }
  c1->CrashHard();
  armed_->store(false);  // the store heals for the successor

  // Every cell converges to the same boundary: the durable base survives,
  // the sequenced-but-unflushed tail is the loss window (empty for sync —
  // those ops were never acked).
  ExpectExactlySurvivors(5);
}

TEST_P(DurabilityMatrixTest, FailedCommitNeverDivergesMemoryFromJournal) {
  // Regression: an op whose journal commit fails transiently leaves its
  // records sequenced (commit unwind) and a later drain redrives them
  // durable — so the leader's in-memory metatable must already reflect the
  // op when Append returns, success or not. LeaderUnlink once erased the
  // dentry only AFTER a successful Append: on a sync-mode IO error the
  // journal would eventually record an unlink the live leader still served,
  // and recovery would drop a dentry the tenure never stopped serving.
  auto c1 = cluster_->AddClient("crasher").value();
  ASSERT_TRUE(c1->Mkdir("/d", 0755, root_).ok());
  ASSERT_EQ(CreateFiles(c1, 0, 3), 3);
  ASSERT_TRUE(c1->SyncAll().ok());

  armed_->store(true);  // journal writes fail: sync-mode unlink errors out
  const Status unlinked = c1->Unlink("/d/f1", root_);
  if (GetParam() == journal::DurabilityMode::kSync) {
    EXPECT_FALSE(unlinked.ok());
  } else {
    EXPECT_TRUE(unlinked.ok());  // acked on sequence; flush is deferred
  }
  // Whatever the caller was told, the LIVE leader's view must match what
  // the sequenced records will (re)drive into the journal: f1 is gone.
  auto live = c1->ReadDir("/d", root_);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live->size(), 2u);
  EXPECT_EQ(c1->Stat("/d/f1", root_).code(), Errc::kNoEnt);

  armed_->store(false);  // store heals: the unwound records redrive
  ASSERT_TRUE(c1->SyncAll().ok());
  c1->CrashHard();

  // Recovery agrees with the live view the tenure served all along.
  SleepFor(LeasePeriod() + Millis(100));
  auto c2 = cluster_->AddClient("recoverer").value();
  auto entries = c2->ReadDir("/d", root_);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
  EXPECT_EQ(c2->Stat("/d/f1", root_).code(), Errc::kNoEnt);
  for (int i : {0, 2}) {
    auto data = c2->ReadWholeFile("/d/f" + std::to_string(i), root_);
    ASSERT_TRUE(data.ok()) << "f" << i << " lost";
    EXPECT_EQ(ToString(*data), "payload");
  }
  EXPECT_EQ(c2->journal_metrics().fence_violations.value(), 0u);
}

TEST_P(DurabilityMatrixTest, KillAfterFlushLosesNothing) {
  auto c1 = cluster_->AddClient("crasher").value();
  ASSERT_TRUE(c1->Mkdir("/d", 0755, root_).ok());
  ASSERT_EQ(CreateFiles(c1, 0, 10), 10);
  // SyncAll is the forced drain: after it returns, every mode has pushed
  // the whole dirty window to the journal objects.
  ASSERT_TRUE(c1->SyncAll().ok());
  c1->CrashHard();
  ExpectExactlySurvivors(10);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, DurabilityMatrixTest,
    ::testing::Values(journal::DurabilityMode::kSync,
                      journal::DurabilityMode::kGroup,
                      journal::DurabilityMode::kAsync),
    [](const ::testing::TestParamInfo<journal::DurabilityMode>& info) {
      return std::string(journal::DurabilityModeName(info.param));
    });

TEST_F(CrashTest, RepeatedCrashesConverge) {
  for (int round = 0; round < 3; ++round) {
    auto c = cluster_->AddClient("round-" + std::to_string(round)).value();
    ASSERT_TRUE(c->MkdirAll("/persist", 0755, root_).ok());
    ASSERT_TRUE(c->WriteFileAt("/persist/r" + std::to_string(round),
                               AsBytes("data"), root_)
                    .ok());
    ASSERT_TRUE(c->SyncAll().ok());
    c->CrashHard();
    SleepFor(LeasePeriod() + Millis(100));
  }
  auto survivor = cluster_->AddClient("survivor").value();
  auto entries = survivor->ReadDir("/persist", root_);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 3u);
}

}  // namespace
}  // namespace arkfs
