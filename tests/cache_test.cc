// Tests for the data object cache: write-back, read-ahead, LRU, truncate.
#include <gtest/gtest.h>

#include <atomic>

#include "cache/object_cache.h"
#include "objstore/memory_store.h"
#include "objstore/wrappers.h"

namespace arkfs {
namespace {

class CacheTest : public ::testing::Test {
 protected:
  CacheTest() {
    auto base = std::make_shared<MemoryObjectStore>();
    counting_ = std::make_shared<CountingStore>(base);
    prt_ = std::make_shared<Prt>(counting_, 4096);
    config_ = CacheConfig::ForTests();  // 4096-byte entries, 16 max
    cache_ = std::make_unique<ObjectCache>(prt_, config_);
    ino_ = DeterministicUuid(5, 5);
  }

  Bytes Pattern(std::size_t n, int seed = 0) {
    Bytes b(n);
    for (std::size_t i = 0; i < n; ++i) {
      b[i] = static_cast<std::uint8_t>((i * 7 + seed) & 0xFF);
    }
    return b;
  }

  std::shared_ptr<CountingStore> counting_;
  std::shared_ptr<Prt> prt_;
  CacheConfig config_;
  std::unique_ptr<ObjectCache> cache_;
  Uuid ino_;
};

TEST_F(CacheTest, WriteBackIsDeferredUntilFlush) {
  Bytes data = Pattern(100);
  ASSERT_TRUE(cache_->Write(ino_, 0, 0, data).ok());
  EXPECT_EQ(counting_->Snapshot().puts, 0u);  // nothing written yet
  ASSERT_TRUE(cache_->FlushFile(ino_).ok());
  EXPECT_GE(counting_->Snapshot().puts, 1u);
  auto from_store = prt_->ReadData(ino_, 0, 100, 100);
  ASSERT_TRUE(from_store.ok());
  EXPECT_EQ(*from_store, data);
}

TEST_F(CacheTest, ReadServesFromCacheAfterLoad) {
  Bytes data = Pattern(4096);
  ASSERT_TRUE(prt_->WriteData(ino_, 0, data).ok());
  auto first = cache_->Read(ino_, 4096, 0, 4096);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, data);
  const auto gets_after_first = counting_->Snapshot().gets;
  auto second = cache_->Read(ino_, 4096, 0, 4096);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(counting_->Snapshot().gets, gets_after_first);  // pure cache hit
  EXPECT_GT(cache_->stats().hits, 0u);
}

TEST_F(CacheTest, ReadYourOwnWriteBeforeFlush) {
  Bytes data = Pattern(300, 3);
  ASSERT_TRUE(cache_->Write(ino_, 0, 1000, data).ok());
  auto read = cache_->Read(ino_, 1300, 1000, 300);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_F(CacheTest, PartialEntryWriteMergesWithStoreData) {
  // Pre-existing store data, then a small cached overwrite in the middle.
  ASSERT_TRUE(prt_->WriteData(ino_, 0, Bytes(4096, 0xAA)).ok());
  ASSERT_TRUE(cache_->Write(ino_, 4096, 100, Bytes(8, 0xBB)).ok());
  auto read = cache_->Read(ino_, 4096, 96, 16);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ((*read)[0], 0xAA);
  EXPECT_EQ((*read)[4], 0xBB);
  EXPECT_EQ((*read)[12], 0xAA);
  ASSERT_TRUE(cache_->FlushFile(ino_).ok());
  auto from_store = prt_->ReadData(ino_, 100, 8, 4096);
  EXPECT_EQ(*from_store, Bytes(8, 0xBB));
}

TEST_F(CacheTest, EvictionFlushesDirtyEntries) {
  // Write 32 entries through a 16-entry cache: evictions must write back.
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(cache_->Write(ino_, static_cast<std::uint64_t>(i) * 4096,
                              static_cast<std::uint64_t>(i) * 4096,
                              Pattern(4096, i))
                    .ok());
  }
  EXPECT_LE(cache_->entry_count(), config_.max_entries + 1);
  EXPECT_GT(cache_->stats().evictions, 0u);
  ASSERT_TRUE(cache_->FlushFile(ino_).ok());
  for (int i = 0; i < 32; ++i) {
    auto data = prt_->ReadData(ino_, static_cast<std::uint64_t>(i) * 4096,
                               4096, 32 * 4096);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(*data, Pattern(4096, i)) << "entry " << i;
  }
}

TEST_F(CacheTest, SequentialReadTriggersReadAhead) {
  const std::uint64_t file_size = 16 * 4096;
  ASSERT_TRUE(prt_->WriteData(ino_, 0, Pattern(file_size)).ok());
  // Read from offset 0: window jumps to max (paper's optimization), so
  // read-ahead loads should be recorded.
  ASSERT_TRUE(cache_->Read(ino_, file_size, 0, 4096).ok());
  // Give the async loader a moment.
  for (int i = 0; i < 100 && cache_->stats().readahead_loads == 0; ++i) {
    SleepFor(Millis(2));
  }
  EXPECT_GT(cache_->stats().readahead_loads, 0u);
}

TEST_F(CacheTest, RandomReadsDoNotReadAhead) {
  const std::uint64_t file_size = 64 * 4096;
  ASSERT_TRUE(prt_->WriteData(ino_, 0, Pattern(file_size)).ok());
  // Jump around (never sequential, never offset 0).
  for (std::uint64_t off : {5u * 4096, 20u * 4096, 9u * 4096}) {
    ASSERT_TRUE(cache_->Read(ino_, file_size, off, 100).ok());
  }
  EXPECT_EQ(cache_->stats().readahead_loads, 0u);
}

TEST_F(CacheTest, ReadAheadWindowDoublesOnSequentialAccess) {
  const std::uint64_t file_size = 64 * 4096;
  ASSERT_TRUE(prt_->WriteData(ino_, 0, Pattern(file_size)).ok());
  // Start sequential at a non-zero offset: window starts at initial and
  // doubles; eventually read-ahead kicks in.
  std::uint64_t off = 4096;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(cache_->Read(ino_, file_size, off, 4096).ok());
    off += 4096;
  }
  EXPECT_GT(cache_->stats().readahead_loads, 0u);
}

TEST_F(CacheTest, DropFileForgetsCleanAndFlushesDirty) {
  ASSERT_TRUE(cache_->Write(ino_, 0, 0, Pattern(100)).ok());
  ASSERT_TRUE(cache_->DropFile(ino_, /*flush_dirty=*/true).ok());
  EXPECT_EQ(cache_->entry_count(), 0u);
  auto from_store = prt_->ReadData(ino_, 0, 100, 100);
  ASSERT_TRUE(from_store.ok());
  EXPECT_EQ(*from_store, Pattern(100));
}

TEST_F(CacheTest, TruncateDiscardsTailEntries) {
  ASSERT_TRUE(cache_->Write(ino_, 0, 0, Pattern(3 * 4096)).ok());
  cache_->TruncateFile(ino_, 4096 + 100);
  // Only the first entry (trimmed) may remain dirty; flush and verify size.
  ASSERT_TRUE(cache_->FlushFile(ino_).ok());
  auto read = cache_->Read(ino_, 4096 + 100, 4096, 200);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 100u);
}

TEST_F(CacheTest, HolesReadAsZeros) {
  ASSERT_TRUE(cache_->Write(ino_, 0, 2 * 4096, Pattern(10)).ok());
  auto read = cache_->Read(ino_, 2 * 4096 + 10, 0, 4096);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, Bytes(4096, 0));
}

TEST_F(CacheTest, FlushAllCoversMultipleFiles) {
  const Uuid other = DeterministicUuid(6, 6);
  ASSERT_TRUE(cache_->Write(ino_, 0, 0, Pattern(10, 1)).ok());
  ASSERT_TRUE(cache_->Write(other, 0, 0, Pattern(10, 2)).ok());
  ASSERT_TRUE(cache_->FlushAll().ok());
  EXPECT_EQ(*prt_->ReadData(ino_, 0, 10, 10), Pattern(10, 1));
  EXPECT_EQ(*prt_->ReadData(other, 0, 10, 10), Pattern(10, 2));
}

TEST_F(CacheTest, WriteBeyondEofDoesNotLoadFromStore) {
  counting_->Reset();
  // Entry starts beyond current file size: no read-modify-write needed.
  ASSERT_TRUE(cache_->Write(ino_, 0, 0, Pattern(4096)).ok());
  EXPECT_EQ(counting_->Snapshot().gets, 0u);
}

// --- writeback retention under store faults ---
//
// A failed writeback must surface the error AND keep the entry dirty, so a
// later flush (fsync retry, eviction, shutdown) still carries the data. Data
// acked only into the cache may not be silently dropped by a transient store
// fault.

TEST(CacheWritebackRetryTest, FlushFileRetainsDirtyUntilStoreHeals) {
  auto base = std::make_shared<MemoryObjectStore>();
  std::atomic<int> put_failures_left{3};
  auto faulty = std::make_shared<FaultInjectionStore>(
      base, [&](std::string_view op, const std::string&) {
        if (op.starts_with("put") &&
            put_failures_left.fetch_sub(1, std::memory_order_relaxed) > 0) {
          return Errc::kIo;
        }
        return Errc::kOk;
      });
  auto prt = std::make_shared<Prt>(faulty, 4096);
  ObjectCache cache(prt, CacheConfig::ForTests());
  const Uuid ino = DeterministicUuid(7, 7);

  Bytes data(100);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 13);
  }
  ASSERT_TRUE(cache.Write(ino, 0, 0, data).ok());

  // While the store faults, every flush fails but the entry stays dirty.
  EXPECT_FALSE(cache.FlushFile(ino).ok());
  EXPECT_TRUE(cache.HasDirty(ino));

  // The fault clears after three attempts; re-driving the flush must then
  // write back the retained bytes without the caller re-writing anything.
  Status st;
  for (int attempt = 0; attempt < 8 && !(st = cache.FlushFile(ino)).ok();
       ++attempt) {
  }
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(cache.HasDirty(ino));
  auto from_store = prt->ReadData(ino, 0, 100, 100);
  ASSERT_TRUE(from_store.ok());
  EXPECT_EQ(*from_store, data);
}

TEST(CacheWritebackRetryTest, FlushAllRetainsDirtyAcrossFiles) {
  auto base = std::make_shared<MemoryObjectStore>();
  std::atomic<bool> fail_puts{true};
  auto faulty = std::make_shared<FaultInjectionStore>(
      base, [&](std::string_view op, const std::string&) {
        return (fail_puts && op.starts_with("put")) ? Errc::kIo : Errc::kOk;
      });
  auto prt = std::make_shared<Prt>(faulty, 4096);
  ObjectCache cache(prt, CacheConfig::ForTests());
  const Uuid a = DeterministicUuid(8, 8);
  const Uuid b = DeterministicUuid(9, 9);
  ASSERT_TRUE(cache.Write(a, 0, 0, Bytes(64, 0xA1)).ok());
  ASSERT_TRUE(cache.Write(b, 0, 0, Bytes(64, 0xB2)).ok());

  EXPECT_FALSE(cache.FlushAll().ok());
  EXPECT_TRUE(cache.HasDirty(a));
  EXPECT_TRUE(cache.HasDirty(b));

  fail_puts = false;
  ASSERT_TRUE(cache.FlushAll().ok());
  EXPECT_FALSE(cache.HasDirty(a));
  EXPECT_FALSE(cache.HasDirty(b));
  EXPECT_EQ(*prt->ReadData(a, 0, 64, 64), Bytes(64, 0xA1));
  EXPECT_EQ(*prt->ReadData(b, 0, 64, 64), Bytes(64, 0xB2));
}

}  // namespace
}  // namespace arkfs
