// Tests for journal records, framing, the journal manager, 2PC and recovery.
#include <gtest/gtest.h>

#include "journal/journal.h"
#include "journal/record.h"
#include "objstore/memory_store.h"

namespace arkfs::journal {
namespace {

Inode TestInode(std::uint64_t n, Uuid parent = kRootIno) {
  Inode i = MakeInode(DeterministicUuid(100, n), FileType::kRegular, 0644, 1,
                      1, parent);
  i.size = n * 10;
  return i;
}

TEST(RecordTest, AllTypesRoundTrip) {
  std::vector<Record> records;
  records.push_back(Record::InodeUpsert(TestInode(1)));
  records.push_back(Record::InodeRemove(DeterministicUuid(1, 2), 4096, 1024));
  records.push_back(
      Record::DentryAdd({"name.txt", DeterministicUuid(1, 3), FileType::kRegular}));
  records.push_back(Record::DentryRemove("gone.txt"));
  records.push_back(Record::DirRemove(DeterministicUuid(1, 4)));
  records.push_back(
      Record::Prepare(DeterministicUuid(1, 5), DeterministicUuid(1, 6)));
  records.push_back(Record::Decision(DeterministicUuid(1, 5), true));

  Encoder enc;
  for (const auto& r : records) r.EncodeTo(enc);
  Decoder dec(enc.buffer());
  for (const auto& expected : records) {
    auto got = Record::DecodeFrom(dec);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->type, expected.type);
  }
  EXPECT_TRUE(dec.done());
}

TEST(RecordTest, TransactionFramingRoundTrip) {
  Transaction txn;
  txn.seq = 42;
  txn.records.push_back(Record::DentryRemove("x"));
  txn.records.push_back(Record::InodeUpsert(TestInode(7)));

  const Bytes framed = EncodeTransaction(txn);
  auto parsed = ParseJournal(framed);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].seq, 42u);
  EXPECT_EQ(parsed[0].records.size(), 2u);
}

TEST(RecordTest, TornTailIsDiscarded) {
  Transaction a;
  a.seq = 1;
  a.records.push_back(Record::DentryRemove("a"));
  Transaction b;
  b.seq = 2;
  b.records.push_back(Record::DentryRemove("b"));

  Bytes journal = EncodeTransaction(a);
  Bytes second = EncodeTransaction(b);
  // Simulate a crash mid-append: only half of txn b made it.
  journal.insert(journal.end(), second.begin(),
                 second.begin() + second.size() / 2);
  auto parsed = ParseJournal(journal);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].seq, 1u);
}

TEST(RecordTest, CorruptPayloadIsDiscarded) {
  Transaction a;
  a.seq = 1;
  a.records.push_back(Record::DentryRemove("victim"));
  Bytes journal = EncodeTransaction(a);
  journal[journal.size() / 2] ^= 0xFF;  // flip a payload bit
  EXPECT_TRUE(ParseJournal(journal).empty());
}

TEST(RecordTest, EmptyJournalParsesEmpty) {
  EXPECT_TRUE(ParseJournal({}).empty());
  Bytes garbage{1, 2, 3, 4, 5};
  EXPECT_TRUE(ParseJournal(garbage).empty());
}

class JournalManagerTest : public ::testing::Test {
 protected:
  JournalManagerTest()
      : store_(std::make_shared<MemoryObjectStore>()),
        prt_(std::make_shared<Prt>(store_)),
        manager_(std::make_unique<JournalManager>(prt_,
                                                  JournalConfig::ForTests())) {
    dir_ = DeterministicUuid(7, 7);
    Inode dir_inode =
        MakeInode(dir_, FileType::kDirectory, 0755, 0, 0, kRootIno);
    EXPECT_TRUE(prt_->StoreInode(dir_inode).ok());
    manager_->RegisterDir(dir_);
  }

  ObjectStorePtr store_;
  std::shared_ptr<Prt> prt_;
  std::unique_ptr<JournalManager> manager_;
  Uuid dir_;
};

TEST_F(JournalManagerTest, FlushCheckpointsToAuthoritativeObjects) {
  Inode child = TestInode(1, dir_);
  manager_->Append(dir_, {Record::InodeUpsert(child),
                          Record::DentryAdd({"a", child.ino,
                                             FileType::kRegular})});
  ASSERT_TRUE(manager_->FlushDir(dir_).ok());

  auto inode = prt_->LoadInode(child.ino);
  ASSERT_TRUE(inode.ok());
  EXPECT_EQ(inode->size, child.size);
  auto block = prt_->LoadDentryBlock(dir_);
  ASSERT_TRUE(block.ok());
  ASSERT_EQ(block->size(), 1u);
  EXPECT_EQ((*block)[0].name, "a");
  // Checkpoint invalidated the journal.
  EXPECT_FALSE(manager_->HasSurvivingJournal(dir_));
  EXPECT_EQ(manager_->stats().transactions_checkpointed, 1u);
}

TEST_F(JournalManagerTest, BackgroundCommitEventuallyHappens) {
  manager_->Append(dir_, {Record::DentryAdd(
                             {"bg", DeterministicUuid(9, 9),
                              FileType::kRegular})});
  // Commit interval in ForTests() is 20 ms; wait for the background pass.
  for (int i = 0; i < 100 && manager_->stats().transactions_committed == 0;
       ++i) {
    SleepFor(Millis(10));
  }
  EXPECT_GE(manager_->stats().transactions_committed, 1u);
}

TEST_F(JournalManagerTest, CommitWithoutCheckpointLeavesJournal) {
  manager_->Append(dir_, {Record::DentryAdd(
                             {"pending", DeterministicUuid(3, 3),
                              FileType::kRegular})});
  ASSERT_TRUE(manager_->CommitDir(dir_).ok());
  EXPECT_TRUE(manager_->HasSurvivingJournal(dir_));
}

TEST_F(JournalManagerTest, RecoveryReplaysCommittedTransactions) {
  Inode child = TestInode(2, dir_);
  manager_->Append(dir_, {Record::InodeUpsert(child),
                          Record::DentryAdd({"crashy", child.ino,
                                             FileType::kRegular})});
  ASSERT_TRUE(manager_->CommitDir(dir_).ok());
  // Simulate crash: new manager (new client) over the same store.
  auto fresh = std::make_unique<JournalManager>(prt_, JournalConfig::ForTests());
  ASSERT_TRUE(fresh->HasSurvivingJournal(dir_));
  auto report = fresh->RecoverDir(dir_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->transactions_replayed, 1u);
  EXPECT_EQ(report->transactions_aborted, 0u);

  auto inode = prt_->LoadInode(child.ino);
  ASSERT_TRUE(inode.ok());
  auto block = prt_->LoadDentryBlock(dir_);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ((*block)[0].name, "crashy");
  EXPECT_FALSE(fresh->HasSurvivingJournal(dir_));
}

TEST_F(JournalManagerTest, RecoveryOfUnjournaledDirIsNoop) {
  auto report = manager_->RecoverDir(DeterministicUuid(55, 55));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->transactions_replayed, 0u);
}

TEST_F(JournalManagerTest, InodeRemoveDropsDataChunks) {
  Inode child = TestInode(3, dir_);
  const std::uint64_t chunk = prt_->chunk_size();
  ASSERT_TRUE(prt_->WriteData(child.ino, 0, Bytes(chunk * 2, 1)).ok());
  ASSERT_TRUE(prt_->StoreInode(child).ok());

  manager_->Append(dir_, {Record::InodeRemove(child.ino, chunk * 2, chunk)});
  ASSERT_TRUE(manager_->FlushDir(dir_).ok());
  EXPECT_EQ(prt_->LoadInode(child.ino).code(), Errc::kNoEnt);
  EXPECT_EQ(store_->Head(DataKey(child.ino, 0)).code(), Errc::kNoEnt);
  EXPECT_EQ(store_->Head(DataKey(child.ino, 1)).code(), Errc::kNoEnt);
}

TEST_F(JournalManagerTest, UnregisterFlushesAndDeletesJournal) {
  manager_->Append(dir_, {Record::DentryAdd(
                             {"final", DeterministicUuid(4, 4),
                              FileType::kRegular})});
  ASSERT_TRUE(manager_->UnregisterDir(dir_).ok());
  EXPECT_EQ(store_->Head(JournalKey(dir_)).code(), Errc::kNoEnt);
  auto block = prt_->LoadDentryBlock(dir_);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->size(), 1u);
}

// --- two-phase commit across directories ---

class CrossDirTest : public JournalManagerTest {
 protected:
  CrossDirTest() {
    dst_ = DeterministicUuid(8, 8);
    Inode dst_inode =
        MakeInode(dst_, FileType::kDirectory, 0755, 0, 0, kRootIno);
    EXPECT_TRUE(prt_->StoreInode(dst_inode).ok());
    manager_->RegisterDir(dst_);
    moved_ = TestInode(10, dir_);
    EXPECT_TRUE(prt_->StoreInode(moved_).ok());
    // Source starts with the dentry present.
    EXPECT_TRUE(prt_->StoreDentryBlock(
                    dir_, {{"moved", moved_.ino, FileType::kRegular}})
                    .ok());
  }

  std::vector<Record> SrcRecords() {
    return {Record::DentryRemove("moved")};
  }
  std::vector<Record> DstRecords() {
    Inode updated = moved_;
    updated.parent = dst_;
    return {Record::DentryAdd({"arrived", moved_.ino, FileType::kRegular}),
            Record::InodeUpsert(updated)};
  }

  Uuid dst_;
  Inode moved_;
};

TEST_F(CrossDirTest, CommittedRenameApplies) {
  ASSERT_TRUE(
      manager_->CommitCrossDir(dir_, SrcRecords(), dst_, DstRecords()).ok());
  ASSERT_TRUE(manager_->FlushDir(dir_).ok());
  ASSERT_TRUE(manager_->FlushDir(dst_).ok());

  EXPECT_TRUE(prt_->LoadDentryBlock(dir_)->empty());
  auto dst_block = prt_->LoadDentryBlock(dst_);
  ASSERT_EQ(dst_block->size(), 1u);
  EXPECT_EQ((*dst_block)[0].name, "arrived");
  EXPECT_EQ(prt_->LoadInode(moved_.ino)->parent, dst_);
}

TEST_F(CrossDirTest, RecoveryCommitsWhenBothDecisionsPresent) {
  ASSERT_TRUE(
      manager_->CommitCrossDir(dir_, SrcRecords(), dst_, DstRecords()).ok());
  // Crash before any checkpoint: replay both journals with a fresh manager.
  auto fresh = std::make_unique<JournalManager>(prt_, JournalConfig::ForTests());
  ASSERT_TRUE(fresh->RecoverDir(dir_).ok());
  ASSERT_TRUE(fresh->RecoverDir(dst_).ok());
  EXPECT_TRUE(prt_->LoadDentryBlock(dir_)->empty());
  EXPECT_EQ(prt_->LoadDentryBlock(dst_)->size(), 1u);
}

TEST_F(CrossDirTest, DanglingPrepareWithoutAnyDecisionAborts) {
  // Hand-craft the crash window: prepares are durable in both journals but
  // no decision was written anywhere (crash between phase 1 and phase 2).
  const Uuid txid = DeterministicUuid(77, 1);
  Transaction src_prep;
  src_prep.seq = 1;
  src_prep.records.push_back(Record::Prepare(txid, dst_));
  for (auto& r : SrcRecords()) src_prep.records.push_back(r);
  Transaction dst_prep;
  dst_prep.seq = 1;
  dst_prep.records.push_back(Record::Prepare(txid, dir_));
  for (auto& r : DstRecords()) dst_prep.records.push_back(r);
  ASSERT_TRUE(prt_->StoreJournal(dir_, EncodeTransaction(src_prep)).ok());
  ASSERT_TRUE(prt_->StoreJournal(dst_, EncodeTransaction(dst_prep)).ok());

  auto fresh = std::make_unique<JournalManager>(prt_, JournalConfig::ForTests());
  auto src_report = fresh->RecoverDir(dir_);
  ASSERT_TRUE(src_report.ok());
  EXPECT_EQ(src_report->transactions_aborted, 1u);
  auto dst_report = fresh->RecoverDir(dst_);
  ASSERT_TRUE(dst_report.ok());
  EXPECT_EQ(dst_report->transactions_aborted, 1u);

  // Presumed abort: the file stays in the source directory.
  EXPECT_EQ(prt_->LoadDentryBlock(dir_)->size(), 1u);
  EXPECT_TRUE(prt_->LoadDentryBlock(dst_)->empty());
}

TEST_F(CrossDirTest, PrepareWithPeerDecisionCommits) {
  // Crash after the decision reached only the destination journal; the
  // source recovery must consult the peer and commit.
  const Uuid txid = DeterministicUuid(77, 2);
  Transaction src_prep;
  src_prep.seq = 1;
  src_prep.records.push_back(Record::Prepare(txid, dst_));
  for (auto& r : SrcRecords()) src_prep.records.push_back(r);

  Transaction dst_prep;
  dst_prep.seq = 1;
  dst_prep.records.push_back(Record::Prepare(txid, dir_));
  for (auto& r : DstRecords()) dst_prep.records.push_back(r);
  Transaction dst_decision;
  dst_decision.seq = 2;
  dst_decision.records.push_back(Record::Decision(txid, true));

  ASSERT_TRUE(prt_->StoreJournal(dir_, EncodeTransaction(src_prep)).ok());
  Bytes dst_journal = EncodeTransaction(dst_prep);
  const Bytes decision_frame = EncodeTransaction(dst_decision);
  dst_journal.insert(dst_journal.end(), decision_frame.begin(),
                     decision_frame.end());
  ASSERT_TRUE(prt_->StoreJournal(dst_, dst_journal).ok());

  auto fresh = std::make_unique<JournalManager>(prt_, JournalConfig::ForTests());
  // Recover the source FIRST (it must look at the peer journal).
  auto src_report = fresh->RecoverDir(dir_);
  ASSERT_TRUE(src_report.ok());
  EXPECT_EQ(src_report->transactions_aborted, 0u);
  EXPECT_EQ(src_report->transactions_replayed, 1u);
  ASSERT_TRUE(fresh->RecoverDir(dst_).ok());

  EXPECT_TRUE(prt_->LoadDentryBlock(dir_)->empty());
  EXPECT_EQ(prt_->LoadDentryBlock(dst_)->size(), 1u);
}

TEST_F(CrossDirTest, SameDirRejected) {
  EXPECT_EQ(manager_->CommitCrossDir(dir_, {}, dir_, {}).code(), Errc::kInval);
}

TEST(JournalS3Test, AppendWorksOnWholeObjectStore) {
  // Whole-object backends append via read-modify-write.
  auto store = std::make_shared<MemoryObjectStore>(kDefaultMaxObjectSize,
                                                   /*partial=*/false);
  auto prt = std::make_shared<Prt>(store);
  JournalManager manager(prt, JournalConfig::ForTests());
  const Uuid dir = DeterministicUuid(91, 1);
  manager.RegisterDir(dir);
  manager.Append(dir, {Record::DentryAdd(
                          {"one", DeterministicUuid(91, 2), FileType::kRegular})});
  ASSERT_TRUE(manager.CommitDir(dir).ok());
  manager.Append(dir, {Record::DentryAdd(
                          {"two", DeterministicUuid(91, 3), FileType::kRegular})});
  ASSERT_TRUE(manager.CommitDir(dir).ok());
  auto raw = prt->LoadJournal(dir);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(ParseJournal(*raw).size(), 2u);
}

}  // namespace
}  // namespace arkfs::journal
