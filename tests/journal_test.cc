// Tests for journal records, framing, the journal manager, 2PC and recovery.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "journal/journal.h"
#include "journal/record.h"
#include "objstore/chaos_store.h"
#include "objstore/memory_store.h"
#include "objstore/wrappers.h"

namespace arkfs::journal {
namespace {

Inode TestInode(std::uint64_t n, Uuid parent = kRootIno) {
  Inode i = MakeInode(DeterministicUuid(100, n), FileType::kRegular, 0644, 1,
                      1, parent);
  i.size = n * 10;
  return i;
}

TEST(RecordTest, AllTypesRoundTrip) {
  std::vector<Record> records;
  records.push_back(Record::InodeUpsert(TestInode(1)));
  records.push_back(Record::InodeRemove(DeterministicUuid(1, 2), 4096, 1024));
  records.push_back(
      Record::DentryAdd({"name.txt", DeterministicUuid(1, 3), FileType::kRegular}));
  records.push_back(Record::DentryRemove("gone.txt"));
  records.push_back(Record::DirRemove(DeterministicUuid(1, 4)));
  records.push_back(
      Record::Prepare(DeterministicUuid(1, 5), DeterministicUuid(1, 6)));
  records.push_back(Record::Decision(DeterministicUuid(1, 5), true));

  Encoder enc;
  for (const auto& r : records) r.EncodeTo(enc);
  Decoder dec(enc.buffer());
  for (const auto& expected : records) {
    auto got = Record::DecodeFrom(dec);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->type, expected.type);
  }
  EXPECT_TRUE(dec.done());
}

TEST(RecordTest, TransactionFramingRoundTrip) {
  Transaction txn;
  txn.seq = 42;
  txn.records.push_back(Record::DentryRemove("x"));
  txn.records.push_back(Record::InodeUpsert(TestInode(7)));

  const Bytes framed = EncodeTransaction(txn);
  auto parsed = ParseJournal(framed);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].seq, 42u);
  EXPECT_EQ(parsed[0].records.size(), 2u);
}

TEST(RecordTest, TornTailIsDiscarded) {
  Transaction a;
  a.seq = 1;
  a.records.push_back(Record::DentryRemove("a"));
  Transaction b;
  b.seq = 2;
  b.records.push_back(Record::DentryRemove("b"));

  Bytes journal = EncodeTransaction(a);
  Bytes second = EncodeTransaction(b);
  // Simulate a crash mid-append: only half of txn b made it.
  journal.insert(journal.end(), second.begin(),
                 second.begin() + second.size() / 2);
  auto parsed = ParseJournal(journal);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].seq, 1u);
}

TEST(RecordTest, CorruptPayloadIsDiscarded) {
  Transaction a;
  a.seq = 1;
  a.records.push_back(Record::DentryRemove("victim"));
  Bytes journal = EncodeTransaction(a);
  journal[journal.size() / 2] ^= 0xFF;  // flip a payload bit
  EXPECT_TRUE(ParseJournal(journal).empty());
}

TEST(RecordTest, EmptyJournalParsesEmpty) {
  EXPECT_TRUE(ParseJournal({}).empty());
  Bytes garbage{1, 2, 3, 4, 5};
  EXPECT_TRUE(ParseJournal(garbage).empty());
}

// A v1 frame exactly as the pre-fencing encoder wrote it: "AKJT" magic,
// seq + len + payload, CRC over seq/len/payload — no fence token fields.
Bytes EncodeLegacyV1Transaction(const Transaction& txn) {
  Encoder payload(256);
  payload.PutVarint(txn.records.size());
  for (const auto& r : txn.records) r.EncodeTo(payload);

  Encoder framed(payload.size() + 24);
  framed.PutU32(kTxnMagicV1);
  framed.PutU64(txn.seq);
  framed.PutU32(static_cast<std::uint32_t>(payload.size()));
  framed.PutRaw(payload.buffer());
  Encoder crc_input(payload.size() + 16);
  crc_input.PutU64(txn.seq);
  crc_input.PutU32(static_cast<std::uint32_t>(payload.size()));
  crc_input.PutRaw(payload.buffer());
  framed.PutU32(Crc32c(crc_input.buffer()));
  return std::move(framed).Take();
}

TEST(RecordTest, LegacyV1FramesParseAsUnfenced) {
  // A journal written before the fence token grew the frame header must
  // replay losslessly — acked pre-upgrade transactions are not torn tails.
  Transaction txn;
  txn.seq = 7;
  txn.records.push_back(Record::DentryRemove("pre-upgrade"));
  txn.records.push_back(Record::InodeUpsert(TestInode(3)));

  auto parsed = ParseJournal(EncodeLegacyV1Transaction(txn));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].seq, 7u);
  EXPECT_EQ(parsed[0].records.size(), 2u);
  // Epoch 0 = legacy/unfenced, same convention as missing fence objects.
  EXPECT_FALSE(parsed[0].fence.valid());
}

TEST(RecordTest, MixedV1ThenV2JournalParses) {
  // An upgraded node appends fenced v2 frames after the legacy tail.
  Transaction old_txn;
  old_txn.seq = 1;
  old_txn.records.push_back(Record::DentryRemove("old"));
  Transaction new_txn;
  new_txn.seq = 2;
  new_txn.fence = FenceToken{3, 9};
  new_txn.records.push_back(Record::DentryRemove("new"));

  Bytes journal = EncodeLegacyV1Transaction(old_txn);
  const Bytes fenced = EncodeTransaction(new_txn);
  journal.insert(journal.end(), fenced.begin(), fenced.end());

  auto parsed = ParseJournal(journal);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].seq, 1u);
  EXPECT_FALSE(parsed[0].fence.valid());
  EXPECT_EQ(parsed[1].seq, 2u);
  EXPECT_EQ(parsed[1].fence, (FenceToken{3, 9}));
}

TEST(RecordTest, TornLegacyV1TailIsDiscarded) {
  Transaction a;
  a.seq = 1;
  a.records.push_back(Record::DentryRemove("kept"));
  Transaction b;
  b.seq = 2;
  b.records.push_back(Record::DentryRemove("torn"));

  Bytes journal = EncodeLegacyV1Transaction(a);
  const Bytes second = EncodeLegacyV1Transaction(b);
  journal.insert(journal.end(), second.begin(),
                 second.begin() + second.size() / 2);
  auto parsed = ParseJournal(journal);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].seq, 1u);
}

class JournalManagerTest : public ::testing::Test {
 protected:
  JournalManagerTest()
      : store_(std::make_shared<MemoryObjectStore>()),
        prt_(std::make_shared<Prt>(store_)),
        manager_(std::make_unique<JournalManager>(prt_,
                                                  JournalConfig::ForTests())) {
    dir_ = DeterministicUuid(7, 7);
    Inode dir_inode =
        MakeInode(dir_, FileType::kDirectory, 0755, 0, 0, kRootIno);
    EXPECT_TRUE(prt_->StoreInode(dir_inode).ok());
    manager_->RegisterDir(dir_);
  }

  ObjectStorePtr store_;
  std::shared_ptr<Prt> prt_;
  std::unique_ptr<JournalManager> manager_;
  Uuid dir_;
};

TEST_F(JournalManagerTest, FlushCheckpointsToAuthoritativeObjects) {
  Inode child = TestInode(1, dir_);
  (void)manager_->Append(dir_, {Record::InodeUpsert(child),
                          Record::DentryAdd({"a", child.ino,
                                             FileType::kRegular})});
  ASSERT_TRUE(manager_->FlushDir(dir_).ok());

  auto inode = prt_->LoadInode(child.ino);
  ASSERT_TRUE(inode.ok());
  EXPECT_EQ(inode->size, child.size);
  auto block = prt_->LoadDentries(dir_);
  ASSERT_TRUE(block.ok());
  ASSERT_EQ(block->size(), 1u);
  EXPECT_EQ((*block)[0].name, "a");
  // Checkpoint invalidated the journal.
  EXPECT_FALSE(manager_->HasSurvivingJournal(dir_));
  EXPECT_EQ(manager_->metrics().transactions_checkpointed.value(), 1u);
}

TEST_F(JournalManagerTest, BackgroundCommitEventuallyHappens) {
  (void)manager_->Append(dir_, {Record::DentryAdd(
                             {"bg", DeterministicUuid(9, 9),
                              FileType::kRegular})});
  // Commit interval in ForTests() is 20 ms; wait for the background pass.
  for (int i = 0; i < 100 && manager_->metrics().transactions_committed.value() == 0;
       ++i) {
    SleepFor(Millis(10));
  }
  EXPECT_GE(manager_->metrics().transactions_committed.value(), 1u);
}

TEST_F(JournalManagerTest, CommitWithoutCheckpointLeavesJournal) {
  (void)manager_->Append(dir_, {Record::DentryAdd(
                             {"pending", DeterministicUuid(3, 3),
                              FileType::kRegular})});
  ASSERT_TRUE(manager_->CommitDir(dir_).ok());
  EXPECT_TRUE(manager_->HasSurvivingJournal(dir_));
}

TEST_F(JournalManagerTest, RecoveryReplaysCommittedTransactions) {
  Inode child = TestInode(2, dir_);
  (void)manager_->Append(dir_, {Record::InodeUpsert(child),
                          Record::DentryAdd({"crashy", child.ino,
                                             FileType::kRegular})});
  ASSERT_TRUE(manager_->CommitDir(dir_).ok());
  // Simulate crash: new manager (new client) over the same store.
  auto fresh = std::make_unique<JournalManager>(prt_, JournalConfig::ForTests());
  ASSERT_TRUE(fresh->HasSurvivingJournal(dir_));
  auto report = fresh->RecoverDir(dir_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->transactions_replayed, 1u);
  EXPECT_EQ(report->transactions_aborted, 0u);

  auto inode = prt_->LoadInode(child.ino);
  ASSERT_TRUE(inode.ok());
  auto block = prt_->LoadDentries(dir_);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ((*block)[0].name, "crashy");
  EXPECT_FALSE(fresh->HasSurvivingJournal(dir_));
}

TEST_F(JournalManagerTest, RecoveryOfUnjournaledDirIsNoop) {
  auto report = manager_->RecoverDir(DeterministicUuid(55, 55));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->transactions_replayed, 0u);
}

TEST_F(JournalManagerTest, InodeRemoveDropsDataChunks) {
  Inode child = TestInode(3, dir_);
  const std::uint64_t chunk = prt_->chunk_size();
  ASSERT_TRUE(prt_->WriteData(child.ino, 0, Bytes(chunk * 2, 1)).ok());
  ASSERT_TRUE(prt_->StoreInode(child).ok());

  (void)manager_->Append(dir_, {Record::InodeRemove(child.ino, chunk * 2, chunk)});
  ASSERT_TRUE(manager_->FlushDir(dir_).ok());
  EXPECT_EQ(prt_->LoadInode(child.ino).code(), Errc::kNoEnt);
  EXPECT_EQ(store_->Head(DataKey(child.ino, 0)).code(), Errc::kNoEnt);
  EXPECT_EQ(store_->Head(DataKey(child.ino, 1)).code(), Errc::kNoEnt);
}

TEST_F(JournalManagerTest, UnregisterFlushesAndDeletesJournal) {
  (void)manager_->Append(dir_, {Record::DentryAdd(
                             {"final", DeterministicUuid(4, 4),
                              FileType::kRegular})});
  ASSERT_TRUE(manager_->UnregisterDir(dir_).ok());
  EXPECT_EQ(store_->Head(JournalKey(dir_)).code(), Errc::kNoEnt);
  auto block = prt_->LoadDentries(dir_);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->size(), 1u);
}

// --- two-phase commit across directories ---

class CrossDirTest : public JournalManagerTest {
 protected:
  CrossDirTest() {
    dst_ = DeterministicUuid(8, 8);
    Inode dst_inode =
        MakeInode(dst_, FileType::kDirectory, 0755, 0, 0, kRootIno);
    EXPECT_TRUE(prt_->StoreInode(dst_inode).ok());
    manager_->RegisterDir(dst_);
    moved_ = TestInode(10, dir_);
    EXPECT_TRUE(prt_->StoreInode(moved_).ok());
    // Source starts with the dentry present.
    EXPECT_TRUE(prt_->StoreDentryBlock(
                    dir_, {{"moved", moved_.ino, FileType::kRegular}})
                    .ok());
  }

  std::vector<Record> SrcRecords() {
    return {Record::DentryRemove("moved")};
  }
  std::vector<Record> DstRecords() {
    Inode updated = moved_;
    updated.parent = dst_;
    return {Record::DentryAdd({"arrived", moved_.ino, FileType::kRegular}),
            Record::InodeUpsert(updated)};
  }

  Uuid dst_;
  Inode moved_;
};

TEST_F(CrossDirTest, CommittedRenameApplies) {
  ASSERT_TRUE(
      manager_->CommitCrossDir(dir_, SrcRecords(), dst_, DstRecords()).ok());
  ASSERT_TRUE(manager_->FlushDir(dir_).ok());
  ASSERT_TRUE(manager_->FlushDir(dst_).ok());

  EXPECT_TRUE(prt_->LoadDentries(dir_)->empty());
  auto dst_block = prt_->LoadDentries(dst_);
  ASSERT_EQ(dst_block->size(), 1u);
  EXPECT_EQ((*dst_block)[0].name, "arrived");
  EXPECT_EQ(prt_->LoadInode(moved_.ino)->parent, dst_);
}

TEST_F(CrossDirTest, RecoveryCommitsWhenBothDecisionsPresent) {
  ASSERT_TRUE(
      manager_->CommitCrossDir(dir_, SrcRecords(), dst_, DstRecords()).ok());
  // Crash before any checkpoint: replay both journals with a fresh manager.
  auto fresh = std::make_unique<JournalManager>(prt_, JournalConfig::ForTests());
  ASSERT_TRUE(fresh->RecoverDir(dir_).ok());
  ASSERT_TRUE(fresh->RecoverDir(dst_).ok());
  EXPECT_TRUE(prt_->LoadDentries(dir_)->empty());
  EXPECT_EQ(prt_->LoadDentries(dst_)->size(), 1u);
}

TEST_F(CrossDirTest, DanglingPrepareWithoutAnyDecisionAborts) {
  // Hand-craft the crash window: prepares are durable in both journals but
  // no decision was written anywhere (crash between phase 1 and phase 2).
  const Uuid txid = DeterministicUuid(77, 1);
  Transaction src_prep;
  src_prep.seq = 1;
  src_prep.records.push_back(Record::Prepare(txid, dst_));
  for (auto& r : SrcRecords()) src_prep.records.push_back(r);
  Transaction dst_prep;
  dst_prep.seq = 1;
  dst_prep.records.push_back(Record::Prepare(txid, dir_));
  for (auto& r : DstRecords()) dst_prep.records.push_back(r);
  ASSERT_TRUE(prt_->StoreJournal(dir_, EncodeTransaction(src_prep)).ok());
  ASSERT_TRUE(prt_->StoreJournal(dst_, EncodeTransaction(dst_prep)).ok());

  auto fresh = std::make_unique<JournalManager>(prt_, JournalConfig::ForTests());
  auto src_report = fresh->RecoverDir(dir_);
  ASSERT_TRUE(src_report.ok());
  EXPECT_EQ(src_report->transactions_aborted, 1u);
  auto dst_report = fresh->RecoverDir(dst_);
  ASSERT_TRUE(dst_report.ok());
  EXPECT_EQ(dst_report->transactions_aborted, 1u);

  // Presumed abort: the file stays in the source directory.
  EXPECT_EQ(prt_->LoadDentries(dir_)->size(), 1u);
  EXPECT_TRUE(prt_->LoadDentries(dst_)->empty());
}

TEST_F(CrossDirTest, PrepareWithPeerDecisionCommits) {
  // Crash after the decision reached only the destination journal; the
  // source recovery must consult the peer and commit.
  const Uuid txid = DeterministicUuid(77, 2);
  Transaction src_prep;
  src_prep.seq = 1;
  src_prep.records.push_back(Record::Prepare(txid, dst_));
  for (auto& r : SrcRecords()) src_prep.records.push_back(r);

  Transaction dst_prep;
  dst_prep.seq = 1;
  dst_prep.records.push_back(Record::Prepare(txid, dir_));
  for (auto& r : DstRecords()) dst_prep.records.push_back(r);
  Transaction dst_decision;
  dst_decision.seq = 2;
  dst_decision.records.push_back(Record::Decision(txid, true));

  ASSERT_TRUE(prt_->StoreJournal(dir_, EncodeTransaction(src_prep)).ok());
  Bytes dst_journal = EncodeTransaction(dst_prep);
  const Bytes decision_frame = EncodeTransaction(dst_decision);
  dst_journal.insert(dst_journal.end(), decision_frame.begin(),
                     decision_frame.end());
  ASSERT_TRUE(prt_->StoreJournal(dst_, dst_journal).ok());

  auto fresh = std::make_unique<JournalManager>(prt_, JournalConfig::ForTests());
  // Recover the source FIRST (it must look at the peer journal).
  auto src_report = fresh->RecoverDir(dir_);
  ASSERT_TRUE(src_report.ok());
  EXPECT_EQ(src_report->transactions_aborted, 0u);
  EXPECT_EQ(src_report->transactions_replayed, 1u);
  ASSERT_TRUE(fresh->RecoverDir(dst_).ok());

  EXPECT_TRUE(prt_->LoadDentries(dir_)->empty());
  EXPECT_EQ(prt_->LoadDentries(dst_)->size(), 1u);
}

TEST_F(CrossDirTest, SameDirRejected) {
  EXPECT_EQ(manager_->CommitCrossDir(dir_, {}, dir_, {}).code(), Errc::kInval);
}

// --- sharded dentry layout: policy, migration, dirty-shard checkpointing ---

TEST(ShardPolicyTest, ShardCountForGrowsByPowersOfTwo) {
  DentryShardPolicy p;  // target 4096 entries/shard, cap 64
  EXPECT_EQ(ShardCountFor(p, 0), 1u);
  EXPECT_EQ(ShardCountFor(p, 4096), 1u);
  EXPECT_EQ(ShardCountFor(p, 4097), 2u);
  EXPECT_EQ(ShardCountFor(p, 100000), 32u);
  EXPECT_EQ(ShardCountFor(p, 10000000), 64u);  // policy cap

  DentryShardPolicy odd;
  odd.max_shards = 48;  // non-pow2 cap rounds down
  EXPECT_EQ(ShardCountFor(odd, 10000000), 32u);

  DentryShardPolicy pinned;
  pinned.override_count = 5;  // override rounds up to a power of two
  EXPECT_EQ(ShardCountFor(pinned, 0), 8u);
  pinned.override_count = 16;
  EXPECT_EQ(ShardCountFor(pinned, 1), 16u);
}

class ShardedDentryTest : public ::testing::Test {
 protected:
  ShardedDentryTest()
      : base_(std::make_shared<MemoryObjectStore>()),
        counting_(std::make_shared<CountingStore>(base_)),
        prt_(std::make_shared<Prt>(counting_)) {}

  std::unique_ptr<JournalManager> MakeManager(DentryShardPolicy policy) {
    JournalConfig cfg = JournalConfig::ForTests();
    cfg.shard_policy = policy;
    return std::make_unique<JournalManager>(prt_, cfg);
  }

  Uuid NewDir(std::uint64_t n) {
    Uuid dir = DeterministicUuid(70, n);
    Inode di = MakeInode(dir, FileType::kDirectory, 0755, 0, 0, kRootIno);
    EXPECT_TRUE(prt_->StoreInode(di).ok());
    return dir;
  }

  static Record AddEntry(const std::string& name, std::uint64_t n) {
    return Record::DentryAdd(
        {name, DeterministicUuid(71, n), FileType::kRegular});
  }

  std::shared_ptr<MemoryObjectStore> base_;
  std::shared_ptr<CountingStore> counting_;
  std::shared_ptr<Prt> prt_;
};

TEST_F(ShardedDentryTest, LegacyBlockMigratesOnFirstCheckpoint) {
  const Uuid dir = NewDir(1);
  std::vector<Dentry> legacy;
  for (std::uint64_t i = 0; i < 10; ++i) {
    legacy.push_back({"old" + std::to_string(i), DeterministicUuid(72, i),
                      FileType::kRegular});
  }
  ASSERT_TRUE(prt_->StoreDentryBlock(dir, legacy).ok());

  DentryShardPolicy p;
  p.override_count = 4;
  auto mgr = MakeManager(p);
  mgr->RegisterDir(dir);
  (void)mgr->Append(dir, {AddEntry("fresh", 1)});
  ASSERT_TRUE(mgr->FlushDir(dir).ok());

  auto m = prt_->LoadDentryManifest(dir);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->shard_count, 4u);
  EXPECT_EQ(m->entry_count, 11u);
  // The legacy block is gone; nothing resurrects it.
  EXPECT_EQ(prt_->store().Head(DentryKey(dir)).code(), Errc::kNoEnt);
  auto all = prt_->LoadDentries(dir);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 11u);
  EXPECT_EQ(mgr->metrics().dentry_migrations.value(), 1u);
  EXPECT_EQ(mgr->metrics().dentry_shards_written.value(), 4u);  // all of gen B=4
}

TEST_F(ShardedDentryTest, CheckpointWritesOnlyDirtyShards) {
  const Uuid dir = NewDir(2);
  DentryShardPolicy p;
  p.override_count = 16;
  auto mgr = MakeManager(p);
  mgr->RegisterDir(dir);
  std::vector<Record> seed;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seed.push_back(AddEntry("f" + std::to_string(i), i));
  }
  (void)mgr->Append(dir, std::move(seed));
  ASSERT_TRUE(mgr->FlushDir(dir).ok());

  const std::uint64_t loaded_before = mgr->metrics().dentry_shards_loaded.value();
  const std::uint64_t written_before =
      mgr->metrics().dentry_shards_written.value();
  counting_->Reset();
  (void)mgr->Append(dir, {AddEntry("straggler", 5000)});
  ASSERT_TRUE(mgr->FlushDir(dir).ok());

  // A one-entry burst dirties exactly one of the 16 shards: one shard read,
  // one shard write — not a 1000-entry block rewrite.
  EXPECT_EQ(mgr->metrics().dentry_shards_loaded.value() - loaded_before, 1u);
  EXPECT_EQ(mgr->metrics().dentry_shards_written.value() - written_before, 1u);
  // Store traffic for the whole flush: journal append + one shard put +
  // manifest count update + journal trim.
  const auto c = counting_->Snapshot();
  EXPECT_LE(c.puts, 4u);
  auto m = prt_->LoadDentryManifest(dir);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->entry_count, 1001u);
}

TEST_F(ShardedDentryTest, ShardCountGrowsWithDirectory) {
  const Uuid dir = NewDir(3);
  DentryShardPolicy p;
  p.target_entries = 8;
  p.max_shards = 8;
  auto mgr = MakeManager(p);
  mgr->RegisterDir(dir);

  std::vector<Record> first;
  for (std::uint64_t i = 0; i < 4; ++i) {
    first.push_back(AddEntry("a" + std::to_string(i), i));
  }
  (void)mgr->Append(dir, std::move(first));
  ASSERT_TRUE(mgr->FlushDir(dir).ok());
  ASSERT_TRUE(prt_->LoadDentryManifest(dir).ok());
  EXPECT_EQ(prt_->LoadDentryManifest(dir)->shard_count, 1u);

  std::vector<Record> more;
  for (std::uint64_t i = 0; i < 30; ++i) {
    more.push_back(AddEntry("b" + std::to_string(i), 100 + i));
  }
  (void)mgr->Append(dir, std::move(more));
  ASSERT_TRUE(mgr->FlushDir(dir).ok());

  auto m = prt_->LoadDentryManifest(dir);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->shard_count, 8u);  // 34 entries at 8/shard -> 8-way
  EXPECT_EQ(m->entry_count, 34u);
  EXPECT_EQ(mgr->metrics().dentry_reshards.value(), 1u);
  // The old generation's objects (both slots) were dropped after the flip.
  EXPECT_EQ(prt_->store().Head(DentryShardKey(dir, 1, 0, 0)).code(),
            Errc::kNoEnt);
  EXPECT_EQ(prt_->store().Head(DentryShardKey(dir, 1, 0, 1)).code(),
            Errc::kNoEnt);
  auto all = prt_->LoadDentries(dir);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 34u);
}

TEST_F(ShardedDentryTest, CommitAndCheckpointLatenciesRecorded) {
  const Uuid dir = NewDir(4);
  auto mgr = MakeManager({});
  mgr->RegisterDir(dir);
  (void)mgr->Append(dir, {AddEntry("timed", 1)});
  ASSERT_TRUE(mgr->FlushDir(dir).ok());
  EXPECT_GE(mgr->latencies().For("commit").count(), 1u);
  EXPECT_GE(mgr->latencies().For("checkpoint").count(), 1u);
  EXPECT_NE(mgr->latencies().Table().find("checkpoint"), std::string::npos);
}

TEST_F(ShardedDentryTest, LegacyCrashRecoveryMigrates) {
  // A predecessor crashed after committing to the journal but before any
  // checkpoint, with the directory still on the legacy layout. The new
  // leader must replay from the legacy block AND migrate, losing nothing.
  const Uuid dir = NewDir(5);
  ASSERT_TRUE(prt_->StoreDentryBlock(
                  dir, {{"settled", DeterministicUuid(74, 1),
                         FileType::kRegular}})
                  .ok());
  DentryShardPolicy p;
  p.override_count = 4;
  auto crashed = MakeManager(p);
  crashed->RegisterDir(dir);
  (void)crashed->Append(dir, {AddEntry("acked", 2)});
  ASSERT_TRUE(crashed->CommitDir(dir).ok());  // durable, not checkpointed

  auto fresh = MakeManager(p);
  ASSERT_TRUE(fresh->HasSurvivingJournal(dir));
  auto report = fresh->RecoverDir(dir);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->transactions_replayed, 1u);
  EXPECT_EQ(fresh->metrics().dentry_migrations.value(), 1u);

  auto m = prt_->LoadDentryManifest(dir);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->shard_count, 4u);
  auto all = prt_->LoadDentries(dir);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_FALSE(fresh->HasSurvivingJournal(dir));
}

TEST_F(ShardedDentryTest, TornMigrationRecovers) {
  // Chaos tears EVERY whole-object put: the migration's shard writes fail
  // and leave garbage prefixes, but the ordered manifest put never runs, so
  // the legacy layout stays authoritative and replay converges.
  const Uuid dir = NewDir(6);
  std::vector<Dentry> legacy;
  for (std::uint64_t i = 0; i < 8; ++i) {
    legacy.push_back({"keep" + std::to_string(i), DeterministicUuid(75, i),
                      FileType::kRegular});
  }
  ASSERT_TRUE(prt_->StoreDentryBlock(dir, legacy).ok());

  DentryShardPolicy p;
  p.override_count = 4;
  ChaosConfig torn;
  torn.seed = 42;
  torn.torn_put_rate = 1.0;
  auto chaos = std::make_shared<ChaosStore>(base_, torn);
  {
    auto chaos_prt = std::make_shared<Prt>(chaos);
    JournalConfig cfg = JournalConfig::ForTests();
    cfg.shard_policy = p;
    JournalManager victim(chaos_prt, cfg);
    victim.RegisterDir(dir);
    (void)victim.Append(dir, {AddEntry("acked", 1)});
    // The journal append goes through PutRange and commits fine...
    ASSERT_TRUE(victim.CommitDir(dir).ok());
    // ...but the checkpoint's whole-object shard puts all tear.
    EXPECT_FALSE(victim.FlushDir(dir).ok());
    EXPECT_GT(chaos->counters().torn_puts, 0u);
  }
  // Crash window: garbage at the new generation's shard keys, no manifest,
  // legacy block + journal intact.
  EXPECT_EQ(prt_->LoadDentryManifest(dir).code(), Errc::kNoEnt);
  ASSERT_TRUE(prt_->store().Head(DentryKey(dir)).ok());

  auto fresh = MakeManager(p);
  ASSERT_TRUE(fresh->HasSurvivingJournal(dir));
  ASSERT_TRUE(fresh->RecoverDir(dir).ok());
  auto all = prt_->LoadDentries(dir);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 9u);  // 8 settled + 1 acked, zero lost
  EXPECT_EQ(prt_->LoadDentryManifest(dir)->shard_count, 4u);
}

TEST_F(ShardedDentryTest, TornShardCheckpointRecovers) {
  // Same fault on an already-sharded directory: a dirty-shard checkpoint
  // tears mid-MultiPut, leaving undecodable shard objects behind a valid
  // manifest. Recovery must step over the garbage (the journal still holds
  // every acked op) and rebuild the shards.
  const Uuid dir = NewDir(7);
  ASSERT_TRUE(prt_->StoreDentryManifest(dir, {4, 0}).ok());
  DentryShardPolicy p;
  p.override_count = 4;
  auto chaos = std::make_shared<ChaosStore>(
      base_, [] {
        ChaosConfig c;
        c.seed = 7;
        c.torn_put_rate = 1.0;
        return c;
      }());
  {
    auto chaos_prt = std::make_shared<Prt>(chaos);
    JournalConfig cfg = JournalConfig::ForTests();
    cfg.shard_policy = p;
    JournalManager victim(chaos_prt, cfg);
    victim.RegisterDir(dir);
    std::vector<Record> recs;
    for (std::uint64_t i = 0; i < 20; ++i) {
      recs.push_back(AddEntry("acked" + std::to_string(i), i));
    }
    (void)victim.Append(dir, std::move(recs));
    ASSERT_TRUE(victim.CommitDir(dir).ok());
    EXPECT_FALSE(victim.FlushDir(dir).ok());
    EXPECT_GT(chaos->counters().torn_puts, 0u);
  }
  // The manifest was untouched (its put is ordered after the shard batch).
  ASSERT_TRUE(prt_->LoadDentryManifest(dir).ok());

  auto fresh = MakeManager(p);
  ASSERT_TRUE(fresh->HasSurvivingJournal(dir));
  auto report = fresh->RecoverDir(dir);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->transactions_replayed, 1u);
  auto all = prt_->LoadDentries(dir);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 20u);  // every acked op survived the torn writes
  EXPECT_EQ(prt_->LoadDentryManifest(dir)->entry_count, 20u);
  EXPECT_FALSE(fresh->HasSurvivingJournal(dir));
}

TEST_F(ShardedDentryTest, TornCheckpointNeverDamagesSettledEntries) {
  // The copy-on-write regression: entries settled by an earlier checkpoint
  // (and therefore TRIMMED from the journal) live only in the shard objects.
  // A later checkpoint of the same shards must not be able to destroy them —
  // the torn put lands in the inactive slot, the manifest never flips, and
  // both the crash window and recovery still read every settled entry.
  const Uuid dir = NewDir(30);
  DentryShardPolicy p;
  p.override_count = 4;
  {
    auto mgr = MakeManager(p);
    mgr->RegisterDir(dir);
    std::vector<Record> recs;
    for (std::uint64_t i = 0; i < 20; ++i) {
      recs.push_back(AddEntry("settled" + std::to_string(i), i));
    }
    (void)mgr->Append(dir, std::move(recs));
    ASSERT_TRUE(mgr->FlushDir(dir).ok());  // settled: journal trimmed empty
  }
  ASSERT_FALSE(MakeManager(p)->HasSurvivingJournal(dir));

  ChaosConfig torn;
  torn.seed = 11;
  torn.torn_put_rate = 1.0;
  auto chaos = std::make_shared<ChaosStore>(base_, torn);
  {
    auto chaos_prt = std::make_shared<Prt>(chaos);
    JournalConfig cfg = JournalConfig::ForTests();
    cfg.shard_policy = p;
    JournalManager victim(chaos_prt, cfg);
    victim.RegisterDir(dir);
    (void)victim.Append(dir, {AddEntry("late", 1000)});
    ASSERT_TRUE(victim.CommitDir(dir).ok());
    EXPECT_FALSE(victim.FlushDir(dir).ok());  // shard put tore
    EXPECT_GT(chaos->counters().torn_puts, 0u);
  }
  // Crash window: every settled entry is still readable through the
  // unflipped manifest (pre-fix, the in-place rewrite left garbage that
  // recovery silently read as an EMPTY shard — losing settled entries).
  auto window = prt_->LoadDentries(dir);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(window->size(), 20u);

  auto fresh = MakeManager(p);
  ASSERT_TRUE(fresh->HasSurvivingJournal(dir));
  ASSERT_TRUE(fresh->RecoverDir(dir).ok());
  auto all = prt_->LoadDentries(dir);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 21u);  // 20 settled + 1 journaled, zero lost
  EXPECT_EQ(prt_->LoadDentryManifest(dir)->entry_count, 21u);
}

TEST_F(ShardedDentryTest, TornManifestAdoptionVerifiesGenerations) {
  // A torn manifest flip leaves an undecodable layout authority. Recovery
  // must adopt a FULLY MATERIALIZED generation — not blindly the largest
  // one present, which can be a torn orphan from a failed reshard — and
  // must rebuild a valid manifest with a recomputed entry count.
  const Uuid dir = NewDir(31);
  DentryShardPolicy p;
  p.override_count = 4;
  {
    auto mgr = MakeManager(p);
    mgr->RegisterDir(dir);
    std::vector<Record> recs;
    for (std::uint64_t i = 0; i < 10; ++i) {
      recs.push_back(AddEntry("base" + std::to_string(i), i));
    }
    (void)mgr->Append(dir, std::move(recs));
    ASSERT_TRUE(mgr->FlushDir(dir).ok());
    (void)mgr->Append(dir, {AddEntry("extra", 500)});
    ASSERT_TRUE(mgr->CommitDir(dir).ok());  // journaled, not checkpointed
  }
  // Simulate the torn flip plus a torn ORPHAN generation twice as wide
  // (every gen-8 shard object present but undecodable).
  ASSERT_TRUE(prt_->store().Put(DentryManifestKey(dir), Bytes{0xDE, 0xAD}).ok());
  for (std::uint32_t s = 0; s < 8; ++s) {
    ASSERT_TRUE(
        prt_->store().Put(DentryShardKey(dir, 8, s, 0), Bytes{0xBA, 0xD1}).ok());
  }

  auto fresh = MakeManager(p);
  auto report = fresh->RecoverDir(dir);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->transactions_replayed, 1u);
  auto m = prt_->LoadDentryManifest(dir);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->shard_count, 4u);    // adopted the complete generation
  EXPECT_EQ(m->entry_count, 11u);   // recomputed, not reset to zero
  auto all = prt_->LoadDentries(dir);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 11u);
  // The torn orphan generation was swept during recovery.
  for (std::uint32_t s = 0; s < 8; ++s) {
    EXPECT_EQ(prt_->store().Head(DentryShardKey(dir, 8, s, 0)).code(),
              Errc::kNoEnt);
  }
}

TEST_F(ShardedDentryTest, FailedCheckpointRetriesAndSweepsOrphans) {
  // A checkpoint whose apply fails must keep its batch: the retry re-applies
  // the same journal prefix (keeping the trim byte-aligned) and sweeps any
  // orphan generation objects the failed attempt may have left behind.
  const Uuid dir = NewDir(32);
  DentryShardPolicy p;
  p.override_count = 4;

  auto armed = std::make_shared<std::atomic<bool>>(false);
  auto faulty = std::make_shared<FaultInjectionStore>(
      counting_, [armed](std::string_view op, const std::string& key) {
        // Whole-object puts to dentry shard objects only (43-char 'e' keys).
        return armed->load() && op == "put" && key.size() == 43 &&
                       key[0] == 'e'
                   ? Errc::kIo
                   : Errc::kOk;
      });
  auto faulty_prt = std::make_shared<Prt>(faulty);
  JournalConfig cfg = JournalConfig::ForTests();
  cfg.shard_policy = p;
  JournalManager mgr(faulty_prt, cfg);
  mgr.RegisterDir(dir);
  std::vector<Record> recs;
  for (std::uint64_t i = 0; i < 12; ++i) {
    recs.push_back(AddEntry("kept" + std::to_string(i), i));
  }
  (void)mgr.Append(dir, std::move(recs));
  ASSERT_TRUE(mgr.CommitDir(dir).ok());

  // A stale orphan generation from some earlier failed reshard; decodable
  // but obsolete — exactly the artifact adoption can't distinguish, so the
  // retry must delete it before the journal trim settles anything.
  ASSERT_TRUE(prt_->StoreDentryShard(dir, 2, 0,
                                     {{"stale", DeterministicUuid(76, 1),
                                       FileType::kRegular}})
                  .ok());
  ASSERT_TRUE(
      prt_->StoreDentryShard(dir, 2, 1, {}, /*slot=*/0, /*epoch=*/1).ok());

  armed->store(true);
  EXPECT_FALSE(mgr.FlushDir(dir).ok());
  armed->store(false);
  ASSERT_TRUE(mgr.FlushDir(dir).ok());  // retry applies the restored batch

  auto all = prt_->LoadDentries(dir);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 12u);
  EXPECT_EQ(prt_->LoadDentryManifest(dir)->entry_count, 12u);
  EXPECT_FALSE(mgr.HasSurvivingJournal(dir));  // trim stayed aligned
  EXPECT_EQ(prt_->store().Head(DentryShardKey(dir, 2, 0, 0)).code(),
            Errc::kNoEnt);
  EXPECT_EQ(prt_->store().Head(DentryShardKey(dir, 2, 1, 0)).code(),
            Errc::kNoEnt);
}

TEST_F(ShardedDentryTest, FlushAllIsFirstErrorWinsButAttemptsEveryDir) {
  // One directory's journal object rejects writes; FlushAll must surface
  // that error AND still checkpoint every healthy directory.
  const Uuid bad = NewDir(8);
  std::vector<Uuid> good;
  for (std::uint64_t i = 0; i < 3; ++i) good.push_back(NewDir(9 + i));

  const std::string bad_journal = JournalKey(bad);
  auto faulty = std::make_shared<FaultInjectionStore>(
      counting_, [bad_journal](std::string_view op, const std::string& key) {
        return key == bad_journal && op.substr(0, 3) == "put" ? Errc::kIo
                                                              : Errc::kOk;
      });
  auto faulty_prt = std::make_shared<Prt>(faulty);
  JournalManager mgr(faulty_prt, JournalConfig::ForTests());
  mgr.RegisterDir(bad);
  for (const auto& d : good) mgr.RegisterDir(d);
  (void)mgr.Append(bad, {AddEntry("lost-commit", 1)});
  for (std::uint64_t i = 0; i < good.size(); ++i) {
    (void)mgr.Append(good[i], {AddEntry("kept" + std::to_string(i), 10 + i)});
  }

  EXPECT_FALSE(mgr.FlushAll().ok());
  for (const auto& d : good) {
    auto entries = prt_->LoadDentries(d);
    ASSERT_TRUE(entries.ok());
    EXPECT_EQ(entries->size(), 1u);  // healthy dirs still checkpointed
  }
  // The bad dir's op never became durable, so nothing was applied.
  EXPECT_TRUE(prt_->LoadDentries(bad)->empty());
}

TEST_F(ShardedDentryTest, CommitAllCommitsEveryDirectory) {
  auto mgr = MakeManager({});
  std::vector<Uuid> dirs;
  for (std::uint64_t i = 0; i < 4; ++i) dirs.push_back(NewDir(20 + i));
  for (const auto& d : dirs) {
    mgr->RegisterDir(d);
    (void)mgr->Append(d, {AddEntry("pending", 30)});
  }
  ASSERT_TRUE(mgr->CommitAll().ok());
  for (const auto& d : dirs) {
    EXPECT_TRUE(mgr->HasSurvivingJournal(d));  // durable, not checkpointed
    EXPECT_TRUE(prt_->LoadDentries(d)->empty());
  }
}

TEST(JournalS3Test, AppendWorksOnWholeObjectStore) {
  // Whole-object backends append via read-modify-write.
  auto store = std::make_shared<MemoryObjectStore>(kDefaultMaxObjectSize,
                                                   /*partial=*/false);
  auto prt = std::make_shared<Prt>(store);
  JournalManager manager(prt, JournalConfig::ForTests());
  const Uuid dir = DeterministicUuid(91, 1);
  manager.RegisterDir(dir);
  (void)manager.Append(dir, {Record::DentryAdd(
                          {"one", DeterministicUuid(91, 2), FileType::kRegular})});
  ASSERT_TRUE(manager.CommitDir(dir).ok());
  (void)manager.Append(dir, {Record::DentryAdd(
                          {"two", DeterministicUuid(91, 3), FileType::kRegular})});
  ASSERT_TRUE(manager.CommitDir(dir).ok());
  auto raw = prt->LoadJournal(dir);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(ParseJournal(*raw).size(), 2u);
}

// --- durability modes (group-commit pipeline, DESIGN.md §4.7) ---

class DurabilityModeTest : public ::testing::Test {
 protected:
  DurabilityModeTest()
      : store_(std::make_shared<MemoryObjectStore>()),
        armed_(std::make_shared<std::atomic<bool>>(false)),
        faulty_(std::make_shared<FaultInjectionStore>(
            store_,
            [armed = armed_](std::string_view op, const std::string& key) {
              // Armed: every journal-object write fails (keys start 'j').
              return armed->load() && op.substr(0, 3) == "put" &&
                             !key.empty() && key[0] == 'j'
                         ? Errc::kIo
                         : Errc::kOk;
            })),
        prt_(std::make_shared<Prt>(faulty_)) {}

  std::unique_ptr<JournalManager> MakeManager(DurabilityMode mode) {
    JournalConfig cfg = JournalConfig::ForTests();
    // Keep the background commit timer out of the picture (tests finish in
    // well under a second): durability here must come from the mode under
    // test, not the async fallback. Not huge — the timer thread polls at
    // interval/4, and the manager dtor rides out one full poll.
    cfg.commit_interval = Seconds(5);
    cfg.durability = mode;
    return std::make_unique<JournalManager>(prt_, cfg);
  }

  Uuid NewDir(std::uint64_t n) {
    const Uuid dir = DeterministicUuid(120, n);
    Inode dir_inode =
        MakeInode(dir, FileType::kDirectory, 0755, 0, 0, kRootIno);
    EXPECT_TRUE(prt_->StoreInode(dir_inode).ok());
    return dir;
  }

  static Record Entry(const std::string& name, std::uint64_t n) {
    return Record::DentryAdd(
        {name, DeterministicUuid(121, n), FileType::kRegular});
  }

  ObjectStorePtr store_;
  std::shared_ptr<std::atomic<bool>> armed_;
  std::shared_ptr<FaultInjectionStore> faulty_;
  std::shared_ptr<Prt> prt_;
};

TEST(DurabilityModeNames, ParseAndNameRoundTrip) {
  for (auto mode : {DurabilityMode::kSync, DurabilityMode::kGroup,
                    DurabilityMode::kAsync}) {
    auto parsed = ParseDurabilityMode(DurabilityModeName(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_EQ(ParseDurabilityMode("fast-and-loose").code(), Errc::kInval);
}

TEST_F(DurabilityModeTest, SyncModeIsDurableBeforeAck) {
  auto mgr = MakeManager(DurabilityMode::kSync);
  const Uuid dir = NewDir(1);
  mgr->RegisterDir(dir);
  ASSERT_TRUE(mgr->Append(dir, {Entry("durable", 1)}).ok());
  // No CommitDir/FlushDir call: the ack itself implied durability. Durable
  // means journaled — or already checkpointed into the dentry objects, if
  // the checkpoint thread won the race right after the commit.
  auto applied = prt_->LoadDentries(dir);
  EXPECT_TRUE(mgr->HasSurvivingJournal(dir) ||
              (applied.ok() && applied->size() == 1u));
  EXPECT_EQ(mgr->WindowDepth().records, 0u);
}

TEST_F(DurabilityModeTest, SyncModeSurfacesCommitFailureToTheAppender) {
  auto mgr = MakeManager(DurabilityMode::kSync);
  const Uuid dir = NewDir(2);
  mgr->RegisterDir(dir);
  armed_->store(true);
  EXPECT_FALSE(mgr->Append(dir, {Entry("rejected", 1)}).ok());
  // The records stay sequenced (commit unwind) so a later drain redrives
  // them — the failed op was never acked, but nothing leaks either.
  EXPECT_EQ(mgr->WindowDepth().records, 1u);
  armed_->store(false);
  ASSERT_TRUE(mgr->CommitDir(dir).ok());
  EXPECT_TRUE(mgr->HasSurvivingJournal(dir));
  EXPECT_EQ(mgr->WindowDepth().records, 0u);
}

TEST_F(DurabilityModeTest, GroupModeAcksOnSequenceAndFlusherDrains) {
  auto mgr = MakeManager(DurabilityMode::kGroup);
  const Uuid dir = NewDir(3);
  mgr->RegisterDir(dir);
  ASSERT_TRUE(mgr->Append(dir, {Entry("grouped", 1)}).ok());
  // No explicit commit anywhere: the dedicated flusher must drain it.
  for (int i = 0; i < 500 && mgr->WindowDepth().records > 0; ++i) {
    SleepFor(Millis(2));
  }
  EXPECT_EQ(mgr->WindowDepth().records, 0u);
  // Durable means journaled — or already checkpointed into the dentry
  // shards, if the checkpoint thread won the race after the flush.
  auto applied = prt_->LoadDentries(dir);
  EXPECT_TRUE(mgr->HasSurvivingJournal(dir) ||
              (applied.ok() && applied->size() == 1u));
  EXPECT_GE(mgr->metrics().group_flushes.value(), 1u);
}

TEST_F(DurabilityModeTest, GroupBackpressureBoundsTheDirtyWindow) {
  JournalConfig cfg = JournalConfig::ForTests();
  cfg.commit_interval = Seconds(5);
  cfg.durability = DurabilityMode::kGroup;
  cfg.group_window.max_records = 4;
  cfg.group_window.max_age = Seconds(60);      // only the record bound here
  cfg.group_window.max_stall = Millis(10);     // keep the test fast
  JournalManager mgr(prt_, cfg);
  const Uuid dir = NewDir(4);
  mgr.RegisterDir(dir);

  armed_->store(true);  // flusher cannot drain: the window can only grow
  for (std::uint64_t i = 0; i < 8; ++i) {
    // Still acks (bounded stall, not a hang) even with the store down.
    ASSERT_TRUE(
        mgr.Append(dir, {Entry("p" + std::to_string(i), i)}).ok());
  }
  EXPECT_EQ(mgr.WindowDepth().records, 8u);
  EXPECT_GE(mgr.metrics().group_stalls.value(), 1u);

  armed_->store(false);  // store heals: the flusher redrives everything
  for (int i = 0; i < 500 && mgr.WindowDepth().records > 0; ++i) {
    SleepFor(Millis(2));
  }
  EXPECT_EQ(mgr.WindowDepth().records, 0u);
  EXPECT_TRUE(mgr.HasSurvivingJournal(dir));
}

TEST_F(DurabilityModeTest, ConcurrentAppendAndDrainNeverLeaksWindowDepth) {
  // Regression: Append once published NoteSequenced AFTER releasing st->mu,
  // so a concurrent drain could claim the just-inserted records and run its
  // min-clamped NoteDrained first — the late NoteSequenced then leaked
  // window depth permanently (and with it the age bound, turning every
  // later group-mode append into a full-stall). Hammer appends against a
  // racing drainer (plus the flusher) and require the window to account
  // back to exactly zero.
  auto mgr = MakeManager(DurabilityMode::kGroup);
  const Uuid dir = NewDir(9);
  mgr->RegisterDir(dir);
  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    while (!stop.load()) {
      EXPECT_TRUE(mgr->CommitDir(dir).ok());
    }
  });
  std::vector<std::thread> appenders;
  for (int t = 0; t < 4; ++t) {
    appenders.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 300; ++i) {
        EXPECT_TRUE(
            mgr->Append(dir, {Entry("r" + std::to_string(t) + "." +
                                        std::to_string(i),
                                    t * 1000 + i)})
                .ok());
      }
    });
  }
  for (auto& a : appenders) a.join();
  stop.store(true);
  drainer.join();
  ASSERT_TRUE(mgr->CommitDir(dir).ok());
  const GroupWindow::Depth d = mgr->WindowDepth();
  EXPECT_EQ(d.records, 0u);
  EXPECT_EQ(d.bytes, 0u);
}

TEST_F(DurabilityModeTest, UnregisterCountsLeaseDrainOnlyWhenPending) {
  // Async mode: no flusher and a long commit timer, so whether records are
  // pending at Unregister time is fully deterministic.
  auto mgr = MakeManager(DurabilityMode::kAsync);
  const Uuid idle = NewDir(10);
  mgr->RegisterDir(idle);
  ASSERT_TRUE(mgr->UnregisterDir(idle).ok());
  // Nothing was pending: a clean release is not a drain.
  EXPECT_EQ(mgr->metrics().group_drains.value(), 0u);
  EXPECT_EQ(mgr->metrics().group_lease_drains.value(), 0u);

  const Uuid busy = NewDir(11);
  mgr->RegisterDir(busy);
  ASSERT_TRUE(mgr->Append(busy, {Entry("pending", 1)}).ok());
  ASSERT_TRUE(mgr->UnregisterDir(busy).ok());
  EXPECT_EQ(mgr->metrics().group_drains.value(), 1u);
  EXPECT_EQ(mgr->metrics().group_lease_drains.value(), 1u);
}

TEST_F(DurabilityModeTest, ResetDropsSequencedUnflushedAndCountsThem) {
  auto mgr = MakeManager(DurabilityMode::kAsync);
  const Uuid dir = NewDir(5);
  mgr->RegisterDir(dir);
  ASSERT_TRUE(mgr->Append(dir, {Entry("doomed1", 1), Entry("doomed2", 2)}).ok());
  EXPECT_EQ(mgr->WindowDepth().records, 2u);
  mgr->ResetDir(dir);  // deposed: the loss window is realized here
  EXPECT_EQ(mgr->WindowDepth().records, 0u);
  EXPECT_EQ(mgr->metrics().group_dropped_records.value(), 2u);
  EXPECT_FALSE(mgr->HasSurvivingJournal(dir));
}

TEST_F(DurabilityModeTest, CommitAllCountsPerDirectoryFlushErrors) {
  // Two directories' journal objects reject writes, one stays healthy:
  // journal.flush.errors must count each failing directory (not just the
  // first) and must not move on the healthy one or after healing.
  const std::vector<Uuid> bad = {NewDir(6), NewDir(7)};
  const Uuid good = NewDir(8);
  const std::vector<std::string> bad_keys = {JournalKey(bad[0]),
                                             JournalKey(bad[1])};
  auto armed = std::make_shared<std::atomic<bool>>(false);
  auto faulty = std::make_shared<FaultInjectionStore>(
      store_, [armed, bad_keys](std::string_view op, const std::string& key) {
        return armed->load() && op.substr(0, 3) == "put" &&
                       (key == bad_keys[0] || key == bad_keys[1])
                   ? Errc::kIo
                   : Errc::kOk;
      });
  auto faulty_prt = std::make_shared<Prt>(faulty);
  JournalConfig cfg = JournalConfig::ForTests();
  cfg.commit_interval = Seconds(5);
  JournalManager mgr(faulty_prt, cfg);
  for (const auto& d : bad) mgr.RegisterDir(d);
  mgr.RegisterDir(good);
  for (std::uint64_t i = 0; i < bad.size(); ++i) {
    ASSERT_TRUE(mgr.Append(bad[i], {Entry("lost", i)}).ok());
  }
  ASSERT_TRUE(mgr.Append(good, {Entry("kept", 9)}).ok());

  armed->store(true);
  EXPECT_FALSE(mgr.CommitAll().ok());
  EXPECT_EQ(mgr.metrics().flush_errors.value(), 2u);
  EXPECT_TRUE(mgr.HasSurvivingJournal(good));  // healthy dir still committed
  armed->store(false);
  ASSERT_TRUE(mgr.CommitAll().ok());
  EXPECT_EQ(mgr.metrics().flush_errors.value(), 2u);  // successes don't count
  for (const auto& d : bad) EXPECT_TRUE(mgr.HasSurvivingJournal(d));
}

TEST_F(DurabilityModeTest, IntrospectTextReportsModeAndDepth) {
  auto mgr = MakeManager(DurabilityMode::kGroup);
  const std::string text = mgr->IntrospectText();
  EXPECT_NE(text.find("durability mode: group"), std::string::npos);
  EXPECT_NE(text.find("dirty window:"), std::string::npos);
  EXPECT_NE(text.find("drains:"), std::string::npos);
}

TEST(GroupWindowTest, BackpressureReleasesOnDrain) {
  GroupWindowLimits lim;
  lim.max_records = 2;
  lim.max_age = Seconds(60);
  lim.max_stall = Seconds(60);  // must release via the drain, not the cap
  GroupWindow w(lim);
  w.NoteSequenced(5, 500);
  std::thread appender([&] { EXPECT_TRUE(w.Backpressure()); });
  SleepFor(Millis(20));
  w.NoteDrained(5, 500);
  appender.join();
  EXPECT_EQ(w.depth().records, 0u);
  EXPECT_FALSE(w.Backpressure());  // clean window: no wait at all
}

TEST(GroupWindowTest, StallCapBoundsTheWaitEvenWhenNothingDrains) {
  GroupWindowLimits lim;
  lim.max_records = 1;
  lim.max_age = Seconds(60);
  lim.max_stall = Millis(10);
  GroupWindow w(lim);
  w.NoteSequenced(3, 30);
  const TimePoint t0 = Now();
  EXPECT_TRUE(w.Backpressure());  // waited...
  EXPECT_LT(Now() - t0, Seconds(5));  // ...but gave up at the cap
  EXPECT_EQ(w.depth().records, 3u);   // still pending
}

TEST(GroupWindowTest, AwaitDirtyWakesOnSequenceAndReturnsFalseOnClose) {
  GroupWindow w(GroupWindowLimits{});
  std::thread flusher([&] {
    EXPECT_TRUE(w.AwaitDirty());   // first wake: work arrived
    w.NoteDrained(1, 10);
    EXPECT_FALSE(w.AwaitDirty());  // second wake: shutdown
  });
  SleepFor(Millis(10));
  w.NoteSequenced(1, 10);
  SleepFor(Millis(10));
  w.Close();
  flusher.join();
}

}  // namespace
}  // namespace arkfs::journal
