// Tests for the tiered data path: the tier-pointer codec (strict, same bar
// as the EC stripe manifest), TieringStore placement/migration semantics,
// the Migrator policy loop, crash safety of the copy->flip->sweep protocol
// under injected faults, and the StackBuilder's canonical-order enforcement.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>

#include "objstore/cluster_store.h"
#include "objstore/memory_store.h"
#include "objstore/stack_builder.h"
#include "objstore/tiering_store.h"
#include "objstore/wrappers.h"

namespace arkfs {
namespace {

Bytes Payload(int seed, std::size_t n) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((seed * 131 + static_cast<int>(i)) & 0xff);
  }
  return b;
}

bool IsDataKey(const std::string& key) {
  return !key.empty() && key.front() == 'd';
}

// --- tier pointer codec: strict decode, same bar as the EC manifest ---

TierPointer TestPointer() {
  TierPointer p;
  p.tier = Tier::kCold;
  p.gen = 41;
  p.object_size = 123456;
  p.content_crc = 0xA0B0C0D0u;
  return p;
}

TEST(TierPointerCodec, RoundTrip) {
  const TierPointer p = TestPointer();
  auto decoded = DecodeTierPointer(EncodeTierPointer(p));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->tier, p.tier);
  EXPECT_EQ(decoded->gen, p.gen);
  EXPECT_EQ(decoded->object_size, p.object_size);
  EXPECT_EQ(decoded->content_crc, p.content_crc);
}

TEST(TierPointerCodec, RejectsEveryTruncationAndBitFlip) {
  const Bytes encoded = EncodeTierPointer(TestPointer());
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    Bytes truncated(encoded.begin(),
                    encoded.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(DecodeTierPointer(truncated).ok())
        << "decoded a " << len << "-byte torn prefix";
  }
  Bytes padded = encoded;
  padded.push_back(0x5a);
  EXPECT_FALSE(DecodeTierPointer(padded).ok()) << "trailing garbage";
  for (std::size_t byte = 0; byte < encoded.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = encoded;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(DecodeTierPointer(flipped).ok())
          << "decoded with bit " << bit << " of byte " << byte << " flipped";
    }
  }
}

TEST(TierPointerCodec, KeyClassification) {
  const std::string key = "dabc.0000000000000001";
  std::string logical;
  EXPECT_EQ(ClassifyTierKey(key, &logical), TierKeyKind::kLogical);
  EXPECT_EQ(logical, key);
  EXPECT_EQ(ClassifyTierKey(TierPointerKey(key), &logical),
            TierKeyKind::kPointer);
  EXPECT_EQ(logical, key);
  EXPECT_EQ(ClassifyTierKey(ColdCopyKey(key), &logical),
            TierKeyKind::kColdCopy);
  EXPECT_EQ(logical, key);
  // Under an EC cold tier the cold copy's stripe internals live BELOW the
  // "..cold" sentinel; every one of them folds to the same logical key.
  EXPECT_EQ(ClassifyTierKey(ColdCopyKey(key) + "..ecm007", &logical),
            TierKeyKind::kColdCopy);
  EXPECT_EQ(logical, key);
  EXPECT_EQ(ClassifyTierKey(ColdCopyKey(key) + "..ecs0107.g00000001",
                            &logical),
            TierKeyKind::kColdCopy);
  EXPECT_EQ(logical, key);
}

TEST(PlacementEvidenceProbe, ClassifiesImagesByResidentKeys) {
  // Replica-only image: no evidence either way.
  MemoryObjectStore replica;
  ASSERT_TRUE(replica.Put("dabc.0001", Payload(1, 16)).ok());
  auto ev = ProbePlacementEvidence(replica);
  ASSERT_TRUE(ev.ok());
  EXPECT_FALSE(ev->ec_data_chunks);
  EXPECT_FALSE(ev->tier_records);

  // Data-path EC stripes: manifest keys with no "..cold" above them.
  MemoryObjectStore ec;
  ASSERT_TRUE(ec.Put("dabc.0001..ecm007", Payload(2, 16)).ok());
  ev = ProbePlacementEvidence(ec);
  ASSERT_TRUE(ev.ok());
  EXPECT_TRUE(ev->ec_data_chunks);
  EXPECT_FALSE(ev->tier_records);

  // Tiered image: pointers + cold copies (even EC-encoded ones — their
  // manifests sit under "..cold" and must NOT read as data-path EC).
  MemoryObjectStore tiered;
  ASSERT_TRUE(tiered.Put("dxyz.0002..tp", Payload(3, 16)).ok());
  ASSERT_TRUE(tiered.Put("dxyz.0002..cold..ecm007", Payload(4, 16)).ok());
  ev = ProbePlacementEvidence(tiered);
  ASSERT_TRUE(ev.ok());
  EXPECT_FALSE(ev->ec_data_chunks);
  EXPECT_TRUE(ev->tier_records);

  // A genuinely mixed image shows both.
  ASSERT_TRUE(tiered.Put("dabc.0001..ecm007", Payload(5, 16)).ok());
  ev = ProbePlacementEvidence(tiered);
  ASSERT_TRUE(ev.ok());
  EXPECT_TRUE(ev->ec_data_chunks);
  EXPECT_TRUE(ev->tier_records);
}

// --- TieringStore semantics over a memory store ---
//
// The cold tier is left null (cold copies are plain base objects) so every
// assertion sees raw residency; the EC-cold composition is covered by
// TieringSmoke below.

class TieringStoreTest : public ::testing::Test {
 protected:
  TieringStoreTest() {
    mem_ = std::make_shared<MemoryObjectStore>();
    counting_ = std::make_shared<CountingStore>(mem_, &registry_);
    TieringOptions options;
    options.should_tier = IsDataKey;
    options.metrics = &registry_;
    tiering_ = std::make_shared<TieringStore>(counting_, options);
  }

  obs::MetricsRegistry registry_;
  std::shared_ptr<MemoryObjectStore> mem_;
  std::shared_ptr<CountingStore> counting_;
  TieringStorePtr tiering_;
};

TEST_F(TieringStoreTest, HotPathAddsNoExtraIo) {
  const Bytes data = Payload(1, 512);
  ASSERT_TRUE(tiering_->Put("d-hot", data).ok());
  auto got = tiering_->Get("d-hot");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, data);
  // Fresh ingest + hot read are byte-identical to the un-tiered layout:
  // exactly one base put and one base get, no pointer records touched.
  const CountingStore::Counters c = counting_->Snapshot();
  EXPECT_EQ(c.puts, 1u);
  EXPECT_EQ(c.gets, 1u);
  EXPECT_FALSE(mem_->Head(TierPointerKey("d-hot")).ok());
}

TEST_F(TieringStoreTest, DemoteThenReadServesColdBytes) {
  const Bytes data = Payload(2, 2048);
  ASSERT_TRUE(tiering_->Put("d-x", data).ok());
  ASSERT_TRUE(tiering_->DemoteObject("d-x").ok());

  auto probe = tiering_->ProbeTier("d-x");
  ASSERT_TRUE(probe.ok());
  EXPECT_FALSE(probe->hot_exists);
  EXPECT_TRUE(probe->cold_exists);
  ASSERT_TRUE(probe->pointer.has_value());
  EXPECT_EQ(probe->pointer->tier, Tier::kCold);
  EXPECT_EQ(probe->pointer->gen, 1u);
  EXPECT_EQ(probe->pointer->object_size, data.size());
  EXPECT_EQ(probe->pointer->content_crc, Crc32c(data));

  auto got = tiering_->Get("d-x");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, data);
  auto ranged = tiering_->GetRange("d-x", 100, 50);
  ASSERT_TRUE(ranged.ok());
  EXPECT_EQ(*ranged, Bytes(data.begin() + 100, data.begin() + 150));

  const TieringStore::Counters c = tiering_->counters();
  EXPECT_EQ(c.demotions, 1u);
  EXPECT_EQ(c.demoted_bytes, data.size());
  EXPECT_GE(c.cold_gets, 2u);
}

TEST_F(TieringStoreTest, PromoteRestoresHotCopy) {
  const Bytes data = Payload(3, 1024);
  ASSERT_TRUE(tiering_->Put("d-p", data).ok());
  ASSERT_TRUE(tiering_->DemoteObject("d-p").ok());
  ASSERT_TRUE(tiering_->PromoteObject("d-p").ok());

  auto probe = tiering_->ProbeTier("d-p");
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(probe->hot_exists);
  EXPECT_FALSE(probe->cold_exists);
  ASSERT_TRUE(probe->pointer.has_value());
  EXPECT_EQ(probe->pointer->tier, Tier::kHot);
  EXPECT_EQ(probe->pointer->gen, 2u);  // monotonic across flips

  auto got = tiering_->Get("d-p");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, data);
  EXPECT_EQ(tiering_->counters().promotions, 1u);
  // Nothing cold left to promote.
  EXPECT_EQ(tiering_->PromoteObject("d-p").code(), Errc::kNoEnt);
}

TEST_F(TieringStoreTest, OverwriteAfterDemotionFlipsBack) {
  ASSERT_TRUE(tiering_->Put("d-o", Payload(4, 256)).ok());
  ASSERT_TRUE(tiering_->DemoteObject("d-o").ok());
  const Bytes fresh = Payload(5, 300);
  ASSERT_TRUE(tiering_->Put("d-o", fresh).ok());

  auto got = tiering_->Get("d-o");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, fresh);
  // The inline flip-back swept the stale cold copy and re-pointed hot.
  auto probe = tiering_->ProbeTier("d-o");
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(probe->hot_exists);
  EXPECT_FALSE(probe->cold_exists);
  ASSERT_TRUE(probe->pointer.has_value());
  EXPECT_EQ(probe->pointer->tier, Tier::kHot);
}

TEST_F(TieringStoreTest, DeleteRemovesEveryResidentCopy) {
  ASSERT_TRUE(tiering_->Put("d-del", Payload(6, 128)).ok());
  ASSERT_TRUE(tiering_->DemoteObject("d-del").ok());
  ASSERT_TRUE(tiering_->Delete("d-del").ok());
  EXPECT_FALSE(mem_->Head("d-del").ok());
  EXPECT_FALSE(mem_->Head(TierPointerKey("d-del")).ok());
  EXPECT_FALSE(mem_->Head(ColdCopyKey("d-del")).ok());
  EXPECT_EQ(tiering_->Get("d-del").status().code(), Errc::kNoEnt);
}

TEST_F(TieringStoreTest, ListFoldsInternalKeysToLogical) {
  ASSERT_TRUE(tiering_->Put("d-a", Payload(7, 64)).ok());
  ASSERT_TRUE(tiering_->Put("d-b", Payload(8, 64)).ok());
  ASSERT_TRUE(tiering_->DemoteObject("d-b").ok());
  auto listed = tiering_->List("d-");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(*listed, (std::vector<std::string>{"d-a", "d-b"}));
  auto tiered = tiering_->ListTiered("d-");
  ASSERT_TRUE(tiered.ok());
  EXPECT_EQ(*tiered, (std::vector<std::string>{"d-a", "d-b"}));
}

TEST_F(TieringStoreTest, NonTieredAndSentinelKeysPassThrough) {
  EXPECT_FALSE(tiering_->Tiers("meta-x"));       // predicate rejects
  EXPECT_FALSE(tiering_->Tiers("d-x..tp"));      // reserved namespaces
  EXPECT_FALSE(tiering_->Tiers("d-x..cold"));
  EXPECT_FALSE(tiering_->Tiers("d-x..ecm0000"));
  EXPECT_TRUE(tiering_->Tiers("d-x"));

  ASSERT_TRUE(tiering_->Put("meta-x", Payload(9, 32)).ok());
  EXPECT_TRUE(mem_->Head("meta-x").ok());
  EXPECT_EQ(tiering_->DemoteObject("meta-x").code(), Errc::kInval);
  EXPECT_EQ(tiering_->ProbeTier("meta-x").status().code(), Errc::kInval);
}

TEST_F(TieringStoreTest, HotCopyAlwaysWinsOverStaleColdCache) {
  // The cached tier says kCold (a real demotion set it), but newer hot
  // bytes land behind this instance's back — e.g. another process's Put
  // whose inline pointer flip never ran. Hot-first reads must serve the
  // new bytes anyway: the cache is an ordering hint, never a route.
  const Bytes v1 = Payload(90, 256);
  ASSERT_TRUE(tiering_->Put("d-stale", v1).ok());
  ASSERT_TRUE(tiering_->DemoteObject("d-stale").ok());
  auto got = tiering_->Get("d-stale");  // cold read: caches kCold
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, v1);

  const Bytes v2 = Payload(91, 300);
  ASSERT_TRUE(mem_->Put("d-stale", v2).ok());  // behind the cache's back
  got = tiering_->Get("d-stale");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, v2);
  auto ranged = tiering_->GetRange("d-stale", 10, 20);
  ASSERT_TRUE(ranged.ok());
  EXPECT_EQ(*ranged, Bytes(v2.begin() + 10, v2.begin() + 30));
  auto head = tiering_->Head("d-stale");
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->size, v2.size());
}

TEST_F(TieringStoreTest, StaleStatsBlobNeverRoutesReadsToStaleCold) {
  // Crash shape: demotion completed and its stats blob (tier=cold) was
  // checkpointed; then an overwrite's hot bytes landed but the process
  // died before the inline pointer flip / cold sweep. A restarted process
  // that loads the blob must serve the newer hot bytes, not the cold
  // orphan the blob still points at.
  const Bytes v1 = Payload(92, 256);
  ASSERT_TRUE(tiering_->Put("d-blob", v1).ok());
  ASSERT_TRUE(tiering_->DemoteObject("d-blob").ok());
  ASSERT_TRUE(tiering_->Get("d-blob").ok());  // cold read recorded
  const Bytes blob = tiering_->EncodeAccessStats();

  const Bytes v2 = Payload(93, 512);
  ASSERT_TRUE(mem_->Put("d-blob", v2).ok());  // acked pre-crash, no flip

  TieringOptions options;
  options.should_tier = IsDataKey;
  options.metrics = &registry_;
  TieringStore restarted(counting_, options);
  ASSERT_TRUE(restarted.LoadAccessStats(blob).ok());
  auto got = restarted.Get("d-blob");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, v2);
  auto head = restarted.Head("d-blob");
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->size, v2.size());
  // The advisory half of the blob (heat, ages) did survive the restart.
  auto probe = restarted.ProbeTier("d-blob");
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(probe->ever_accessed);
}

TEST_F(TieringStoreTest, PutRangeRechecksResidencyUnderLock) {
  // The cached tier says kHot, but a demotion (another instance = another
  // process/migrator epoch) swept the hot copy since. PutRange must probe
  // residency under the key lock and refuse — base stores create missing
  // objects on a range write, so trusting the cache would plant a
  // truncated hot fragment that hot-first reads serve as the whole object.
  const Bytes data = Payload(94, 400);
  ASSERT_TRUE(tiering_->Put("d-pr-race", data).ok());
  ASSERT_TRUE(tiering_->Get("d-pr-race").ok());  // caches kHot

  TieringOptions options;
  options.should_tier = IsDataKey;
  options.metrics = &registry_;
  TieringStore other(counting_, options);
  ASSERT_TRUE(other.DemoteObject("d-pr-race").ok());

  EXPECT_EQ(tiering_->PutRange("d-pr-race", 0, Payload(95, 16)).code(),
            Errc::kNotSup);
  // No hot fragment was created; the full cold bytes are still the object.
  EXPECT_FALSE(mem_->Head("d-pr-race").ok());
  auto got = tiering_->Get("d-pr-race");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, data);
}

TEST_F(TieringStoreTest, ListIncludesHotOnlyKeysWithDistinctColdStore) {
  // TieringOptions.cold may be a store with a namespace disjoint from the
  // hot store's; hot-only objects must not vanish from List/ListTiered.
  TieringOptions options;
  options.should_tier = IsDataKey;
  options.cold = std::make_shared<MemoryObjectStore>();
  TieringStore split(std::make_shared<MemoryObjectStore>(), options);
  ASSERT_TRUE(split.Put("d-hot-only", Payload(96, 64)).ok());
  ASSERT_TRUE(split.Put("d-goes-cold", Payload(97, 64)).ok());
  ASSERT_TRUE(split.DemoteObject("d-goes-cold").ok());

  auto listed = split.List("d-");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(*listed, (std::vector<std::string>{"d-goes-cold", "d-hot-only"}));
  auto tiered = split.ListTiered("d-");
  ASSERT_TRUE(tiered.ok());
  EXPECT_EQ(*tiered, (std::vector<std::string>{"d-goes-cold", "d-hot-only"}));
}

TEST_F(TieringStoreTest, TrackedKeyStateStaysBounded) {
  // The per-key state map (and the stats blob encoded from it) must not
  // grow with every chunk ever touched: past max_tracked_keys the
  // longest-idle entries are evicted (advisory loss only).
  TieringOptions options;
  options.should_tier = IsDataKey;
  options.max_tracked_keys = 16;  // 1 entry per shard
  auto mem = std::make_shared<MemoryObjectStore>();
  TieringStore bounded(mem, options);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        bounded.Put("d-churn." + std::to_string(i), Payload(i, 32)).ok());
  }
  std::size_t tracked = 0;
  ASSERT_EQ(std::sscanf(bounded.StatsText().c_str(), "tracked=%zu", &tracked),
            1);
  EXPECT_LE(tracked, 16u);
  // Reads and migration stay correct for evicted keys — state re-derives.
  auto got = bounded.Get("d-churn.0");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Payload(0, 32));
  ASSERT_TRUE(bounded.DemoteObject("d-churn.0").ok());
  got = bounded.Get("d-churn.0");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Payload(0, 32));
}

TEST_F(TieringStoreTest, PutRangeOnColdResidentIsNotSup) {
  const Bytes data = Payload(10, 512);
  ASSERT_TRUE(tiering_->Put("d-r", data).ok());
  ASSERT_TRUE(tiering_->PutRange("d-r", 0, Payload(11, 16)).ok());
  ASSERT_TRUE(tiering_->DemoteObject("d-r").ok());
  // Partial writes never land next to a cold-resident copy: the PRT falls
  // back to read-modify-write (a whole-object Put) on kNotSup.
  EXPECT_EQ(tiering_->PutRange("d-r", 0, Payload(12, 16)).code(),
            Errc::kNotSup);
}

TEST_F(TieringStoreTest, ReconcileCompletesCrashedDemotion) {
  // Crash state: demotion died between the flip and the sweep — both copies
  // resident, pointer covers the (byte-identical) hot copy.
  const Bytes data = Payload(13, 777);
  ASSERT_TRUE(mem_->Put("d-c", data).ok());
  ASSERT_TRUE(mem_->Put(ColdCopyKey("d-c"), data).ok());
  TierPointer p;
  p.tier = Tier::kCold;
  p.gen = 1;
  p.object_size = data.size();
  p.content_crc = Crc32c(data);
  ASSERT_TRUE(mem_->Put(TierPointerKey("d-c"), EncodeTierPointer(p)).ok());

  auto swept = tiering_->ReconcileObject("d-c");
  ASSERT_TRUE(swept.ok());
  EXPECT_EQ(*swept, 1);
  EXPECT_FALSE(mem_->Head("d-c").ok());  // sweep completed
  EXPECT_TRUE(mem_->Head(ColdCopyKey("d-c")).ok());
  auto got = tiering_->Get("d-c");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, data);
  // Second pass finds nothing to do.
  swept = tiering_->ReconcileObject("d-c");
  ASSERT_TRUE(swept.ok());
  EXPECT_EQ(*swept, 0);
}

TEST_F(TieringStoreTest, ReconcileHotWinsOnContentMismatch) {
  // Crash state: an overwrite landed after a demotion's flip — the hot copy
  // no longer matches the pointer's CRC, so it wins and the cold copy goes.
  const Bytes stale = Payload(14, 400);
  const Bytes fresh = Payload(15, 500);
  ASSERT_TRUE(mem_->Put("d-w", fresh).ok());
  ASSERT_TRUE(mem_->Put(ColdCopyKey("d-w"), stale).ok());
  TierPointer p;
  p.tier = Tier::kCold;
  p.gen = 3;
  p.object_size = stale.size();
  p.content_crc = Crc32c(stale);
  ASSERT_TRUE(mem_->Put(TierPointerKey("d-w"), EncodeTierPointer(p)).ok());

  auto swept = tiering_->ReconcileObject("d-w");
  ASSERT_TRUE(swept.ok());
  EXPECT_EQ(*swept, 1);
  EXPECT_FALSE(mem_->Head(ColdCopyKey("d-w")).ok());
  auto got = tiering_->Get("d-w");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, fresh);
  auto probe = tiering_->ProbeTier("d-w");
  ASSERT_TRUE(probe.ok());
  ASSERT_TRUE(probe->pointer.has_value());
  EXPECT_EQ(probe->pointer->tier, Tier::kHot);
  EXPECT_EQ(probe->pointer->gen, 4u);
}

TEST_F(TieringStoreTest, ReconcileReclaimsDanglingPointer) {
  TierPointer p;
  p.tier = Tier::kCold;
  p.gen = 9;
  ASSERT_TRUE(mem_->Put(TierPointerKey("d-gone"), EncodeTierPointer(p)).ok());
  auto swept = tiering_->ReconcileObject("d-gone");
  ASSERT_TRUE(swept.ok());
  EXPECT_EQ(*swept, 1);
  EXPECT_FALSE(mem_->Head(TierPointerKey("d-gone")).ok());
}

TEST_F(TieringStoreTest, CorruptPointerSalvagesViaColdCopy) {
  const Bytes data = Payload(16, 640);
  ASSERT_TRUE(tiering_->Put("d-s", data).ok());
  ASSERT_TRUE(tiering_->DemoteObject("d-s").ok());
  // Rot the pointer record; a fresh reader (no cached tier) must still
  // salvage the bytes through the cold copy.
  ASSERT_TRUE(mem_->Put(TierPointerKey("d-s"), AsBytes("garbage")).ok());
  TieringOptions options;
  options.should_tier = IsDataKey;
  options.metrics = &registry_;
  TieringStore fresh(counting_, options);
  auto got = fresh.Get("d-s");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, data);
}

TEST_F(TieringStoreTest, AccessStatsRoundTripAndStrictLoad) {
  ASSERT_TRUE(tiering_->Put("d-st", Payload(17, 64)).ok());
  ASSERT_TRUE(tiering_->Get("d-st").ok());
  ASSERT_TRUE(tiering_->DemoteObject("d-st").ok());
  ASSERT_TRUE(tiering_->Get("d-st").ok());  // a cold read
  EXPECT_TRUE(tiering_->ConsumeStatsDirty());

  const Bytes blob = tiering_->EncodeAccessStats();
  TieringOptions options;
  options.should_tier = IsDataKey;
  options.metrics = &registry_;
  TieringStore restarted(counting_, options);
  ASSERT_TRUE(restarted.LoadAccessStats(blob).ok());
  auto probe = restarted.ProbeTier("d-st");
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(probe->ever_accessed);
  EXPECT_EQ(probe->cold_reads, 1u);

  // The blob itself decodes strictly (the CALLER is what treats a load
  // failure as tolerable — it only resets demotion timers).
  Bytes corrupt = blob;
  corrupt[corrupt.size() / 2] ^= 0x01;
  TieringStore scratch(counting_, options);
  EXPECT_FALSE(scratch.LoadAccessStats(corrupt).ok());
  EXPECT_FALSE(scratch.LoadAccessStats(AsBytes("xy")).ok());
}

// --- Migrator policy ---

TEST(MigratorTest, ForcedDemotionAndHeatDrivenPromotion) {
  auto mem = std::make_shared<MemoryObjectStore>();
  obs::MetricsRegistry registry;
  TieringOptions topts;
  topts.should_tier = IsDataKey;
  topts.metrics = &registry;
  auto tiering = std::make_shared<TieringStore>(mem, topts);
  MigratorOptions mopts;
  mopts.threads = 4;
  mopts.demote_after = Nanos(0);  // demote on sight
  mopts.promote_reads = 2;
  mopts.metrics = &registry;
  Migrator migrator(tiering, mopts);

  const int kObjects = 6;
  std::vector<Bytes> payloads;
  for (int i = 0; i < kObjects; ++i) {
    payloads.push_back(Payload(20 + i, 256 + 17 * i));
    ASSERT_TRUE(
        tiering->Put("d-mig." + std::to_string(i), payloads.back()).ok());
  }

  auto report = migrator.RunOnce();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->scanned, static_cast<std::uint64_t>(kObjects));
  EXPECT_EQ(report->demoted, static_cast<std::uint64_t>(kObjects));
  EXPECT_EQ(report->races, 0u);

  // Two cold reads per key cross the promote threshold; bytes stay intact.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < kObjects; ++i) {
      auto got = tiering->Get("d-mig." + std::to_string(i));
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, payloads[static_cast<std::size_t>(i)]);
    }
  }
  report = migrator.RunOnce();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->promoted, static_cast<std::uint64_t>(kObjects));
  for (int i = 0; i < kObjects; ++i) {
    auto probe = tiering->ProbeTier("d-mig." + std::to_string(i));
    ASSERT_TRUE(probe.ok());
    EXPECT_TRUE(probe->hot_exists);
    EXPECT_FALSE(probe->cold_exists);
  }
  const TieringStore::Counters c = tiering->counters();
  EXPECT_EQ(c.demotions, static_cast<std::uint64_t>(kObjects));
  EXPECT_EQ(c.promotions, static_cast<std::uint64_t>(kObjects));
}

TEST(MigratorTest, SeedsUnseenKeysBeforeDemoting) {
  // Pre-existing objects (a restart lost the stats blob) must NOT be
  // demoted on an unknown age: the first pass seeds their clocks, and only
  // a later pass — one full demote_after later — demotes them.
  auto mem = std::make_shared<MemoryObjectStore>();
  ASSERT_TRUE(mem->Put("d-old", Payload(30, 128)).ok());
  TieringOptions topts;
  topts.should_tier = IsDataKey;
  auto tiering = std::make_shared<TieringStore>(mem, topts);
  MigratorOptions mopts;
  mopts.threads = 2;
  mopts.demote_after = Millis(30);
  mopts.promote_reads = 0;  // promotion disabled
  Migrator migrator(tiering, mopts);

  auto report = migrator.RunOnce();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->scanned, 1u);
  EXPECT_EQ(report->demoted, 0u);
  EXPECT_TRUE(mem->Head("d-old").ok());

  SleepFor(Millis(40));
  report = migrator.RunOnce();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->demoted, 1u);
  EXPECT_FALSE(mem->Head("d-old").ok());
  EXPECT_TRUE(mem->Head(ColdCopyKey("d-old")).ok());
}

// --- crash safety: every prefix of copy->flip->sweep keeps acked bytes ---
//
// A countdown fault hook cuts the store dead after N operations, freezing
// the migration at every possible point — exactly the states a crash would
// leave behind. After each "crash": reads must return the acked bytes,
// reconcile must converge to a single resident copy, and a second
// reconcile must find nothing left to sweep.

class Countdown {
 public:
  FaultInjectionStore::FaultFn Hook() {
    return [this](std::string_view, const std::string&) {
      if (!armed_.load(std::memory_order_relaxed)) return Errc::kOk;
      if (budget_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
        return Errc::kIo;
      }
      return Errc::kOk;
    };
  }
  void Arm(int ops) {
    budget_.store(ops, std::memory_order_relaxed);
    armed_.store(true, std::memory_order_relaxed);
  }
  void Disarm() { armed_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> armed_{false};
  std::atomic<int> budget_{0};
};

class TieringCrashSafetyTest : public ::testing::Test {
 protected:
  TieringCrashSafetyTest() {
    mem_ = std::make_shared<MemoryObjectStore>();
    faulty_ = std::make_shared<FaultInjectionStore>(mem_, countdown_.Hook());
    TieringOptions options;
    options.should_tier = IsDataKey;
    tiering_ = std::make_shared<TieringStore>(faulty_, options);
  }

  // Drives reconcile to a fixed point and checks the invariants every crash
  // state must satisfy afterwards: the acked bytes are readable and at most
  // one data copy is resident.
  void VerifyConverges(const std::string& key, const Bytes& expect) {
    auto got = tiering_->Get(key);
    ASSERT_TRUE(got.ok()) << key << ": acked bytes lost after crash";
    EXPECT_EQ(*got, expect) << key;
    auto swept = tiering_->ReconcileObject(key);
    ASSERT_TRUE(swept.ok()) << key;
    swept = tiering_->ReconcileObject(key);
    ASSERT_TRUE(swept.ok()) << key;
    EXPECT_EQ(*swept, 0) << key << ": reconcile did not converge";
    auto probe = tiering_->ProbeTier(key);
    ASSERT_TRUE(probe.ok()) << key;
    EXPECT_FALSE(probe->hot_exists && probe->cold_exists)
        << key << ": double-resident after reconcile";
    EXPECT_TRUE(probe->hot_exists || probe->cold_exists) << key;
    got = tiering_->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, expect) << key;
  }

  Countdown countdown_;
  std::shared_ptr<MemoryObjectStore> mem_;
  std::shared_ptr<FaultInjectionStore> faulty_;
  TieringStorePtr tiering_;
};

TEST_F(TieringCrashSafetyTest, DemotionCrashesAtEveryStep) {
  // Demotion touches the store ~5 times (hot get, cold put, pointer get,
  // pointer put, hot delete); budgets 0..6 cover every torn prefix plus the
  // clean run.
  for (int budget = 0; budget <= 6; ++budget) {
    const std::string key = "d-crash-demote-" + std::to_string(budget);
    const Bytes data = Payload(40 + budget, 300 + 7 * budget);
    ASSERT_TRUE(tiering_->Put(key, data).ok());
    countdown_.Arm(budget);
    (void)tiering_->DemoteObject(key);  // may fail at any step: a "crash"
    countdown_.Disarm();
    VerifyConverges(key, data);
  }
}

TEST_F(TieringCrashSafetyTest, PromotionCrashesAtEveryStep) {
  for (int budget = 0; budget <= 6; ++budget) {
    const std::string key = "d-crash-promote-" + std::to_string(budget);
    const Bytes data = Payload(50 + budget, 300 + 7 * budget);
    ASSERT_TRUE(tiering_->Put(key, data).ok());
    ASSERT_TRUE(tiering_->DemoteObject(key).ok());
    countdown_.Arm(budget);
    (void)tiering_->PromoteObject(key);
    countdown_.Disarm();
    VerifyConverges(key, data);
  }
}

TEST_F(TieringCrashSafetyTest, OverwriteAfterCrashedDemotionWins) {
  for (int budget = 0; budget <= 6; ++budget) {
    const std::string key = "d-crash-ow-" + std::to_string(budget);
    ASSERT_TRUE(tiering_->Put(key, Payload(60 + budget, 200)).ok());
    countdown_.Arm(budget);
    (void)tiering_->DemoteObject(key);
    countdown_.Disarm();
    // New acked bytes land on top of whatever the crash left behind; they
    // must win over any stale cold copy or pointer.
    const Bytes fresh = Payload(70 + budget, 250);
    ASSERT_TRUE(tiering_->Put(key, fresh).ok());
    VerifyConverges(key, fresh);
  }
}

TEST_F(TieringCrashSafetyTest, MigratorPassSweepsCrashLeftovers) {
  // Leave a mix of crash states behind, then let one unpaced migrator pass
  // reconcile the lot (the "orphans swept next pass" acceptance).
  std::vector<std::pair<std::string, Bytes>> acked;
  for (int budget = 1; budget <= 4; ++budget) {
    const std::string key = "d-sweep-" + std::to_string(budget);
    const Bytes data = Payload(80 + budget, 128);
    ASSERT_TRUE(tiering_->Put(key, data).ok());
    countdown_.Arm(budget);
    (void)tiering_->DemoteObject(key);
    countdown_.Disarm();
    acked.emplace_back(key, data);
  }
  MigratorOptions mopts;
  mopts.threads = 2;
  mopts.demote_after = Seconds(3600);  // no fresh demotions this pass
  mopts.promote_reads = 0;
  Migrator migrator(tiering_, mopts);
  auto report = migrator.RunOnce();
  ASSERT_TRUE(report.ok());
  // A second pass finds a clean namespace.
  report = migrator.RunOnce();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->orphans_swept, 0u);
  for (const auto& [key, data] : acked) {
    auto probe = tiering_->ProbeTier(key);
    ASSERT_TRUE(probe.ok());
    EXPECT_FALSE(probe->hot_exists && probe->cold_exists) << key;
    auto got = tiering_->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, data) << key;
  }
}

// --- StackBuilder: the one canonical assembly path ---

TEST(StackBuilderTest, CanonicalFullStackBuilds) {
  obs::MetricsRegistry registry;
  TieringOptions topts;
  topts.should_tier = IsDataKey;
  ChaosConfig quiet;  // all rates zero: composition only
  auto built = objstore::StackBuilder()
                   .Metrics(&registry)
                   .Base(std::make_shared<MemoryObjectStore>())
                   .Tiering(topts, MigratorOptions::ForTests())
                   .Scrub(ScrubberOptions::ForTests())
                   .Chaos(quiet)
                   .Retrying(RetryPolicy::ForTests())
                   .Latency()
                   .Tracing()
                   .Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const objstore::StoreStack& stack = *built;
  EXPECT_NE(stack.base, nullptr);
  EXPECT_NE(stack.ec, nullptr);  // the synthesized cold tier
  EXPECT_NE(stack.tiering, nullptr);
  EXPECT_NE(stack.migrator, nullptr);
  EXPECT_NE(stack.scrubber, nullptr);
  EXPECT_NE(stack.chaos, nullptr);
  EXPECT_NE(stack.retrying, nullptr);
  EXPECT_NE(stack.latency, nullptr);
  EXPECT_NE(stack.tracing, nullptr);
  ASSERT_EQ(stack.store, stack.tracing);  // top of the stack

  const Bytes data = Payload(90, 128);
  ASSERT_TRUE(stack.store->Put("d-sb", data).ok());
  auto got = stack.store->Get("d-sb");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, data);
}

TEST(StackBuilderTest, ClusterEcScrubExposesTypedHandles) {
  auto built = objstore::StackBuilder()
                   .Cluster(ClusterConfig::Instant(6))
                   .Ec(EcStoreOptions{})
                   .Scrub(ScrubberOptions::ForTests())
                   .Build();
  ASSERT_TRUE(built.ok());
  EXPECT_NE(built->cluster, nullptr);
  EXPECT_NE(built->ec, nullptr);
  EXPECT_NE(built->scrubber, nullptr);
  EXPECT_EQ(built->tiering, nullptr);
  EXPECT_EQ(built->store, built->ec);
}

TEST(StackBuilderTest, RejectsEveryOrderViolation) {
  auto mem = [] { return std::make_shared<MemoryObjectStore>(); };
  // Empty builder: nothing to stand on.
  EXPECT_EQ(objstore::StackBuilder().Build().status().code(), Errc::kInval);
  // A decorator before the bottom layer.
  EXPECT_FALSE(objstore::StackBuilder()
                   .Retrying(RetryPolicy::ForTests())
                   .Base(mem())
                   .Build()
                   .ok());
  // Reordered stages (retrying must sit ABOVE chaos).
  EXPECT_FALSE(objstore::StackBuilder()
                   .Base(mem())
                   .Retrying(RetryPolicy::ForTests())
                   .Chaos(ChaosConfig{})
                   .Build()
                   .ok());
  // Repeated stage.
  EXPECT_FALSE(objstore::StackBuilder().Base(mem()).Base(mem()).Build().ok());
  // Two data-placement layers.
  TieringOptions topts;
  EXPECT_FALSE(objstore::StackBuilder()
                   .Base(mem())
                   .Ec(EcStoreOptions{})
                   .Tiering(topts, MigratorOptions::ForTests())
                   .Build()
                   .ok());
  // Scrub with no EC tier below it.
  EXPECT_FALSE(objstore::StackBuilder()
                   .Base(mem())
                   .Scrub(ScrubberOptions::ForTests())
                   .Build()
                   .ok());
  EXPECT_FALSE(objstore::StackBuilder().Base(nullptr).Build().ok());
}

// --- TieringSmoke: the ctest gate (ctest -L chaos) ---
//
// The full composition the cluster deploys under DataPlacement::kTiered:
// cluster -> tiering with an EC cold tier. Ingest hot, demote (encode), read
// the cold copies through a node outage (reconstruct-on-read), then promote
// on read heat — one fast end-to-end pass CI can gate merges on.

TEST(TieringSmoke, DemoteReadUnderOutagePromote) {
  obs::MetricsRegistry registry;
  TieringOptions topts;
  topts.should_tier = IsDataKey;
  MigratorOptions mopts;
  mopts.threads = 4;
  mopts.demote_after = Nanos(0);
  mopts.promote_reads = 2;
  auto built = objstore::StackBuilder()
                   .Metrics(&registry)
                   .Cluster(ClusterConfig::Instant(8))
                   .Tiering(topts, mopts)
                   .Build();
  ASSERT_TRUE(built.ok());
  objstore::StoreStack stack = *built;
  ASSERT_NE(stack.cluster, nullptr);
  ASSERT_NE(stack.ec, nullptr);

  const int kObjects = 8;
  std::vector<Bytes> payloads;
  for (int i = 0; i < kObjects; ++i) {
    payloads.push_back(Payload(100 + i, 4096 + 257 * i));
    ASSERT_TRUE(
        stack.store->Put("dsmoke." + std::to_string(i), payloads.back()).ok());
  }

  // Demote everything: the cold copies are EC-encoded behind the pointers.
  auto report = stack.migrator->RunOnce();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->demoted, static_cast<std::uint64_t>(kObjects));
  for (int i = 0; i < kObjects; ++i) {
    auto probe = stack.tiering->ProbeTier("dsmoke." + std::to_string(i));
    ASSERT_TRUE(probe.ok());
    EXPECT_FALSE(probe->hot_exists);
    EXPECT_TRUE(probe->cold_exists);
  }

  // Cold reads survive a node outage (k=4, m=2 tolerates it).
  stack.cluster->SetNodeDown(0, true);
  for (int i = 0; i < kObjects; ++i) {
    auto got = stack.store->Get("dsmoke." + std::to_string(i));
    ASSERT_TRUE(got.ok()) << "cold read failed with node 0 down";
    EXPECT_EQ(*got, payloads[static_cast<std::size_t>(i)]);
  }
  stack.cluster->SetNodeDown(0, false);

  // A second read round crosses the promote threshold.
  for (int i = 0; i < kObjects; ++i) {
    ASSERT_TRUE(stack.store->Get("dsmoke." + std::to_string(i)).ok());
  }
  report = stack.migrator->RunOnce();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->promoted, static_cast<std::uint64_t>(kObjects));
  for (int i = 0; i < kObjects; ++i) {
    const std::string key = "dsmoke." + std::to_string(i);
    auto probe = stack.tiering->ProbeTier(key);
    ASSERT_TRUE(probe.ok());
    EXPECT_TRUE(probe->hot_exists);
    EXPECT_FALSE(probe->cold_exists);
    auto got = stack.store->Get(key);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, payloads[static_cast<std::size_t>(i)]);
  }
  const TieringStore::Counters c = stack.tiering->counters();
  EXPECT_EQ(c.demotions, static_cast<std::uint64_t>(kObjects));
  EXPECT_EQ(c.promotions, static_cast<std::uint64_t>(kObjects));
  EXPECT_EQ(c.races, 0u);
}

}  // namespace
}  // namespace arkfs
