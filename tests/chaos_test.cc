// Chaos suite: end-to-end fault-injection workloads over the retry/backoff
// store stack (ISSUE: survive flaky and dead storage nodes).
//
// Two lanes, both in this binary (ctest label "chaos"):
//  * deterministic lane — every test below with a hardcoded seed, so a
//    failure reproduces exactly;
//  * randomized lane — RandomizedSeedSweep picks a fresh seed per run (or
//    honours ARKFS_CHAOS_SEED=<n>) and ALWAYS logs it, so any failure can be
//    replayed with the printed seed.
//
// The invariant every workload asserts: zero lost acked ops. An op counts
// as acked only once fsync (journal commit + data writeback) returned kOk;
// acked state must survive transient faults, torn writes, and rolling node
// outages. Un-acked ops may vanish — that is the contract fsync gives.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/env_config.h"
#include "core/cluster.h"
#include "journal/record.h"
#include "obs/metrics.h"
#include "objstore/async_io.h"
#include "objstore/chaos_store.h"
#include "objstore/cluster_store.h"
#include "objstore/memory_store.h"
#include "objstore/retrying_store.h"
#include "objstore/stack_builder.h"
#include "objstore/wrappers.h"

namespace arkfs {
namespace {

Bytes Payload(int i, std::size_t n = 512) {
  Bytes b(n);
  for (std::size_t j = 0; j < n; ++j) {
    b[j] = static_cast<std::uint8_t>((j * 31 + i * 7) & 0xFF);
  }
  return b;
}

// --- satellite: FaultInjectionStore must intercept every primitive ---

TEST(FaultInjectionCoverage, EveryPrimitiveReachesTheHookWithItsOwnName) {
  auto base = std::make_shared<MemoryObjectStore>();
  std::vector<std::string> seen;
  auto faulty = std::make_shared<FaultInjectionStore>(
      base, [&](std::string_view op, const std::string&) {
        seen.emplace_back(op);
        return Errc::kOk;
      });
  ASSERT_TRUE(faulty->Put("k", Bytes(16, 1)).ok());
  ASSERT_TRUE(faulty->PutRange("k", 4, Bytes(4, 2)).ok());
  ASSERT_TRUE(faulty->Get("k").ok());
  ASSERT_TRUE(faulty->GetRange("k", 0, 8).ok());
  ASSERT_TRUE(faulty->Head("k").ok());
  ASSERT_TRUE(faulty->List("").ok());
  ASSERT_TRUE(faulty->Delete("k").ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"put", "putrange", "get",
                                            "getrange", "head", "list",
                                            "delete"}));
}

// --- retry engine semantics ---

TEST(RetryStoreTest, RidesOutTransientFaults) {
  auto chaos = std::make_shared<ChaosStore>(
      std::make_shared<MemoryObjectStore>(), ChaosConfig::Flaky(101, 20.0));
  obs::MetricsRegistry registry;
  RetryingStore store(chaos, RetryPolicy::ForTests(), &registry);

  for (int i = 0; i < 200; ++i) {
    const std::string key = "o" + std::to_string(i);
    ASSERT_TRUE(store.Put(key, Payload(i)).ok()) << key;
  }
  for (int i = 0; i < 200; ++i) {
    auto got = store.Get("o" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(*got, Payload(i));
  }
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_GT(snap.counter("objstore.retry.retries"), 0u);  // chaos actually hit
  EXPECT_EQ(snap.counter("objstore.retry.giveups"), 0u);  // cap never hit
  EXPECT_GT(chaos->counters().transient_faults, 0u);
}

TEST(RetryStoreTest, SemanticErrorsAreNotRetried) {
  auto chaos = std::make_shared<ChaosStore>(
      std::make_shared<MemoryObjectStore>(), ChaosConfig{.seed = 5});
  obs::MetricsRegistry registry;
  RetryingStore store(chaos, RetryPolicy::ForTests(), &registry);

  // kNoEnt is an answer, not a fault: exactly one attempt.
  EXPECT_EQ(store.Get("missing").code(), Errc::kNoEnt);
  EXPECT_EQ(registry.Snapshot().counter("objstore.retry.attempts"), 1u);
  EXPECT_EQ(registry.Snapshot().counter("objstore.retry.retries"), 0u);
}

TEST(RetryStoreTest, PersistentFaultExhaustsTheAttemptCap) {
  auto chaos = std::make_shared<ChaosStore>(
      std::make_shared<MemoryObjectStore>(), ChaosConfig{.seed = 6});
  chaos->AddPersistentFault("dead", Errc::kIo);
  RetryPolicy policy = RetryPolicy::ForTests();
  obs::MetricsRegistry registry;
  RetryingStore store(chaos, policy, &registry);

  EXPECT_EQ(store.Get("dead").code(), Errc::kIo);
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("objstore.retry.attempts"),
            static_cast<std::uint64_t>(policy.max_attempts));
  EXPECT_EQ(snap.counter("objstore.retry.giveups"), 1u);

  // A dead object that comes back is served again (with retries intact).
  chaos->ClearPersistentFault("dead");
  ASSERT_TRUE(store.Put("dead", Payload(1)).ok());
  EXPECT_TRUE(store.Get("dead").ok());
}

TEST(RetryStoreTest, DeadlineCutsRetriesShort) {
  auto chaos = std::make_shared<ChaosStore>(
      std::make_shared<MemoryObjectStore>(), ChaosConfig{.seed = 7});
  chaos->AddPersistentFault("dead", Errc::kTimedOut);
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.initial_backoff = Millis(5);
  policy.deadline = Millis(20);
  obs::MetricsRegistry registry;
  RetryingStore store(chaos, policy, &registry);

  EXPECT_EQ(store.Get("dead").code(), Errc::kTimedOut);
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("objstore.retry.deadline_hits"), 1u);
  // Nowhere near the attempt cap.
  EXPECT_LT(snap.counter("objstore.retry.attempts"), 16u);
}

TEST(ChaosStoreTest, TornPutLeavesStrictPrefixAndFails) {
  auto base = std::make_shared<MemoryObjectStore>();
  ChaosConfig cfg;
  cfg.seed = 11;
  cfg.torn_put_rate = 1.0;
  ChaosStore chaos(base, cfg);

  EXPECT_EQ(chaos.Put("t", Payload(0, 256)).code(), Errc::kIo);
  EXPECT_GE(chaos.counters().torn_puts, 1u);
  auto landed = base->Get("t");
  if (landed.ok()) {
    EXPECT_LT(landed->size(), 256u);  // strict prefix, never the full object
  }
  // Idempotent full rewrite repairs the tear — what RetryingStore relies on.
  ChaosConfig clean;
  clean.seed = 11;
  ChaosStore healed(base, clean);
  ASSERT_TRUE(healed.Put("t", Payload(0, 256)).ok());
  EXPECT_EQ(*base->Get("t"), Payload(0, 256));
}

TEST(ChaosStoreTest, TornJournalTailNeverCommits) {
  // The journal's CRC framing is the defence against torn appends: a torn
  // tail parses as "those bytes never committed", earlier txns stay intact.
  journal::Transaction t1;
  t1.seq = 1;
  t1.records.push_back(journal::Record::DirRemove(DeterministicUuid(1, 1)));
  journal::Transaction t2;
  t2.seq = 2;
  t2.records.push_back(journal::Record::DirRemove(DeterministicUuid(2, 2)));
  Bytes full = journal::EncodeTransaction(t1);
  const Bytes second = journal::EncodeTransaction(t2);
  full.insert(full.end(), second.begin(), second.end());

  Bytes torn(full.begin(), full.end() - static_cast<long>(second.size() / 2));
  const auto parsed = journal::ParseJournal(torn);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].seq, 1u);
}

// --- async batched path with retries ---

TEST(AsyncIoRetryTest, BatchesRideOutTransientFaults) {
  auto chaos = std::make_shared<ChaosStore>(
      std::make_shared<MemoryObjectStore>(), ChaosConfig::Flaky(21, 20.0));
  obs::MetricsRegistry registry;
  AsyncIoConfig cfg = AsyncIoConfig::ForTests();
  cfg.retry = RetryPolicy::ForTests();
  cfg.metrics = &registry;
  AsyncObjectIo io(chaos, cfg);

  std::vector<Bytes> payloads;
  std::vector<BatchPut> puts;
  for (int i = 0; i < 64; ++i) {
    payloads.push_back(Payload(i));
  }
  for (int i = 0; i < 64; ++i) {
    puts.push_back({"b" + std::to_string(i), payloads[i]});
  }
  auto put_result = io.MultiPut(std::move(puts));
  ASSERT_TRUE(put_result.status.ok()) << put_result.status.ToString();

  std::vector<BatchGet> gets;
  for (int i = 0; i < 64; ++i) {
    gets.push_back({"b" + std::to_string(i)});
  }
  auto get_result = io.MultiGet(std::move(gets));
  ASSERT_TRUE(get_result.status.ok()) << get_result.status.ToString();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(*get_result.results[i], Payload(i)) << i;
  }

  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_GT(snap.counter("asyncio.retry.retries"), 0u);
  EXPECT_EQ(snap.counter("asyncio.retry.giveups"), 0u);
  EXPECT_EQ(snap.counter("asyncio.retry.deadline_hits"), 0u);
}

// --- satellite regression: journal commit failure must not lose records ---

TEST(JournalFaultTest, FailedFsyncCommitIsRedrivenNotLost) {
  auto base = std::make_shared<MemoryObjectStore>();
  std::atomic<bool> fail_journal_writes{false};
  auto faulty = std::make_shared<FaultInjectionStore>(
      base, [&](std::string_view op, const std::string& key) {
        return (fail_journal_writes && op.starts_with("put") &&
                !key.empty() && key[0] == 'j')
                   ? Errc::kIo
                   : Errc::kOk;
      });
  auto cluster = ArkFsCluster::Create(faulty, ArkFsClusterOptions::ForTests())
                     .value();
  const UserCred root = UserCred::Root();
  auto c1 = cluster->AddClient("writer").value();

  OpenOptions create;
  create.write = true;
  create.create = true;
  auto fd = c1->Open("/precious", create, root);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(c1->Write(*fd, 0, AsBytes("must-survive")).ok());

  // Journal object writes fail: fsync reports the failure and the create/
  // size records must stay committable, not silently evaporate.
  fail_journal_writes = true;
  EXPECT_FALSE(c1->Fsync(*fd).ok());

  // Store heals; the SAME records commit on the next fsync.
  fail_journal_writes = false;
  ASSERT_TRUE(c1->Fsync(*fd).ok());
  ASSERT_TRUE(c1->Close(*fd).ok());
  c1->CrashHard();

  SleepFor(cluster->lease_manager().config().lease_period + Millis(100));
  auto c2 = cluster->AddClient("recoverer").value();
  auto data = c2->ReadWholeFile("/precious", root);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "must-survive");
}

// --- end-to-end chaos workloads ---

// Runs an mdtest-style create/write/fsync workload over a chaotic store at
// `fault_percent`, returning the paths acked by fsync. Every helper-level
// assert is on the INVARIANT (acked => verifiable), not on op success: under
// chaos individual ops may fail, they just must fail honestly.
std::vector<std::string> RunAckedWorkload(Client& fs, const UserCred& root,
                                          int dirs, int files_per_dir) {
  std::vector<std::string> acked;
  OpenOptions create;
  create.write = true;
  create.create = true;
  for (int d = 0; d < dirs; ++d) {
    const std::string dir = "/chaos" + std::to_string(d);
    if (!fs.MkdirAll(dir, 0755, root).ok()) continue;
    for (int f = 0; f < files_per_dir; ++f) {
      const std::string path = dir + "/f" + std::to_string(f);
      auto fd = fs.Open(path, create, root);
      if (!fd.ok()) continue;
      const bool wrote = fs.Write(*fd, 0, Payload(d * 1000 + f)).ok();
      const bool synced = wrote && fs.Fsync(*fd).ok();
      (void)fs.Close(*fd);
      if (synced) acked.push_back(path);
    }
  }
  return acked;
}

void VerifyAcked(Client& fs, const UserCred& root,
                 const std::vector<std::string>& acked) {
  for (const auto& path : acked) {
    const auto slash = path.find('/', 1);
    const int d = std::stoi(path.substr(6, slash - 6));
    const int f = std::stoi(path.substr(path.rfind('f') + 1));
    auto data = fs.ReadWholeFile(path, root);
    ASSERT_TRUE(data.ok()) << path << ": " << data.status().ToString();
    EXPECT_EQ(*data, Payload(d * 1000 + f)) << path;
  }
}

class ChaosE2eTest : public ::testing::Test {
 protected:
  UserCred root_ = UserCred::Root();
};

TEST_F(ChaosE2eTest, MdtestWorkloadAtFivePercentFaults) {
  obs::MetricsRegistry registry;
  auto stack = objstore::StackBuilder()
                   .Metrics(&registry)
                   .Base(std::make_shared<MemoryObjectStore>())
                   .Chaos(ChaosConfig::Flaky(42, 5.0))
                   .Retrying(RetryPolicy::ForTests())
                   .Build()
                   .value();
  auto cluster =
      ArkFsCluster::Create(stack.store, ArkFsClusterOptions::ForTests())
          .value();
  auto fs = cluster->AddClient().value();

  const auto acked = RunAckedWorkload(*fs, root_, 4, 25);
  // At 5% faults behind an 8-attempt retry stack the workload should
  // complete in full, with real retries absorbed along the way.
  EXPECT_EQ(acked.size(), 100u);
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_GT(snap.counter("objstore.retry.retries"), 0u);
  EXPECT_EQ(snap.counter("objstore.retry.giveups"), 0u);
  // Retry overhead stays within budget: ~5% of attempts are re-runs; allow
  // generous slack before calling it runaway.
  EXPECT_LT(snap.counter("objstore.retry.retries"),
            snap.counter("objstore.retry.attempts") / 4);

  ASSERT_TRUE(fs->DropCaches().ok());
  VerifyAcked(*fs, root_, acked);
}

TEST_F(ChaosE2eTest, RollingNodeOutageLosesNoAckedOps) {
  obs::MetricsRegistry registry;
  ClusterConfig cc = ClusterConfig::Instant(4);
  cc.replication = 3;
  cc.metrics = &registry;
  auto nodes = std::make_shared<ClusterObjectStore>(cc);
  auto chaos = std::make_shared<ChaosStore>(nodes, ChaosConfig::Flaky(77, 1.0));
  auto retrying = std::make_shared<RetryingStore>(
      chaos, RetryPolicy::ForTests(), &registry);
  auto cluster =
      ArkFsCluster::Create(retrying, ArkFsClusterOptions::ForTests()).value();
  auto fs = cluster->AddClient().value();

  // Rolling outage: each storage node goes down for 15 ms, twice around the
  // ring, while the workload keeps writing.
  std::atomic<bool> outage_done{false};
  std::thread outages([&] {
    for (int cycle = 0; cycle < 2; ++cycle) {
      for (int node = 0; node < cc.num_nodes; ++node) {
        nodes->SetNodeDown(node, true);
        SleepFor(Millis(15));
        nodes->SetNodeDown(node, false);
        SleepFor(Millis(5));
      }
    }
    outage_done = true;
  });

  std::vector<std::string> acked;
  OpenOptions create;
  create.write = true;
  create.create = true;
  ASSERT_TRUE(fs->MkdirAll("/chaos0", 0755, root_).ok());
  for (int i = 0; !outage_done.load() || i < 20; ++i) {
    const std::string path = "/chaos0/f" + std::to_string(i);
    auto fd = fs->Open(path, create, root_);
    if (!fd.ok()) continue;
    const bool wrote = fs->Write(*fd, 0, Payload(i)).ok();
    const bool synced = wrote && fs->Fsync(*fd).ok();
    (void)fs->Close(*fd);
    if (synced) acked.push_back(path);
  }
  outages.join();

  // The outages must actually have been felt.
  EXPECT_GT(registry.Snapshot().counter("cluster.outage.rejected_ops"), 0u);
  EXPECT_GT(registry.Snapshot().counter("objstore.retry.retries"), 0u);
  ASSERT_FALSE(acked.empty());

  // All nodes healed (missed writes backfilled): every acked file verifies.
  Status drop;
  for (int attempt = 0; attempt < 16 && !(drop = fs->DropCaches()).ok();
       ++attempt) {
  }
  ASSERT_TRUE(drop.ok()) << drop.ToString();
  for (const auto& path : acked) {
    const int i = std::stoi(path.substr(path.rfind('f') + 1));
    auto data = fs->ReadWholeFile(path, root_);
    ASSERT_TRUE(data.ok()) << path << ": " << data.status().ToString();
    EXPECT_EQ(*data, Payload(i)) << path;
  }
}

// --- EC archive tier: cold reads through m simultaneous node outages ---
//
// placement=kEc over eight single-replica nodes: the ONLY redundancy the
// data chunks have is the k=4/m=2 stripe. A chaos layer tears shard puts
// and bit-flips shard reads (scoped to "..ecs" keys — the journal is
// DESIGNED to fail hard on damage, so rotting it would only test the
// wrong layer) while pairs of nodes go down simultaneously and a reader
// sweeps every acked file cold. Invariants:
//  * zero read errors during every 2-node outage window — reconstruct-on-
//    read hides dead nodes and flipped bits;
//  * the degraded machinery demonstrably engaged (ec.degraded_reads > 0);
//  * zero lost acked ops, zero fenced commits (fence_violations == 0).
TEST_F(ChaosE2eTest, EcColdReadsSurviveRollingNodeKills) {
  obs::MetricsRegistry registry;
  ClusterConfig cc = ClusterConfig::Instant(8);
  cc.replication = 1;  // data durability must come from EC, not replication
  cc.metrics = &registry;
  auto nodes = std::make_shared<ClusterObjectStore>(cc);
  ChaosConfig chaos_cfg;
  chaos_cfg.seed = 913;
  chaos_cfg.torn_put_rate = 0.005;
  chaos_cfg.bit_flip_rate = 0.01;
  chaos_cfg.bit_flip_filter = [](const std::string& key) {
    return key.find("..ecs") != std::string::npos;
  };
  auto chaos = std::make_shared<ChaosStore>(nodes, chaos_cfg, &registry);
  auto retrying = std::make_shared<RetryingStore>(
      chaos, RetryPolicy::ForTests(), &registry);
  ArkFsClusterOptions opts = ArkFsClusterOptions::ForTests();
  opts.placement = DataPlacement::kEc;
  opts.client_template.metrics = &registry;
  auto cluster = ArkFsCluster::Create(retrying, opts).value();
  auto fs = cluster->AddClient("ec-archiver").value();

  // Archive phase (all nodes up): a file counts as acked only once fsync
  // returned kOk — torn shard puts that exhaust retries simply fail the
  // write, they never produce a half-acked stripe.
  ASSERT_TRUE(fs->MkdirAll("/arch", 0755, root_).ok());
  OpenOptions create;
  create.write = true;
  create.create = true;
  std::vector<std::string> acked;
  for (int i = 0; i < 24; ++i) {
    const std::string path = "/arch/f" + std::to_string(i);
    auto fd = fs->Open(path, create, root_);
    if (!fd.ok()) continue;
    const bool wrote = fs->Write(*fd, 0, Payload(i, 2048)).ok();
    const bool synced = wrote && fs->Fsync(*fd).ok();
    (void)fs->Close(*fd);
    if (synced) acked.push_back(path);
  }
  ASSERT_FALSE(acked.empty());
  ASSERT_GT(cluster->ec_store()->counters().encodes, 0u)
      << "data chunks must actually take the EC path";

  // Outage phase: every node dies at least once, always in simultaneous
  // pairs (= m). Caches are dropped while healthy so each window's sweep
  // reads cold through the store.
  const int pairs[][2] = {{0, 1}, {2, 3}, {4, 5}, {6, 7}, {0, 4}, {3, 7}};
  for (const auto& pair : pairs) {
    Status drop;
    for (int attempt = 0; attempt < 16 && !(drop = fs->DropCaches()).ok();
         ++attempt) {
    }
    ASSERT_TRUE(drop.ok()) << drop.ToString();
    nodes->SetNodeDown(pair[0], true);
    nodes->SetNodeDown(pair[1], true);
    for (const auto& path : acked) {
      const int i = std::stoi(path.substr(path.rfind('f') + 1));
      auto data = fs->ReadWholeFile(path, root_);
      ASSERT_TRUE(data.ok()) << path << " with nodes " << pair[0] << ","
                             << pair[1]
                             << " down: " << data.status().ToString();
      EXPECT_EQ(*data, Payload(i, 2048)) << path;
    }
    nodes->SetNodeDown(pair[0], false);
    nodes->SetNodeDown(pair[1], false);
  }

  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_GT(snap.counter("ec.degraded_reads"), 0u)
      << "outages never exercised the reconstruct path";
  EXPECT_GT(cluster->ec_store()->counters().degraded_reads, 0u);
  for (const auto& client : cluster->clients()) {
    EXPECT_EQ(client->journal_metrics().fence_violations.value(), 0u);
  }
}

// --- lease-manager HA: rolling kills of the active replica ---
//
// Three lease-manager replicas; a seeded killer repeatedly crashes whichever
// replica is currently active mid create/fsync burst, waits for a standby to
// take over (epoch bump + quiet period), then revives the old active so it
// rejoins as a standby. Invariants:
//  * zero lost acked ops — fsync'd files survive every failover;
//  * at most one replica claims active at any sampled instant;
//  * no client ever commits under a deposed epoch (fence_violations == 0).
TEST_F(ChaosE2eTest, ManagerFailoverRollingKillsLoseNoAckedOps) {
  const std::uint64_t seed =
      env::EnvConfig::FromEnvironment().chaos_seed().value_or(
          std::random_device{}());
  std::cerr << "[chaos] ARKFS_CHAOS_SEED=" << seed
            << " (re-run with this env var to reproduce)\n";
  RecordProperty("chaos_seed", std::to_string(seed));

  ArkFsClusterOptions opts = ArkFsClusterOptions::ForTests();
  opts.lease_replicas = 3;
  auto cluster =
      ArkFsCluster::Create(std::make_shared<MemoryObjectStore>(), opts)
          .value();
  auto fs = cluster->AddClient("survivor").value();
  const Nanos lease = cluster->lease_manager().config().lease_period;

  std::atomic<bool> chaos_done{false};
  std::atomic<int> max_claiming{0};
  std::thread monitor([&] {
    while (!chaos_done.load()) {
      int n = 0;
      for (int r = 0; r < cluster->lease_replica_count(); ++r) {
        if (cluster->lease_manager(r).is_active()) ++n;
      }
      int prev = max_claiming.load();
      while (n > prev && !max_claiming.compare_exchange_weak(prev, n)) {
      }
      SleepFor(Millis(2));
    }
  });

  std::atomic<int> kills{0};
  std::thread killer([&] {
    std::mt19937_64 rng(seed);
    for (int round = 0; round < 3; ++round) {
      SleepFor(Millis(20 + static_cast<int>(rng() % 80)));
      const int active = cluster->ActiveLeaseReplica();
      if (active < 0) continue;  // mid-failover already; skip this round
      (void)cluster->KillLeaseReplica(active);
      ++kills;
      // Wait for a successor, then let its quiet period plus a little
      // serving time elapse before reviving the old active.
      const TimePoint deadline = Now() + Seconds(3);
      while (cluster->ActiveLeaseReplica() < 0 && Now() < deadline) {
        SleepFor(Millis(5));
      }
      SleepFor(lease + Millis(50));
      (void)cluster->ReviveLeaseReplica(active);
    }
    chaos_done = true;
  });

  std::vector<std::string> acked;
  OpenOptions create;
  create.write = true;
  create.create = true;
  ASSERT_TRUE(fs->MkdirAll("/chaos0", 0755, root_).ok());
  for (int i = 0; !chaos_done.load() || i < 30; ++i) {
    const std::string path = "/chaos0/f" + std::to_string(i);
    auto fd = fs->Open(path, create, root_);
    if (!fd.ok()) continue;
    const bool wrote = fs->Write(*fd, 0, Payload(i)).ok();
    const bool synced = wrote && fs->Fsync(*fd).ok();
    (void)fs->Close(*fd);
    if (synced) acked.push_back(path);
  }
  killer.join();
  monitor.join();

  EXPECT_GE(kills.load(), 1) << "seed " << seed;
  EXPECT_LE(max_claiming.load(), 1) << "double leader; seed " << seed;
  ASSERT_FALSE(acked.empty()) << "seed " << seed;

  Status drop;
  for (int attempt = 0; attempt < 16 && !(drop = fs->DropCaches()).ok();
       ++attempt) {
    SleepFor(Millis(20));
  }
  ASSERT_TRUE(drop.ok()) << drop.ToString() << "; seed " << seed;
  for (const auto& path : acked) {
    const int i = std::stoi(path.substr(path.rfind('f') + 1));
    auto data = fs->ReadWholeFile(path, root_);
    ASSERT_TRUE(data.ok())
        << path << ": " << data.status().ToString() << "; seed " << seed;
    EXPECT_EQ(*data, Payload(i)) << path << "; seed " << seed;
  }
  for (const auto& client : cluster->clients()) {
    EXPECT_EQ(client->journal_metrics().fence_violations.value(), 0u)
        << "deposed-epoch commit reached the store; seed " << seed;
  }
}

// Group-commit durability boundary under rolling lease-manager kills
// (DESIGN.md §4.7): with ack-on-sequence journaling and a deliberately
// tight dirty window, every fsync-acked op must survive the churn — fsync
// is the forced drain, so its ack is a durability promise even though plain
// creates ack before their frames hit the store. Zero fence violations, as
// in the async variant.
TEST_F(ChaosE2eTest, GroupCommitRollingKillsLoseNoAckedDurableOps) {
  const std::uint64_t seed =
      env::EnvConfig::FromEnvironment().chaos_seed().value_or(
          std::random_device{}());
  std::cerr << "[chaos] ARKFS_CHAOS_SEED=" << seed
            << " (re-run with this env var to reproduce)\n";
  RecordProperty("chaos_seed", std::to_string(seed));

  ArkFsClusterOptions opts = ArkFsClusterOptions::ForTests();
  opts.lease_replicas = 3;
  opts.client_template.journal.durability = journal::DurabilityMode::kGroup;
  // Tight window: force frequent flusher round-trips (and the occasional
  // backpressure stall) instead of one giant batch, so kills land between
  // flushes with high probability.
  opts.client_template.journal.group_window.max_records = 64;
  opts.client_template.journal.group_window.max_age = Millis(20);
  auto cluster =
      ArkFsCluster::Create(std::make_shared<MemoryObjectStore>(), opts)
          .value();
  auto fs = cluster->AddClient("survivor").value();
  const Nanos lease = cluster->lease_manager().config().lease_period;

  std::atomic<bool> chaos_done{false};
  std::atomic<int> kills{0};
  std::thread killer([&] {
    std::mt19937_64 rng(seed);
    for (int round = 0; round < 3; ++round) {
      SleepFor(Millis(20 + static_cast<int>(rng() % 80)));
      const int active = cluster->ActiveLeaseReplica();
      if (active < 0) continue;
      (void)cluster->KillLeaseReplica(active);
      ++kills;
      const TimePoint deadline = Now() + Seconds(3);
      while (cluster->ActiveLeaseReplica() < 0 && Now() < deadline) {
        SleepFor(Millis(5));
      }
      SleepFor(lease + Millis(50));
      (void)cluster->ReviveLeaseReplica(active);
    }
    chaos_done = true;
  });

  std::vector<std::string> acked_durable;
  OpenOptions create;
  create.write = true;
  create.create = true;
  ASSERT_TRUE(fs->MkdirAll("/gchaos", 0755, root_).ok());
  for (int i = 0; !chaos_done.load() || i < 30; ++i) {
    const std::string path = "/gchaos/f" + std::to_string(i);
    auto fd = fs->Open(path, create, root_);
    if (!fd.ok()) continue;
    const bool wrote = fs->Write(*fd, 0, Payload(i)).ok();
    // Fsync = CommitDir = the synchronous drain of the group window for
    // this directory. Only after it acks does the op enter the must-survive
    // set; group-acked-but-unsynced creates are allowed to die with a
    // deposition.
    const bool synced = wrote && fs->Fsync(*fd).ok();
    (void)fs->Close(*fd);
    if (synced) acked_durable.push_back(path);
  }
  killer.join();

  EXPECT_GE(kills.load(), 1) << "seed " << seed;
  ASSERT_FALSE(acked_durable.empty()) << "seed " << seed;

  Status drop;
  for (int attempt = 0; attempt < 16 && !(drop = fs->DropCaches()).ok();
       ++attempt) {
    SleepFor(Millis(20));
  }
  ASSERT_TRUE(drop.ok()) << drop.ToString() << "; seed " << seed;
  for (const auto& path : acked_durable) {
    const int i = std::stoi(path.substr(path.rfind('f') + 1));
    auto data = fs->ReadWholeFile(path, root_);
    ASSERT_TRUE(data.ok())
        << path << ": " << data.status().ToString() << "; seed " << seed;
    EXPECT_EQ(*data, Payload(i)) << path << "; seed " << seed;
  }
  // The pipeline actually ran in group mode (flusher did the work), and no
  // deposed-epoch frame ever reached the store.
  EXPECT_GT(fs->journal_metrics().group_flushes.value() +
                fs->journal_metrics().group_drains.value(),
            0u)
      << "seed " << seed;
  for (const auto& client : cluster->clients()) {
    EXPECT_EQ(client->journal_metrics().fence_violations.value(), 0u)
        << "deposed-epoch commit reached the store; seed " << seed;
  }
}

// --- lease-manager HA under read delegations ---
//
// A writer streams creates into one hot directory while a reader serves
// stat/readdir from a delegated metatable slice and a seeded killer rolls
// the active lease-manager replica. Invariants (DESIGN.md §4.5):
//  * staleness bound — no read ever reflects state older than one lease
//    term behind what had been acked at read time, across every failover;
//  * monotonicity — a delegate never travels back in time: once it has
//    observed N entries, no later read returns fewer (watermarks only
//    advance, and a slice behind the observed watermark refetches);
//  * fencing — zero deposed-epoch commits, exactly as without delegations.
TEST_F(ChaosE2eTest, DelegatedReadsStayInWatermarkBoundAcrossFailover) {
  const std::uint64_t seed =
      env::EnvConfig::FromEnvironment().chaos_seed().value_or(
          std::random_device{}());
  std::cerr << "[chaos] ARKFS_CHAOS_SEED=" << seed
            << " (re-run with this env var to reproduce)\n";
  RecordProperty("chaos_seed", std::to_string(seed));

  ArkFsClusterOptions opts = ArkFsClusterOptions::ForTests();
  opts.lease_replicas = 3;
  auto cluster =
      ArkFsCluster::Create(std::make_shared<MemoryObjectStore>(), opts)
          .value();
  auto writer = cluster->AddClient("writer").value();
  auto reader = cluster->AddClient("reader").value();
  const Nanos lease = cluster->lease_manager().config().lease_period;

  // Warm phase: the writer owns /hotd, the reader's stats land in the
  // delegated slice before any chaos starts.
  ASSERT_TRUE(writer->MkdirAll("/hotd", 0755, root_).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer
                    ->WriteFileAt("/hotd/f" + std::to_string(i), Payload(i),
                                  root_)
                    .ok());
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(reader->Stat("/hotd/f" + std::to_string(i), root_).ok());
  }
  EXPECT_GT(reader->stats().stat_delegated, 0u) << "seed " << seed;

  // Acked-visibility log: (time the create was acked, entries visible from
  // then on). The reader checks every readdir against it.
  std::mutex log_mu;
  std::vector<std::pair<TimePoint, int>> acked_log;
  acked_log.emplace_back(Now(), 10);

  std::atomic<bool> chaos_done{false};
  std::atomic<int> kills{0};
  std::thread killer([&] {
    std::mt19937_64 rng(seed);
    for (int round = 0; round < 3; ++round) {
      SleepFor(Millis(20 + static_cast<int>(rng() % 80)));
      const int active = cluster->ActiveLeaseReplica();
      if (active < 0) continue;
      (void)cluster->KillLeaseReplica(active);
      ++kills;
      const TimePoint deadline = Now() + Seconds(3);
      while (cluster->ActiveLeaseReplica() < 0 && Now() < deadline) {
        SleepFor(Millis(5));
      }
      SleepFor(lease + Millis(50));
      (void)cluster->ReviveLeaseReplica(active);
    }
    chaos_done = true;
  });

  std::atomic<int> monotonic_violations{0};
  std::atomic<int> bound_violations{0};
  std::atomic<int> reads_done{0};
  std::thread read_loop([&] {
    // Slack on top of the one-lease-term bound for scheduling jitter
    // between "mutation acked" and "read issued".
    const Nanos slack = Millis(150);
    int watermark_floor = 0;  // most entries this reader has ever observed
    while (!chaos_done.load()) {
      const TimePoint t0 = Now();
      auto entries = reader->ReadDir("/hotd", root_);
      if (entries.ok()) {
        const int n = static_cast<int>(entries->size());
        int floor_at_t0 = 0;
        {
          std::lock_guard lock(log_mu);
          for (auto it = acked_log.rbegin(); it != acked_log.rend(); ++it) {
            if (it->first + lease + slack <= t0) {
              floor_at_t0 = it->second;
              break;
            }
          }
        }
        if (n < watermark_floor) ++monotonic_violations;
        if (n < floor_at_t0) ++bound_violations;
        watermark_floor = std::max(watermark_floor, n);
        ++reads_done;
      }
      for (int k = 0; k < 3; ++k) {
        (void)reader->Stat("/hotd/f" + std::to_string(k), root_);
      }
      SleepFor(Millis(1));
    }
  });

  int created = 10;
  OpenOptions create;
  create.write = true;
  create.create = true;
  for (int i = 10; !chaos_done.load() || i < 40; ++i) {
    const std::string path = "/hotd/f" + std::to_string(i);
    auto fd = writer->Open(path, create, root_);
    if (!fd.ok()) continue;
    // Visible to every other client from this ack on (the leader serves
    // creates from its metatable before any checkpoint).
    {
      std::lock_guard lock(log_mu);
      acked_log.emplace_back(Now(), ++created);
    }
    (void)writer->Write(*fd, 0, Payload(i));
    (void)writer->Fsync(*fd);
    (void)writer->Close(*fd);
  }
  killer.join();
  read_loop.join();

  EXPECT_GE(kills.load(), 1) << "seed " << seed;
  EXPECT_GT(reads_done.load(), 0) << "seed " << seed;
  EXPECT_EQ(monotonic_violations.load(), 0)
      << "a delegated read travelled back in time; seed " << seed;
  EXPECT_EQ(bound_violations.load(), 0)
      << "read older than one lease term behind acked state; seed " << seed;
  for (const auto& client : cluster->clients()) {
    EXPECT_EQ(client->journal_metrics().fence_violations.value(), 0u)
        << "deposed-epoch commit reached the store; seed " << seed;
  }
}

// --- randomized lane ---
//
// Picks (and ALWAYS logs) a fresh seed, or honours ARKFS_CHAOS_SEED for
// replay: ARKFS_CHAOS_SEED=12345 ctest -L chaos -R RandomizedSeedSweep

TEST_F(ChaosE2eTest, RandomizedSeedSweep) {
  const std::uint64_t seed =
      env::EnvConfig::FromEnvironment().chaos_seed().value_or(
          std::random_device{}());
  std::cerr << "[chaos] ARKFS_CHAOS_SEED=" << seed
            << " (re-run with this env var to reproduce)\n";
  RecordProperty("chaos_seed", std::to_string(seed));

  auto chaos = std::make_shared<ChaosStore>(
      std::make_shared<MemoryObjectStore>(), ChaosConfig::Flaky(seed, 3.0));
  obs::MetricsRegistry registry;
  auto retrying = std::make_shared<RetryingStore>(
      chaos, RetryPolicy::ForTests(), &registry);
  auto cluster =
      ArkFsCluster::Create(retrying, ArkFsClusterOptions::ForTests()).value();
  auto fs = cluster->AddClient().value();

  const auto acked = RunAckedWorkload(*fs, root_, 2, 20);
  ASSERT_FALSE(acked.empty()) << "seed " << seed;
  ASSERT_TRUE(fs->DropCaches().ok()) << "seed " << seed;
  VerifyAcked(*fs, root_, acked);
  EXPECT_EQ(registry.Snapshot().counter("objstore.retry.giveups"), 0u)
      << "seed " << seed;
}

}  // namespace
}  // namespace arkfs
