// Erasure-coded archive tier tests: the GF(2^8) Reed–Solomon codec, the
// strict stripe-manifest/shard codecs (truncation + bit-flip sweeps), the
// EcStore decorator, reconstruct-on-read under ANY m simultaneous node
// outages, and scrub-and-repair exactness.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "objstore/chaos_store.h"
#include "objstore/cluster_store.h"
#include "objstore/ec_codec.h"
#include "objstore/ec_store.h"
#include "objstore/memory_store.h"
#include "objstore/scrubber.h"

namespace arkfs {
namespace {

Bytes Payload(int i, std::size_t n) {
  Bytes b(n);
  for (std::size_t j = 0; j < n; ++j) {
    b[j] = static_cast<std::uint8_t>((j * 131 + i * 17 + (j >> 8)) & 0xFF);
  }
  return b;
}

// --- GF(2^8) field + RS codec ---

TEST(GfMathTest, FieldProperties) {
  // Multiplicative inverse for every non-zero element.
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(ec::GfMul(static_cast<std::uint8_t>(a),
                        ec::GfInv(static_cast<std::uint8_t>(a))),
              1)
        << a;
  }
  // Zero annihilates; one is the identity.
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(ec::GfMul(static_cast<std::uint8_t>(a), 0), 0);
    EXPECT_EQ(ec::GfMul(static_cast<std::uint8_t>(a), 1), a);
  }
  // Commutativity + distributivity on a sample grid.
  for (int a = 1; a < 256; a += 37) {
    for (int b = 1; b < 256; b += 41) {
      const auto ua = static_cast<std::uint8_t>(a);
      const auto ub = static_cast<std::uint8_t>(b);
      EXPECT_EQ(ec::GfMul(ua, ub), ec::GfMul(ub, ua));
      for (int c = 1; c < 256; c += 43) {
        const auto uc = static_cast<std::uint8_t>(c);
        EXPECT_EQ(ec::GfMul(ua, ub ^ uc),
                  ec::GfMul(ua, ub) ^ ec::GfMul(ua, uc));
      }
    }
  }
}

// Every possible m-erasure of a k=4/m=2 stripe must decode back to the
// original data, and every lost shard must be reconstructible — this is the
// "any k of k+m" property the durability story rests on.
TEST(RsCodecTest, AllTwoErasuresRecoverAllData) {
  const int k = 4, m = 2, n = k + m;
  const std::size_t shard_len = 257;  // odd, exercises non-word tails
  std::vector<Bytes> shards(static_cast<std::size_t>(n));
  std::vector<ByteSpan> data_spans;
  for (int i = 0; i < k; ++i) {
    shards[static_cast<std::size_t>(i)] = Payload(i, shard_len);
    data_spans.emplace_back(shards[static_cast<std::size_t>(i)]);
  }
  ec::RsCodec codec(k, m);
  std::vector<Bytes> parity;
  codec.EncodeParity(data_spans, &parity);
  for (int j = 0; j < m; ++j) {
    shards[static_cast<std::size_t>(k + j)] = parity[static_cast<std::size_t>(j)];
  }

  for (int dead1 = 0; dead1 < n; ++dead1) {
    for (int dead2 = dead1 + 1; dead2 < n; ++dead2) {
      std::vector<int> present;
      std::vector<ByteSpan> survive;
      for (int i = 0; i < n; ++i) {
        if (i == dead1 || i == dead2) continue;
        present.push_back(i);
        survive.emplace_back(shards[static_cast<std::size_t>(i)]);
      }
      std::vector<Bytes> recovered;
      ASSERT_TRUE(codec.RecoverData(present, survive, &recovered).ok())
          << dead1 << "," << dead2;
      for (int i = 0; i < k; ++i) {
        EXPECT_EQ(recovered[static_cast<std::size_t>(i)],
                  shards[static_cast<std::size_t>(i)])
            << "data shard " << i << " after erasing " << dead1 << ","
            << dead2;
      }
      // Rebuild each erased shard (data or parity) byte-identically.
      for (int target : {dead1, dead2}) {
        Bytes rebuilt;
        ASSERT_TRUE(
            codec.ReconstructShard(present, survive, target, &rebuilt).ok());
        EXPECT_EQ(rebuilt, shards[static_cast<std::size_t>(target)])
            << "shard " << target;
      }
    }
  }
}

TEST(RsCodecTest, RejectsBadSurvivorSets) {
  ec::RsCodec codec(4, 2);
  const Bytes shard = Payload(0, 16);
  std::vector<ByteSpan> four(4, ByteSpan(shard));
  std::vector<Bytes> out;
  // Fewer than k survivors.
  EXPECT_EQ(codec.RecoverData({0, 1, 2}, {four.begin(), four.begin() + 3},
                              &out)
                .code(),
            Errc::kIo);
  // Duplicate index.
  EXPECT_EQ(codec.RecoverData({0, 1, 1, 3}, four, &out).code(), Errc::kInval);
  // Out-of-range index.
  EXPECT_EQ(codec.RecoverData({0, 1, 2, 6}, four, &out).code(), Errc::kInval);
  // present/shards mismatch.
  EXPECT_EQ(codec.RecoverData({0, 1, 2, 3, 4}, four, &out).code(),
            Errc::kInval);
}

// --- strict stripe codecs: torn prefixes and bit flips must never decode ---

StripeManifest TestManifest() {
  StripeManifest m;
  m.k = 4;
  m.m = 2;
  m.object_size = 123456;
  m.gen = 7;
  m.stripe_id = 0xDEADBEEFCAFEF00Dull;
  for (int i = 0; i < 6; ++i) {
    m.shards.push_back(EcShardInfo{static_cast<std::uint8_t>(i * 3),
                                   0xA0B0C0D0u + static_cast<std::uint32_t>(i)});
  }
  return m;
}

TEST(EcCodecStrictness, ManifestRoundTrip) {
  const StripeManifest m = TestManifest();
  auto decoded = DecodeStripeManifest(EncodeStripeManifest(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->k, m.k);
  EXPECT_EQ(decoded->m, m.m);
  EXPECT_EQ(decoded->object_size, m.object_size);
  EXPECT_EQ(decoded->gen, m.gen);
  EXPECT_EQ(decoded->stripe_id, m.stripe_id);
  ASSERT_EQ(decoded->shards.size(), m.shards.size());
  for (std::size_t i = 0; i < m.shards.size(); ++i) {
    EXPECT_EQ(decoded->shards[i].salt, m.shards[i].salt);
    EXPECT_EQ(decoded->shards[i].crc, m.shards[i].crc);
  }
  EXPECT_EQ(decoded->shard_size(), (m.object_size + 3) / 4);
}

TEST(EcCodecStrictness, ManifestRejectsEveryTruncationAndBitFlip) {
  const Bytes encoded = EncodeStripeManifest(TestManifest());
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    Bytes truncated(encoded.begin(), encoded.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(DecodeStripeManifest(truncated).ok())
        << "decoded a " << len << "-byte torn prefix";
  }
  Bytes padded = encoded;
  padded.push_back(0x5a);
  EXPECT_FALSE(DecodeStripeManifest(padded).ok()) << "trailing garbage";
  for (std::size_t byte = 0; byte < encoded.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = encoded;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(DecodeStripeManifest(flipped).ok())
          << "decoded with bit " << bit << " of byte " << byte << " flipped";
    }
  }
}

TEST(EcCodecStrictness, ShardObjectRejectsEveryTruncationAndBitFlip) {
  EcShardHeader header;
  header.index = 3;
  header.gen = 9;
  header.stripe_id = 0x1122334455667788ull;
  const Bytes payload = Payload(1, 64);
  header.payload_crc = Crc32c(payload);
  const Bytes encoded = EncodeShardObject(header, payload);

  auto decoded = DecodeShardObject(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header.index, header.index);
  EXPECT_EQ(decoded->header.gen, header.gen);
  EXPECT_EQ(decoded->header.stripe_id, header.stripe_id);
  EXPECT_EQ(decoded->payload, payload);

  for (std::size_t len = 0; len < encoded.size(); ++len) {
    Bytes truncated(encoded.begin(), encoded.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(DecodeShardObject(truncated).ok())
        << "decoded a " << len << "-byte torn prefix";
  }
  Bytes padded = encoded;
  padded.push_back(0x00);
  EXPECT_FALSE(DecodeShardObject(padded).ok()) << "trailing garbage";
  for (std::size_t byte = 0; byte < encoded.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = encoded;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(DecodeShardObject(flipped).ok())
          << "decoded with bit " << bit << " of byte " << byte << " flipped";
    }
  }
}

TEST(EcCodecStrictness, KeyClassification) {
  const std::string key = "dabc.0000000000000001";
  std::string logical;
  std::uint64_t gen = 0;
  EXPECT_EQ(ClassifyEcKey(key, &logical), EcKeyKind::kLogical);
  EXPECT_EQ(logical, key);
  EXPECT_EQ(ClassifyEcKey(EcManifestKey(key, 2, 0x1f), &logical),
            EcKeyKind::kManifest);
  EXPECT_EQ(logical, key);
  EXPECT_EQ(ClassifyEcKey(EcShardKey(key, 5, 0x07, 0xabcdef12), &logical,
                          &gen),
            EcKeyKind::kShard);
  EXPECT_EQ(logical, key);
  EXPECT_EQ(gen, 0xabcdef12u);
}

TEST(EcCodecStrictness, SingleDotSuffixesAreNotMistakenForInternalKeys) {
  // The internal grammar lives under the reserved ".." sentinel; a logical
  // key that merely ends in ".ecm"+hex or ".ecs"+hex+".g"+hex must stay
  // logical (it would otherwise be misfolded by List and swept by Delete).
  for (const std::string key :
       {"report.ecm001", "trace.ecs00ff.g00000001", "x.ecm", "x.ecs"}) {
    std::string logical;
    EXPECT_EQ(ClassifyEcKey(key, &logical), EcKeyKind::kLogical) << key;
    EXPECT_EQ(logical, key);
  }
}

TEST(EcCodecStrictness, ManifestRejectsOversizedParityCount) {
  // m caps at 15 (SanitizeEcOptions bound): a manifest claiming more was
  // never written by us, and decoding one would walk repair loops past the
  // 16-entry manifest-salt array.
  StripeManifest m = TestManifest();
  m.m = 16;
  m.shards.resize(static_cast<std::size_t>(m.k) + m.m);
  EXPECT_FALSE(DecodeStripeManifest(EncodeStripeManifest(m)).ok());
}

// --- EcStore over a plain memory base ---

class EcStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = std::make_shared<MemoryObjectStore>();
    EcStoreOptions options;
    options.metrics = &registry_;
    options.async = AsyncIoConfig::ForTests();
    ec_ = std::make_shared<EcStore>(base_, options);
  }

  obs::MetricsRegistry registry_;
  ObjectStorePtr base_;
  EcStorePtr ec_;
};

TEST_F(EcStoreTest, RoundTripAcrossSizes) {
  const std::size_t sizes[] = {0, 1, 3, 5, 4096, 4 * 4096 + 17, 100000};
  int i = 0;
  for (const std::size_t size : sizes) {
    const std::string key = "obj" + std::to_string(size);
    const Bytes data = Payload(i++, size);
    ASSERT_TRUE(ec_->Put(key, data).ok()) << size;
    auto got = ec_->Get(key);
    ASSERT_TRUE(got.ok()) << size;
    EXPECT_EQ(*got, data) << size;
    auto head = ec_->Head(key);
    ASSERT_TRUE(head.ok()) << size;
    EXPECT_EQ(head->size, size);
  }
  EXPECT_EQ(ec_->counters().encodes, std::size(sizes));
  EXPECT_EQ(ec_->counters().degraded_reads, 0u);
}

TEST_F(EcStoreTest, GetRangeMatchesRestSemantics) {
  const Bytes data = Payload(3, 10000);  // shard_size = 2500
  ASSERT_TRUE(ec_->Put("r", data).ok());
  // In-shard, cross-shard, suffix, EOF-clamped, past-EOF.
  struct { std::uint64_t off, len; } cases[] = {
      {0, 100}, {2400, 300}, {9990, 10}, {9000, 5000}, {20000, 5}, {0, 10000}};
  for (const auto& c : cases) {
    auto got = ec_->GetRange("r", c.off, c.len);
    ASSERT_TRUE(got.ok()) << c.off << "+" << c.len;
    const std::uint64_t lo = std::min<std::uint64_t>(c.off, data.size());
    const std::uint64_t hi = std::min<std::uint64_t>(c.off + c.len, data.size());
    EXPECT_EQ(*got, Bytes(data.begin() + static_cast<std::ptrdiff_t>(lo),
                          data.begin() + static_cast<std::ptrdiff_t>(hi)))
        << c.off << "+" << c.len;
  }
}

TEST_F(EcStoreTest, ListFoldsInternalKeysAndDeleteSweepsThem) {
  ASSERT_TRUE(ec_->Put("alpha", Payload(1, 1000)).ok());
  ASSERT_TRUE(ec_->Put("beta", Payload(2, 1000)).ok());
  auto listed = ec_->List("");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(*listed, (std::vector<std::string>{"alpha", "beta"}));

  // The raw store holds manifests + shards, never the logical key.
  auto raw = base_->List("alpha");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->size(), 3u + 6u);  // m+1 manifest copies + k+m shards
  EXPECT_EQ(base_->Get("alpha").code(), Errc::kNoEnt);

  ASSERT_TRUE(ec_->Delete("alpha").ok());
  EXPECT_EQ(ec_->Get("alpha").code(), Errc::kNoEnt);
  raw = base_->List("alpha");
  ASSERT_TRUE(raw.ok());
  EXPECT_TRUE(raw->empty()) << "delete must sweep every internal object";
  EXPECT_EQ(ec_->Delete("alpha").code(), Errc::kNoEnt);
}

TEST_F(EcStoreTest, ReservedNamespaceKeysPassThroughUnencoded) {
  // Any key containing the "..ec" sentinel is refused by Encodes(), so a
  // stored manifest/shard key can only ever be one EcStore wrote itself.
  EXPECT_FALSE(ec_->Encodes("x..ecm0ff"));
  EXPECT_FALSE(ec_->Encodes("x..ecs0000.g00000001"));
  EXPECT_FALSE(ec_->Encodes("weird..economy"));
  EXPECT_TRUE(ec_->Encodes("report.ecm001"));  // single dot: plain logical
  // Reserved keys still round-trip — verbatim through the base store.
  ASSERT_TRUE(ec_->Put("weird..economy", Payload(0, 64)).ok());
  EXPECT_EQ(*base_->Get("weird..economy"), Payload(0, 64));
  EXPECT_EQ(*ec_->Get("weird..economy"), Payload(0, 64));
}

TEST_F(EcStoreTest, InvalidShardCountsAreClampedAtRuntime) {
  // Runtime validation, not assert-only: m=99 would index far past the
  // 16-entry manifest-salt array in a release build.
  auto base = std::make_shared<MemoryObjectStore>();
  EcStoreOptions options;
  options.k = 0;
  options.m = 99;
  options.async = AsyncIoConfig::ForTests();
  EcStore ec(base, options);
  EXPECT_EQ(ec.options().k, 1);
  EXPECT_EQ(ec.options().m, 15);
  const Bytes data = Payload(1, 2048);
  ASSERT_TRUE(ec.Put("clamped", data).ok());
  EXPECT_EQ(*ec.Get("clamped"), data);
}

TEST_F(EcStoreTest, ManifestCopiesAreFoundAfterTopologyChange) {
  const Bytes data = Payload(4, 6000);
  ASSERT_TRUE(ec_->Put("topo", data).ok());
  // Simulate a ring-membership change: manifest-copy keys embed salts
  // derived from the placement closure, so after the ring moves every copy
  // lives at a key the reader can no longer derive. Relocate all m+1
  // copies (written at salt 0 — no placement probe in this fixture) to a
  // salt the reader will never derive.
  for (int copy = 0; copy <= 2; ++copy) {
    const std::string old_key = EcManifestKey("topo", copy, 0);
    const Bytes raw = base_->Get(old_key).value();
    ASSERT_TRUE(base_->Delete(old_key).ok());
    ASSERT_TRUE(base_->Put(EcManifestKey("topo", copy, 9), raw).ok());
  }
  // Every derived-salt probe misses; the List fallback must still resolve
  // the stripe instead of concluding the key is not EC-placed.
  auto got = ec_->Get("topo");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, data);
  // A probe counts the derived copies as truly missing, and one repair
  // re-homes them at the derivable keys.
  auto probe = ec_->ProbeStripe("topo");
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->manifest_copies_missing, 3);
  EXPECT_EQ(probe->manifest_copies_unreachable, 0);
  auto repaired = ec_->RepairStripe("topo", *probe);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(base_->Get(EcManifestKey("topo", 0, 0)).ok());
  EXPECT_EQ(*ec_->Get("topo"), data);
}

TEST_F(EcStoreTest, PartialWritesAreRefused) {
  EXPECT_FALSE(ec_->supports_partial_write());
  ASSERT_TRUE(ec_->Put("p", Payload(0, 64)).ok());
  EXPECT_EQ(ec_->PutRange("p", 8, Payload(1, 8)).code(), Errc::kNotSup);
}

TEST_F(EcStoreTest, PredicateRoutesOnlyDataKeys) {
  auto base = std::make_shared<MemoryObjectStore>();
  EcStoreOptions options;
  options.should_encode = [](const std::string& key) {
    return !key.empty() && key.front() == 'd';
  };
  options.async = AsyncIoConfig::ForTests();
  EcStore ec(base, options);
  ASSERT_TRUE(ec.Put("d123", Payload(0, 256)).ok());
  ASSERT_TRUE(ec.Put("i123", Payload(1, 256)).ok());
  // The metadata key passes through verbatim; the data key is striped.
  EXPECT_EQ(*base->Get("i123"), Payload(1, 256));
  EXPECT_EQ(base->Get("d123").code(), Errc::kNoEnt);
  EXPECT_TRUE(base->Get(EcManifestKey("d123", 0, 0)).ok());
  EXPECT_EQ(*ec.Get("d123"), Payload(0, 256));
}

TEST_F(EcStoreTest, OverwriteBumpsGenerationAndSweepsOldShards) {
  ASSERT_TRUE(ec_->Put("g", Payload(1, 5000)).ok());
  ASSERT_TRUE(ec_->Put("g", Payload(2, 300)).ok());
  auto manifest = ec_->LoadManifest("g");
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->gen, 2u);
  EXPECT_EQ(*ec_->Get("g"), Payload(2, 300));
  // Old-generation shards are gone (step 3 of the write protocol).
  auto raw = base_->List("g..ecs");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->size(), 6u);
  for (const auto& key : *raw) {
    std::uint64_t gen = 0;
    std::string logical;
    ASSERT_EQ(ClassifyEcKey(key, &logical, &gen), EcKeyKind::kShard);
    EXPECT_EQ(gen, 2u) << key;
  }
}

TEST_F(EcStoreTest, CorruptShardIsDetectedReconstructedAndCounted) {
  const Bytes data = Payload(7, 8192);
  ASSERT_TRUE(ec_->Put("c", data).ok());
  auto manifest = ec_->LoadManifest("c");
  ASSERT_TRUE(manifest.ok());
  // Rot a byte of data shard 0's payload at rest.
  const std::string skey =
      EcShardKey("c", 0, manifest->shards[0].salt, manifest->gen);
  Bytes raw = base_->Get(skey).value();
  raw[raw.size() - 1] ^= 0x40;
  ASSERT_TRUE(base_->Put(skey, raw).ok());

  auto got = ec_->Get("c");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, data) << "reconstruction must hide the corruption";
  // Exactly one: the same rotted shard seen by the healthy pass AND by the
  // degraded refetch attempts is still one corruption event, not five.
  EXPECT_EQ(ec_->counters().read_corrupt, 1u);
  EXPECT_EQ(ec_->counters().degraded_reads, 1u);
  EXPECT_EQ(ec_->counters().reconstructs, 1u);
  EXPECT_EQ(registry_.Snapshot().counter("ec.read.corrupt"), 1u);
}

// --- scrub-and-repair ---

class ScrubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = std::make_shared<MemoryObjectStore>();
    EcStoreOptions options;
    options.metrics = &registry_;
    options.async = AsyncIoConfig::ForTests();
    ec_ = std::make_shared<EcStore>(base_, options);
    ScrubberOptions sopts = ScrubberOptions::ForTests();
    sopts.metrics = &registry_;
    scrubber_ = std::make_shared<Scrubber>(ec_, sopts);
  }

  // Flips one payload byte of shard `index` of `key` at rest.
  void Corrupt(const std::string& key, int index) {
    auto manifest = ec_->LoadManifest(key);
    ASSERT_TRUE(manifest.ok());
    const std::string skey = EcShardKey(
        key, index, manifest->shards[static_cast<std::size_t>(index)].salt,
        manifest->gen);
    Bytes raw = base_->Get(skey).value();
    raw[raw.size() - 1] ^= 0x01;
    ASSERT_TRUE(base_->Put(skey, raw).ok());
  }

  void Erase(const std::string& key, int index) {
    auto manifest = ec_->LoadManifest(key);
    ASSERT_TRUE(manifest.ok());
    ASSERT_TRUE(base_
                    ->Delete(EcShardKey(
                        key, index,
                        manifest->shards[static_cast<std::size_t>(index)].salt,
                        manifest->gen))
                    .ok());
  }

  obs::MetricsRegistry registry_;
  ObjectStorePtr base_;
  EcStorePtr ec_;
  ScrubberPtr scrubber_;
};

TEST_F(ScrubTest, OnePassRepairsExactlyTheInjectedDamage) {
  std::vector<Bytes> originals;
  for (int i = 0; i < 5; ++i) {
    originals.push_back(Payload(i, 4000 + i * 111));
    ASSERT_TRUE(ec_->Put("s" + std::to_string(i), originals.back()).ok());
  }
  // Inject exactly 4 corruptions + 2 missing shards, never more than m=2
  // per stripe.
  Corrupt("s0", 1);
  Corrupt("s0", 4);
  Corrupt("s2", 0);
  Corrupt("s3", 5);
  Erase("s1", 2);
  Erase("s3", 3);

  auto report = scrubber_->RunOnce();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->stripes, 5u);
  EXPECT_EQ(report->corrupt, 4u);
  EXPECT_EQ(report->missing, 2u);
  EXPECT_EQ(report->repaired, 6u) << "repaired must exactly match injected";
  EXPECT_EQ(report->unrecoverable, 0u);
  EXPECT_EQ(report->repair_failures, 0u);
  const auto snap = registry_.Snapshot();
  EXPECT_EQ(snap.counter("ec.scrub.repaired"), 6u);
  EXPECT_EQ(snap.counter("ec.scrub.passes"), 1u);

  // The stripe is fully healed: a second pass finds nothing, and every
  // object reads back healthy (no degraded path).
  const auto before = ec_->counters().degraded_reads;
  auto rescrub = scrubber_->RunOnce();
  ASSERT_TRUE(rescrub.ok());
  EXPECT_EQ(rescrub->corrupt, 0u);
  EXPECT_EQ(rescrub->missing, 0u);
  EXPECT_EQ(rescrub->repaired, 0u);
  for (int i = 0; i < 5; ++i) {
    auto got = ec_->Get("s" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(*got, originals[static_cast<std::size_t>(i)]) << i;
  }
  EXPECT_EQ(ec_->counters().degraded_reads, before);
}

TEST_F(ScrubTest, MoreThanMLossesIsCountedUnrecoverable) {
  ASSERT_TRUE(ec_->Put("dead", Payload(9, 6000)).ok());
  Corrupt("dead", 0);
  Corrupt("dead", 1);
  Erase("dead", 2);
  auto report = scrubber_->RunOnce();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->unrecoverable, 1u);
  EXPECT_EQ(report->repaired, 0u);
  EXPECT_EQ(ec_->Get("dead").code(), Errc::kIo);
}

TEST_F(ScrubTest, RepairIsFencedAgainstConcurrentOverwrite) {
  ASSERT_TRUE(ec_->Put("race", Payload(1, 3000)).ok());
  Corrupt("race", 0);
  auto probe = ec_->ProbeStripe("race");
  ASSERT_TRUE(probe.ok());
  ASSERT_EQ(probe->corrupt.size(), 1u);
  // An overwrite lands between probe and repair: the stale probe must not
  // resurrect generation-1 shards.
  ASSERT_TRUE(ec_->Put("race", Payload(2, 3000)).ok());
  EXPECT_EQ(ec_->RepairStripe("race", *probe).code(), Errc::kAgain);
  EXPECT_EQ(*ec_->Get("race"), Payload(2, 3000));
}

TEST_F(ScrubTest, TrulyMissingManifestCopyIsRestored) {
  ASSERT_TRUE(ec_->Put("mcopy", Payload(5, 3000)).ok());
  const std::string lost = EcManifestKey("mcopy", 1, 0);
  ASSERT_TRUE(base_->Delete(lost).ok());
  auto report = scrubber_->RunOnce();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->manifest_fixed, 1u);
  EXPECT_EQ(report->repaired, 0u) << "only shard rebuilds count as repairs";
  EXPECT_TRUE(base_->Get(lost).ok()) << "the kNoEnt copy must be restored";
}

TEST_F(ScrubTest, OrphanedOldGenerationShardsAreSwept) {
  ASSERT_TRUE(ec_->Put("orph", Payload(1, 2000)).ok());
  auto m1 = ec_->LoadManifest("orph");
  ASSERT_TRUE(m1.ok());
  // Simulate a crashed overwrite's leftovers: re-plant a gen-1 shard after
  // the object moved to gen 2.
  const std::string old_shard =
      EcShardKey("orph", 0, m1->shards[0].salt, m1->gen);
  const Bytes old_raw = base_->Get(old_shard).value();
  ASSERT_TRUE(ec_->Put("orph", Payload(2, 2000)).ok());
  ASSERT_TRUE(base_->Put(old_shard, old_raw).ok());

  auto report = scrubber_->RunOnce();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->orphans_swept, 1u);
  EXPECT_EQ(base_->Get(old_shard).code(), Errc::kNoEnt);
  EXPECT_EQ(*ec_->Get("orph"), Payload(2, 2000));
}

// --- ChaosStore read-path bit flips (the fault the CRCs must catch) ---

TEST(ChaosBitFlipTest, FlipsExactlyOneBitOnFilteredKeysOnly) {
  auto base = std::make_shared<MemoryObjectStore>();
  ChaosConfig config;
  config.seed = 11;
  config.bit_flip_rate = 1.0;
  config.bit_flip_filter = [](const std::string& key) {
    return key.find("..ecs") != std::string::npos;
  };
  ChaosStore chaos(base, config);
  const Bytes data = Payload(0, 512);
  ASSERT_TRUE(chaos.Put("x..ecs0000.g00000001", data).ok());
  ASSERT_TRUE(chaos.Put("plain", data).ok());

  auto flipped = chaos.Get("x..ecs0000.g00000001");
  ASSERT_TRUE(flipped.ok());
  EXPECT_NE(*flipped, data);
  int diff_bits = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    diff_bits += __builtin_popcount((*flipped)[i] ^ data[i]);
  }
  EXPECT_EQ(diff_bits, 1) << "exactly one bit per faulted read";
  EXPECT_EQ(chaos.counters().bit_flips, 1u);

  // Non-matching keys are never touched.
  EXPECT_EQ(*chaos.Get("plain"), data);
  EXPECT_EQ(chaos.counters().bit_flips, 1u);
}

// --- node outages: the "any m simultaneous" guarantee ---

class EcOutageTest : public ::testing::Test {
 protected:
  static constexpr int kNodes = 8;

  void SetUp() override {
    ClusterConfig cc = ClusterConfig::Instant(kNodes);
    cc.replication = 1;  // redundancy comes from EC, not replication
    nodes_ = std::make_shared<ClusterObjectStore>(cc);
    EcStoreOptions options;
    options.placement = ClusterPrimaryPlacement(nodes_);
    options.metrics = &registry_;
    options.async = AsyncIoConfig::ForTests();
    ec_ = std::make_shared<EcStore>(nodes_, options);
  }

  void AllUp() {
    for (int n = 0; n < kNodes; ++n) nodes_->SetNodeDown(n, false);
  }

  obs::MetricsRegistry registry_;
  std::shared_ptr<ClusterObjectStore> nodes_;
  EcStorePtr ec_;
};

TEST_F(EcOutageTest, ShardsAndManifestCopiesLandOnDistinctNodes) {
  ASSERT_TRUE(ec_->Put("place", Payload(0, 9000)).ok());
  auto manifest = ec_->LoadManifest("place");
  ASSERT_TRUE(manifest.ok());
  std::set<int> shard_nodes;
  for (int i = 0; i < 6; ++i) {
    shard_nodes.insert(
        nodes_
            ->ReplicaNodes(EcShardKey(
                "place", i, manifest->shards[static_cast<std::size_t>(i)].salt,
                manifest->gen))
            .front());
  }
  EXPECT_EQ(shard_nodes.size(), 6u) << "k+m shards on k+m distinct nodes";
}

TEST_F(EcOutageTest, EveryPairOfNodeOutagesStaysReadable) {
  std::vector<Bytes> originals;
  const std::size_t sizes[] = {0, 3, 700, 8192, 100000};
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    originals.push_back(Payload(static_cast<int>(i), sizes[i]));
    ASSERT_TRUE(
        ec_->Put("o" + std::to_string(i), originals.back()).ok());
  }
  // ANY m=2 simultaneous outages: all 28 node pairs, every object readable.
  for (int down1 = 0; down1 < kNodes; ++down1) {
    for (int down2 = down1 + 1; down2 < kNodes; ++down2) {
      nodes_->SetNodeDown(down1, true);
      nodes_->SetNodeDown(down2, true);
      for (std::size_t i = 0; i < std::size(sizes); ++i) {
        auto got = ec_->Get("o" + std::to_string(i));
        ASSERT_TRUE(got.ok())
            << "object " << i << " with nodes " << down1 << "," << down2
            << " down: " << got.status().ToString();
        EXPECT_EQ(*got, originals[i]) << i;
      }
      AllUp();
    }
  }
  EXPECT_GT(ec_->counters().degraded_reads, 0u);
  EXPECT_GT(registry_.Snapshot().counter("ec.degraded_reads"), 0u);
}

TEST_F(EcOutageTest, UnreachableManifestCopiesAreLeftAlone) {
  ASSERT_TRUE(ec_->Put("cold", Payload(3, 7000)).ok());
  auto copies = nodes_->List("cold..ecm");
  ASSERT_TRUE(copies.ok());
  ASSERT_EQ(copies->size(), 3u);
  // Down the node holding one manifest copy: the copy is intact on the
  // dead node, so the probe must report it unreachable — NOT missing — and
  // repair must find nothing to do. (Treating node-down as missing made
  // every scrub pass during an outage rewrite all manifest copies, racing
  // concurrent overwrites with a stale generation.)
  nodes_->SetNodeDown(nodes_->ReplicaNodes(copies->front()).front(), true);
  auto probe = ec_->ProbeStripe("cold");
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->manifest_copies_unreachable, 1);
  EXPECT_EQ(probe->manifest_copies_missing, 0);
  EXPECT_EQ(probe->manifest_copies_bad, 0);
  EXPECT_TRUE(probe->missing.empty());
  EXPECT_TRUE(probe->corrupt.empty());
  auto repaired = ec_->RepairStripe("cold", *probe);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(*repaired, 0);
  AllUp();
}

// The CI durability gate (ctest: ec_durability_smoke, chaos label, <30 s):
// encode → kill m nodes → read-verify → heal → corrupt → scrub-repair.
TEST(EcDurabilitySmoke, EncodeKillReadScrubHeal) {
  obs::MetricsRegistry registry;
  ClusterConfig cc = ClusterConfig::Instant(8);
  cc.replication = 1;
  auto nodes = std::make_shared<ClusterObjectStore>(cc);
  EcStoreOptions options;
  options.placement = ClusterPrimaryPlacement(nodes);
  options.metrics = &registry;
  options.async = AsyncIoConfig::ForTests();
  auto ec = std::make_shared<EcStore>(nodes, options);

  // Encode.
  std::vector<Bytes> originals;
  for (int i = 0; i < 8; ++i) {
    originals.push_back(Payload(i, 16384 + i * 777));
    ASSERT_TRUE(ec->Put("f" + std::to_string(i), originals.back()).ok());
  }
  // Kill m nodes, read-verify everything through reconstruction.
  nodes->SetNodeDown(1, true);
  nodes->SetNodeDown(5, true);
  for (int i = 0; i < 8; ++i) {
    auto got = ec->Get("f" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().ToString();
    EXPECT_EQ(*got, originals[static_cast<std::size_t>(i)]) << i;
  }
  nodes->SetNodeDown(1, false);
  nodes->SetNodeDown(5, false);

  // Corrupt two shards at rest, then scrub: both repaired, stripe healthy.
  auto manifest = ec->LoadManifest("f0");
  ASSERT_TRUE(manifest.ok());
  for (int index : {0, 3}) {
    const std::string skey = EcShardKey(
        "f0", index, manifest->shards[static_cast<std::size_t>(index)].salt,
        manifest->gen);
    Bytes raw = nodes->Get(skey).value();
    raw[raw.size() / 2] ^= 0x80;
    ASSERT_TRUE(nodes->Put(skey, raw).ok());
  }
  ScrubberOptions sopts = ScrubberOptions::ForTests();
  sopts.metrics = &registry;
  Scrubber scrubber(ec, sopts);
  auto report = scrubber.RunOnce();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->corrupt, 2u);
  EXPECT_EQ(report->repaired, 2u);
  EXPECT_EQ(registry.Snapshot().counter("ec.scrub.repaired"), 2u);

  // Healed: a rescrub is clean and reads stay healthy.
  auto rescrub = scrubber.RunOnce();
  ASSERT_TRUE(rescrub.ok());
  EXPECT_EQ(rescrub->corrupt, 0u);
  EXPECT_EQ(*ec->Get("f0"), originals[0]);
}

}  // namespace
}  // namespace arkfs
