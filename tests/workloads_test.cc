// Tests for the workload generators: minitar (USTAR), dataset, mdtest, fio.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "objstore/memory_store.h"
#include "workloads/dataset.h"
#include "workloads/fio_like.h"
#include "workloads/mdtest.h"
#include "workloads/minitar.h"

namespace arkfs::workloads {
namespace {

// --- USTAR codec ---

TEST(TarHeaderTest, RoundTrip) {
  TarEntry entry;
  entry.name = "dir/sub/file.dat";
  entry.mode = 0640;
  entry.uid = 1000;
  entry.gid = 2000;
  entry.size = 123456;
  entry.mtime = 1700000000;
  entry.typeflag = '0';

  Bytes block = EncodeTarHeader(entry);
  ASSERT_EQ(block.size(), kTarBlock);
  auto decoded = DecodeTarHeader(block);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->name, entry.name);
  EXPECT_EQ(decoded->mode, entry.mode);
  EXPECT_EQ(decoded->uid, entry.uid);
  EXPECT_EQ(decoded->gid, entry.gid);
  EXPECT_EQ(decoded->size, entry.size);
  EXPECT_EQ(decoded->mtime, entry.mtime);
  EXPECT_EQ(decoded->typeflag, '0');
}

TEST(TarHeaderTest, ChecksumDetectsCorruption) {
  TarEntry entry;
  entry.name = "x";
  entry.size = 1;
  Bytes block = EncodeTarHeader(entry);
  block[0] ^= 0xFF;
  EXPECT_FALSE(DecodeTarHeader(block).ok());
}

TEST(TarHeaderTest, NonUstarRejected) {
  Bytes block(kTarBlock, 0);
  EXPECT_FALSE(DecodeTarHeader(block).ok());
  EXPECT_TRUE(IsZeroBlock(block));
}

TEST(TarHeaderTest, LongNameUsesPrefixField) {
  // 172 chars: splits as prefix "aaa.../bbb..." (111 <= 155) + name (60).
  TarEntry entry;
  entry.name = std::string(80, 'a') + "/" + std::string(30, 'b') + "/" +
               std::string(60, 'c');
  entry.size = 0;
  auto decoded = DecodeTarHeader(EncodeTarHeader(entry));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->name, entry.name);
}

TEST(TarHeaderTest, UnsplittableLongNameTruncates) {
  // No '/' placement satisfies USTAR's prefix(155)/name(100) limits; the
  // writer truncates rather than corrupting the archive (documented).
  TarEntry entry;
  entry.name = std::string(80, 'a') + "/" + std::string(80, 'b') + "/" +
               std::string(40, 'c');
  entry.size = 0;
  auto decoded = DecodeTarHeader(EncodeTarHeader(entry));
  ASSERT_TRUE(decoded.ok());
  EXPECT_LE(decoded->name.size(), 100u);
}

TEST(TarHeaderTest, SymlinkEntry) {
  TarEntry entry;
  entry.name = "link";
  entry.typeflag = '2';
  entry.linkname = "/target/elsewhere";
  entry.size = 0;
  auto decoded = DecodeTarHeader(EncodeTarHeader(entry));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->typeflag, '2');
  EXPECT_EQ(decoded->linkname, "/target/elsewhere");
}

TEST(TarStreamTest, WriterReaderRoundTrip) {
  Bytes archive;
  TarWriter writer([&](ByteSpan b) {
    archive.insert(archive.end(), b.begin(), b.end());
    return Status::Ok();
  });
  ASSERT_TRUE(writer.AddDirectory("d").ok());
  TarEntry f1;
  f1.name = "d/one.txt";
  f1.size = 5;
  ASSERT_TRUE(writer.AddFile(f1, AsBytes("hello")).ok());
  TarEntry f2;
  f2.name = "d/empty";
  f2.size = 0;
  ASSERT_TRUE(writer.AddFile(f2, {}).ok());
  ASSERT_TRUE(writer.Finish().ok());
  // Everything is 512-aligned, trailer included.
  EXPECT_EQ(archive.size() % kTarBlock, 0u);

  TarReader reader(
      [&](std::uint64_t off, std::uint64_t len) -> Result<Bytes> {
        len = std::min<std::uint64_t>(len, archive.size() - off);
        return Bytes(archive.begin() + off, archive.begin() + off + len);
      },
      archive.size());
  auto e1 = reader.NextEntry();
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(e1->entry.name, "d/");
  EXPECT_EQ(e1->entry.typeflag, '5');
  auto e2 = reader.NextEntry();
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e2->entry.name, "d/one.txt");
  auto content = reader.ReadContent(e2->entry, e2->content_offset);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(ToString(*content), "hello");
  auto e3 = reader.NextEntry();
  ASSERT_TRUE(e3.ok());
  EXPECT_EQ(e3->entry.size, 0u);
  auto done = reader.NextEntry();
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done->done);
}

TEST(TarStreamTest, FinishTwiceRejected) {
  TarWriter writer([](ByteSpan) { return Status::Ok(); });
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_FALSE(writer.Finish().ok());
  TarEntry f;
  f.name = "late";
  f.size = 0;
  EXPECT_FALSE(writer.AddFile(f, {}).ok());
}

TEST(TarStreamTest, SizeMismatchRejected) {
  TarWriter writer([](ByteSpan) { return Status::Ok(); });
  TarEntry f;
  f.name = "f";
  f.size = 10;
  EXPECT_EQ(writer.AddFile(f, AsBytes("short")).code(), Errc::kInval);
}

TEST(TarStreamTest, TruncatedArchiveEndsCleanly) {
  Bytes archive;
  TarWriter writer([&](ByteSpan b) {
    archive.insert(archive.end(), b.begin(), b.end());
    return Status::Ok();
  });
  TarEntry f;
  f.name = "f";
  f.size = 100;
  ASSERT_TRUE(writer.AddFile(f, Bytes(100, 1)).ok());
  // No Finish() — simulate a torn archive missing the trailer.
  TarReader reader(
      [&](std::uint64_t off, std::uint64_t len) -> Result<Bytes> {
        len = std::min<std::uint64_t>(len, archive.size() - off);
        return Bytes(archive.begin() + off, archive.begin() + off + len);
      },
      archive.size());
  ASSERT_TRUE(reader.NextEntry().ok());
  auto end = reader.NextEntry();
  ASSERT_TRUE(end.ok());
  EXPECT_TRUE(end->done);
}

// --- end-to-end tar over ArkFS ---

class TarVfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_shared<MemoryObjectStore>();
    cluster_ =
        ArkFsCluster::Create(store_, ArkFsClusterOptions::ForTests()).value();
    fs_ = cluster_->AddClient().value();
  }
  ObjectStorePtr store_;
  std::unique_ptr<ArkFsCluster> cluster_;
  std::shared_ptr<Client> fs_;
  UserCred root_ = UserCred::Root();
};

TEST_F(TarVfsTest, DiskToVfsToDiskRoundTrip) {
  sim::SimDisk disk(sim::DiskConfig::Instant());
  auto dataset = GenerateDataset(DatasetSpec::Scaled(25, 4000));
  ASSERT_TRUE(LoadDatasetToDisk(dataset, disk).ok());
  std::vector<std::string> names;
  for (const auto& f : dataset) names.push_back(f.name);

  ASSERT_TRUE(ArchiveDiskToVfs(disk, names, *fs_, "/a.tar", root_).ok());
  ASSERT_TRUE(ExtractVfsArchive(*fs_, "/a.tar", "/out", root_).ok());
  for (const auto& f : dataset) {
    auto data = fs_->ReadWholeFile("/out/" + f.name, root_);
    ASSERT_TRUE(data.ok()) << f.name;
    EXPECT_TRUE(VerifyDatasetFile(f, *data)) << f.name;
  }
  // And back out to the disk.
  ASSERT_TRUE(ArchiveVfsToDisk(*fs_, "/out", disk, "back.tar", root_).ok());
  EXPECT_TRUE(disk.Exists("back.tar"));
  auto back = disk.ReadFile("back.tar");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size() % kTarBlock, 0u);
}

TEST_F(TarVfsTest, ExtractCreatesMissingParents) {
  sim::SimDisk disk(sim::DiskConfig::Instant());
  ASSERT_TRUE(disk.WriteFile("deep/nested/file.bin", AsBytes("data")).ok());
  ASSERT_TRUE(
      ArchiveDiskToVfs(disk, {"deep/nested/file.bin"}, *fs_, "/t.tar", root_)
          .ok());
  ASSERT_TRUE(ExtractVfsArchive(*fs_, "/t.tar", "/x", root_).ok());
  EXPECT_EQ(ToString(*fs_->ReadWholeFile("/x/deep/nested/file.bin", root_)),
            "data");
}

// --- dataset generator ---

TEST(DatasetTest, DeterministicFromSeed) {
  auto a = GenerateDataset(DatasetSpec::Scaled(50));
  auto b = GenerateDataset(DatasetSpec::Scaled(50));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].size, b[i].size);
    EXPECT_EQ(a[i].content_seed, b[i].content_seed);
  }
}

TEST(DatasetTest, SizesWithinBounds) {
  auto spec = DatasetSpec::Scaled(500, 10000);
  for (const auto& f : GenerateDataset(spec)) {
    EXPECT_GE(f.size, static_cast<std::uint64_t>(spec.min_bytes));
    EXPECT_LE(f.size, static_cast<std::uint64_t>(spec.max_bytes));
  }
}

TEST(DatasetTest, VerifyCatchesTampering) {
  auto files = GenerateDataset(DatasetSpec::Scaled(3));
  Bytes content = DatasetFileContent(files[0]);
  EXPECT_TRUE(VerifyDatasetFile(files[0], content));
  content[content.size() / 2] ^= 1;
  EXPECT_FALSE(VerifyDatasetFile(files[0], content));
  content.pop_back();
  EXPECT_FALSE(VerifyDatasetFile(files[0], content));
}

TEST(DatasetTest, PaperScaleDistribution) {
  // The unscaled spec approximates MS-COCO: mean around 170 KB for ~7 GB /
  // 41K files. Check the mean lands in the tens-to-hundreds-of-KB band.
  DatasetSpec spec;
  spec.num_files = 2000;
  auto files = GenerateDataset(spec);
  const double mean =
      static_cast<double>(TotalBytes(files)) / files.size();
  EXPECT_GT(mean, 80e3);
  EXPECT_LT(mean, 350e3);
}

// --- mdtest / fio over the real stack ---

VfsPtr SharedArkMount(std::unique_ptr<ArkFsCluster>& cluster,
                      std::shared_ptr<Client>& keep) {
  keep = cluster->AddClient().value();
  return keep;
}

TEST(MdtestRunnerTest, EasyPhasesAccountOps) {
  auto store = std::make_shared<MemoryObjectStore>();
  auto cluster =
      ArkFsCluster::Create(store, ArkFsClusterOptions::ForTests()).value();
  std::shared_ptr<Client> client;
  VfsPtr mount = SharedArkMount(cluster, client);

  MdtestConfig config;
  config.num_processes = 4;
  config.files_per_process = 20;
  auto results = RunMdtestEasy([&](int) { return mount; }, config);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 3u);
  for (const auto& phase : *results) {
    EXPECT_EQ(phase.ops, 80u) << phase.phase;
    EXPECT_EQ(phase.errors, 0u) << phase.phase;
    EXPECT_GT(phase.ops_per_second, 0.0) << phase.phase;
  }
  // DELETE removed everything.
  for (int p = 0; p < 4; ++p) {
    auto entries =
        client->ReadDir("/mdtest/proc" + std::to_string(p), UserCred::Root());
    ASSERT_TRUE(entries.ok());
    EXPECT_TRUE(entries->empty());
  }
}

TEST(MdtestRunnerTest, HardPhasesWriteAndReadBack) {
  auto store = std::make_shared<MemoryObjectStore>();
  auto cluster =
      ArkFsCluster::Create(store, ArkFsClusterOptions::ForTests()).value();
  std::shared_ptr<Client> client;
  VfsPtr mount = SharedArkMount(cluster, client);

  MdtestConfig config;
  config.num_processes = 4;
  config.files_per_process = 10;
  config.file_size = 3901;
  config.shared_dirs = 3;
  auto results = RunMdtestHard([&](int) { return mount; }, config);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 4u);
  for (const auto& phase : *results) {
    EXPECT_EQ(phase.errors, 0u) << phase.phase;
  }
}

TEST(FioRunnerTest, WriteThenReadBandwidths) {
  auto store = std::make_shared<MemoryObjectStore>();
  auto cluster =
      ArkFsCluster::Create(store, ArkFsClusterOptions::ForTests()).value();
  std::shared_ptr<Client> client;
  VfsPtr mount = SharedArkMount(cluster, client);

  FioConfig config;
  config.num_jobs = 3;
  config.file_size = 64 * 1024;
  config.request_size = 8 * 1024;
  config.warmup = false;
  config.drop_caches = [&] { (void)mount->DropCaches(); };
  auto result = RunFio([&](int) { return mount; }, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->errors, 0u);
  EXPECT_GT(result->write_bw_bps, 0.0);
  EXPECT_GT(result->read_bw_bps, 0.0);
  // Data integrity through the whole stack.
  auto st = client->Stat("/fio/job0.dat", UserCred::Root());
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, config.file_size);
}

}  // namespace
}  // namespace arkfs::workloads
