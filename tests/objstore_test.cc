// Tests for the object-store backends, decorators and the registry.
#include <gtest/gtest.h>

#include <filesystem>

#include "objstore/cluster_store.h"
#include "objstore/disk_store.h"
#include "objstore/memory_store.h"
#include "objstore/registry.h"
#include "objstore/wrappers.h"

namespace arkfs {
namespace {

// Contract tests run against every backend via a parameterized suite.
enum class Backend { kMemory, kDisk, kClusterRados, kClusterS3Semantics };

ObjectStorePtr MakeStore(Backend backend, const std::string& tag) {
  switch (backend) {
    case Backend::kMemory:
      return std::make_shared<MemoryObjectStore>();
    case Backend::kDisk: {
      auto dir =
          std::filesystem::temp_directory_path() / ("arkfs_store_" + tag);
      std::filesystem::remove_all(dir);
      return DiskObjectStore::Open(dir).value();
    }
    case Backend::kClusterRados:
      return std::make_shared<ClusterObjectStore>(ClusterConfig::Instant(4));
    case Backend::kClusterS3Semantics: {
      ClusterConfig c = ClusterConfig::Instant(4);
      c.profile.supports_partial_write = false;
      // Like ClusterConfig::S3Like(): whole-object semantics at the node
      // stores, PutRange served by read-modify-write emulation.
      c.emulate_partial_write = true;
      return std::make_shared<ClusterObjectStore>(c);
    }
  }
  return nullptr;
}

class StoreContractTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    store_ = MakeStore(GetParam(), ::testing::UnitTest::GetInstance()
                                       ->current_test_info()
                                       ->name());
  }
  ObjectStorePtr store_;
};

TEST_P(StoreContractTest, PutGetDelete) {
  EXPECT_TRUE(store_->Put("k1", ToBytes("hello")).ok());
  auto got = store_->Get("k1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), "hello");
  EXPECT_TRUE(store_->Delete("k1").ok());
  EXPECT_EQ(store_->Get("k1").code(), Errc::kNoEnt);
  EXPECT_EQ(store_->Delete("k1").code(), Errc::kNoEnt);
}

TEST_P(StoreContractTest, PutReplaces) {
  ASSERT_TRUE(store_->Put("k", ToBytes("aaaa")).ok());
  ASSERT_TRUE(store_->Put("k", ToBytes("bb")).ok());
  EXPECT_EQ(ToString(store_->Get("k").value()), "bb");
}

TEST_P(StoreContractTest, EmptyObject) {
  ASSERT_TRUE(store_->Put("empty", {}).ok());
  auto got = store_->Get("empty");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
  EXPECT_EQ(store_->Head("empty")->size, 0u);
}

TEST_P(StoreContractTest, GetRangeSemantics) {
  ASSERT_TRUE(store_->Put("k", ToBytes("0123456789")).ok());
  EXPECT_EQ(ToString(store_->GetRange("k", 2, 3).value()), "234");
  EXPECT_EQ(ToString(store_->GetRange("k", 8, 100).value()), "89");
  EXPECT_TRUE(store_->GetRange("k", 100, 5)->empty());
  EXPECT_EQ(store_->GetRange("missing", 0, 1).code(), Errc::kNoEnt);
}

TEST_P(StoreContractTest, HeadReportsSize) {
  ASSERT_TRUE(store_->Put("k", ToBytes("12345")).ok());
  auto meta = store_->Head("k");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->size, 5u);
  EXPECT_EQ(store_->Head("nope").code(), Errc::kNoEnt);
}

TEST_P(StoreContractTest, ListByPrefixSorted) {
  ASSERT_TRUE(store_->Put("a/2", ToBytes("x")).ok());
  ASSERT_TRUE(store_->Put("a/1", ToBytes("x")).ok());
  ASSERT_TRUE(store_->Put("b/1", ToBytes("x")).ok());
  auto keys = store_->List("a/");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(*keys, (std::vector<std::string>{"a/1", "a/2"}));
  EXPECT_EQ(store_->List("")->size(), 3u);
  EXPECT_TRUE(store_->List("zz")->empty());
}

TEST_P(StoreContractTest, PartialWriteOrNotSup) {
  ASSERT_TRUE(store_->Put("k", ToBytes("AAAAAAAA")).ok());
  Status st = store_->PutRange("k", 2, AsBytes("bb"));
  if (st.code() == Errc::kNotSup) {
    // kNotSup is only legitimate when the backend neither supports partial
    // writes natively nor emulates them; no stock backend is configured
    // that way any more (S3 semantics emulate via read-modify-write).
    EXPECT_FALSE(store_->supports_partial_write());
    return;
  }
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(ToString(store_->Get("k").value()), "AAbbAAAA");
  // Extension through PutRange.
  ASSERT_TRUE(store_->PutRange("k", 8, AsBytes("ZZ")).ok());
  EXPECT_EQ(store_->Head("k")->size, 10u);
}

TEST_P(StoreContractTest, PartialWriteCreatesAndZeroFills) {
  // Every stock backend serves PutRange — natively, or (S3 semantics)
  // through the cluster store's read-modify-write emulation — so the old
  // reasoned skip for whole-object profiles is a real assertion now.
  ASSERT_TRUE(store_->PutRange("new", 4, AsBytes("xy")).ok());
  auto got = store_->Get("new");
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 6u);
  EXPECT_EQ((*got)[0], 0);
  EXPECT_EQ((*got)[3], 0);
  EXPECT_EQ((*got)[4], 'x');
}

TEST_P(StoreContractTest, MaxObjectSizeEnforced) {
  Bytes big(store_->max_object_size() + 1, 7);
  EXPECT_EQ(store_->Put("big", big).code(), Errc::kFBig);
}

TEST_P(StoreContractTest, BinaryKeysAndValues) {
  std::string key = "bin";
  key.push_back('\x01');
  key.push_back('\0');
  key.push_back('\xff');
  key += " key";
  Bytes value{0, 1, 2, 255, 254, 0, 9};
  ASSERT_TRUE(store_->Put(key, value).ok());
  EXPECT_EQ(store_->Get(key).value(), value);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, StoreContractTest,
                         ::testing::Values(Backend::kMemory, Backend::kDisk,
                                           Backend::kClusterRados,
                                           Backend::kClusterS3Semantics),
                         [](const auto& info) {
                           switch (info.param) {
                             case Backend::kMemory: return "Memory";
                             case Backend::kDisk: return "Disk";
                             case Backend::kClusterRados: return "ClusterRados";
                             case Backend::kClusterS3Semantics:
                               return "ClusterS3";
                           }
                           return "Unknown";
                         });

TEST(DiskStoreTest, PersistsAcrossReopen) {
  auto dir = std::filesystem::temp_directory_path() / "arkfs_store_reopen";
  std::filesystem::remove_all(dir);
  {
    auto store = DiskObjectStore::Open(dir).value();
    ASSERT_TRUE(store->Put("persisted", ToBytes("value")).ok());
  }
  auto store = DiskObjectStore::Open(dir).value();
  EXPECT_EQ(ToString(store->Get("persisted").value()), "value");
}

TEST(ClusterStoreTest, ReplicationFactorRespected) {
  ClusterConfig config = ClusterConfig::Instant(8);
  config.replication = 3;
  ClusterObjectStore store(config);
  auto replicas = store.ReplicaNodes("some-key");
  EXPECT_EQ(replicas.size(), 3u);
  std::set<int> unique(replicas.begin(), replicas.end());
  EXPECT_EQ(unique.size(), 3u);
}

TEST(ClusterStoreTest, PlacementIsDeterministic) {
  ClusterConfig config = ClusterConfig::Instant(8);
  ClusterObjectStore a(config), b(config);
  for (int i = 0; i < 50; ++i) {
    const std::string key = "key-" + std::to_string(i);
    EXPECT_EQ(a.ReplicaNodes(key), b.ReplicaNodes(key));
  }
}

TEST(ClusterStoreTest, PlacementIsReasonablyBalanced) {
  ClusterConfig config = ClusterConfig::Instant(8);
  config.replication = 1;
  ClusterObjectStore store(config);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(
        store.Put("obj-" + std::to_string(i), ToBytes("x")).ok());
  }
  auto counts = store.PerNodeObjectCounts();
  ASSERT_EQ(counts.size(), 8u);
  for (auto c : counts) {
    // Each of 8 nodes should hold roughly 500; allow generous imbalance.
    EXPECT_GT(c, 150u);
    EXPECT_LT(c, 1200u);
  }
}

TEST(ClusterStoreTest, DataSurvivesOnReplicas) {
  ClusterConfig config = ClusterConfig::Instant(6);
  config.replication = 2;
  ClusterObjectStore store(config);
  ASSERT_TRUE(store.Put("k", ToBytes("replicated")).ok());
  EXPECT_EQ(ToString(store.Get("k").value()), "replicated");
  auto counts = store.PerNodeObjectCounts();
  std::size_t total = 0;
  for (auto c : counts) total += c;
  EXPECT_EQ(total, 2u);  // primary + 1 replica
}

TEST(CountingStoreTest, TracksOpsAndBytes) {
  auto base = std::make_shared<MemoryObjectStore>();
  CountingStore store(base);
  ASSERT_TRUE(store.Put("k", ToBytes("12345")).ok());
  ASSERT_TRUE(store.Get("k").ok());
  ASSERT_TRUE(store.Head("k").ok());
  ASSERT_TRUE(store.List("").ok());
  ASSERT_TRUE(store.Delete("k").ok());
  auto c = store.Snapshot();
  EXPECT_EQ(c.puts, 1u);
  EXPECT_EQ(c.gets, 1u);
  EXPECT_EQ(c.heads, 1u);
  EXPECT_EQ(c.lists, 1u);
  EXPECT_EQ(c.deletes, 1u);
  EXPECT_EQ(c.bytes_written, 5u);
  EXPECT_EQ(c.bytes_read, 5u);
  store.Reset();
  EXPECT_EQ(store.Snapshot().puts, 0u);
}

TEST(FaultInjectionTest, InjectsOnMatch) {
  auto base = std::make_shared<MemoryObjectStore>();
  int puts_allowed = 2;
  FaultInjectionStore store(base, [&](std::string_view op, const std::string&) {
    if (op == "put" && puts_allowed-- <= 0) return Errc::kIo;
    return Errc::kOk;
  });
  EXPECT_TRUE(store.Put("a", ToBytes("1")).ok());
  EXPECT_TRUE(store.Put("b", ToBytes("2")).ok());
  EXPECT_EQ(store.Put("c", ToBytes("3")).code(), Errc::kIo);
  EXPECT_TRUE(store.Get("a").ok());  // reads unaffected
}

TEST(RegistryTest, BuiltinsPresent) {
  auto names = BackendRegistry::Instance().Names();
  for (const char* expected : {"memory", "disk", "rados", "s3"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(RegistryTest, CreatesFromSpec) {
  auto mem = BackendRegistry::Instance().Create("memory");
  ASSERT_TRUE(mem.ok());
  EXPECT_TRUE((*mem)->supports_partial_write());

  auto s3 = BackendRegistry::Instance().Create("s3");
  ASSERT_TRUE(s3.ok());
  EXPECT_FALSE((*s3)->supports_partial_write());

  EXPECT_FALSE(BackendRegistry::Instance().Create("nonsense").ok());
  EXPECT_FALSE(BackendRegistry::Instance().Create("disk").ok());  // needs path
}

TEST(RegistryTest, CustomBackendRegistration) {
  auto& reg = BackendRegistry::Instance();
  const bool first = reg.Register("test-custom", [](const std::string&) {
    return Result<ObjectStorePtr>(
        ObjectStorePtr(std::make_shared<MemoryObjectStore>()));
  });
  if (first) {
    // Re-registration under the same name is refused.
    EXPECT_FALSE(reg.Register("test-custom", [](const std::string&) {
      return Result<ObjectStorePtr>(ErrStatus(Errc::kInval));
    }));
  }
  EXPECT_TRUE(reg.Create("test-custom").ok());
}

}  // namespace
}  // namespace arkfs
