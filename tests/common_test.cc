// Unit tests for src/common: status, uuid, codec, crc, rng, stats.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/clock.h"
#include "common/codec.h"
#include "common/env_config.h"
#include "common/mpmc_queue.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/uuid.h"

namespace arkfs {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), Errc::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndDetail) {
  Status st = ErrStatus(Errc::kNoEnt, "missing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.errno_value(), 2);
  EXPECT_EQ(st.ToString(), "ENOENT: missing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ErrStatus(Errc::kIo, "boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Errc::kIo);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MacroPropagation) {
  auto inner = []() -> Result<int> { return ErrStatus(Errc::kAccess); };
  auto outer = [&]() -> Result<int> {
    ARKFS_ASSIGN_OR_RETURN(int v, inner());
    return v + 1;
  };
  EXPECT_EQ(outer().code(), Errc::kAccess);
}

TEST(UuidTest, RoundTripsThroughString) {
  const Uuid u = NewUuid();
  auto parsed = Uuid::FromString(u.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, u);
}

TEST(UuidTest, RejectsMalformedStrings) {
  EXPECT_FALSE(Uuid::FromString("short").ok());
  EXPECT_FALSE(Uuid::FromString(std::string(32, 'g')).ok());
  EXPECT_TRUE(Uuid::FromString(std::string(32, 'a')).ok());
}

TEST(UuidTest, RandomUuidsAreDistinct) {
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(NewUuid().ToString()).second);
  }
}

TEST(UuidTest, DeterministicUuidIsStable) {
  EXPECT_EQ(DeterministicUuid(1, 2), DeterministicUuid(1, 2));
  EXPECT_NE(DeterministicUuid(1, 2), DeterministicUuid(1, 3));
  EXPECT_NE(DeterministicUuid(2, 2), DeterministicUuid(1, 2));
}

TEST(UuidTest, VersionBitsAreStamped) {
  const Uuid u = NewUuid();
  EXPECT_EQ((u.hi >> 12) & 0xF, 4u);        // version 4
  EXPECT_EQ((u.lo >> 62) & 0x3, 0x2u);      // variant 1
}

TEST(CodecTest, PrimitivesRoundTrip) {
  Encoder enc;
  enc.PutU8(0xAB);
  enc.PutU16(0x1234);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutI64(-42);
  enc.PutString("hello");
  enc.PutUuid(Uuid{7, 9});

  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.GetU8().value(), 0xAB);
  EXPECT_EQ(dec.GetU16().value(), 0x1234);
  EXPECT_EQ(dec.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(dec.GetU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(dec.GetI64().value(), -42);
  EXPECT_EQ(dec.GetString().value(), "hello");
  EXPECT_EQ(dec.GetUuid().value(), (Uuid{7, 9}));
  EXPECT_TRUE(dec.done());
}

TEST(CodecTest, VarintBoundaries) {
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                          std::uint64_t{127}, std::uint64_t{128},
                          std::uint64_t{16383}, std::uint64_t{16384},
                          std::uint64_t{UINT64_MAX}}) {
    Encoder enc;
    enc.PutVarint(v);
    Decoder dec(enc.buffer());
    EXPECT_EQ(dec.GetVarint().value(), v) << v;
  }
}

TEST(CodecTest, TruncatedBufferFailsCleanly) {
  Encoder enc;
  enc.PutU64(12345);
  Bytes data = std::move(enc).Take();
  data.pop_back();
  Decoder dec(data);
  EXPECT_EQ(dec.GetU64().code(), Errc::kIo);
}

TEST(CodecTest, TruncatedStringFailsCleanly) {
  Encoder enc;
  enc.PutString("abcdef");
  Bytes data = std::move(enc).Take();
  data.resize(3);
  Decoder dec(data);
  EXPECT_EQ(dec.GetString().code(), Errc::kIo);
}

TEST(Crc32cTest, KnownVector) {
  // Standard CRC-32C test vector: "123456789" -> 0xE3069283.
  const std::string s = "123456789";
  EXPECT_EQ(Crc32c(AsBytes(s)), 0xE3069283u);
}

TEST(Crc32cTest, DetectsCorruption) {
  Bytes data = ToBytes("some journal transaction payload");
  const std::uint32_t crc = Crc32c(data);
  data[3] ^= 1;
  EXPECT_NE(Crc32c(data), crc);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    auto v = rng.Range(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    if (v == 3) saw_lo = true;
    if (v == 5) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, LogNormalIsPositiveAndCenteredOnMedian) {
  Rng rng(11);
  int below = 0, total = 20000;
  for (int i = 0; i < total; ++i) {
    double v = rng.LogNormal(100.0, 0.8);
    EXPECT_GT(v, 0.0);
    if (v < 100.0) ++below;
  }
  // Median property: roughly half the samples fall below the median.
  EXPECT_NEAR(static_cast<double>(below) / total, 0.5, 0.03);
}

TEST(MpmcQueueTest, FifoOrder) {
  MpmcQueue<int> q;
  for (int i = 0; i < 10; ++i) q.Push(i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.Pop().value(), i);
}

TEST(MpmcQueueTest, CloseDrainsThenEnds) {
  MpmcQueue<int> q;
  q.Push(1);
  q.Close();
  EXPECT_FALSE(q.Push(2));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(MpmcQueueTest, CrossThreadDelivery) {
  MpmcQueue<int> q;
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) q.Push(i);
    q.Close();
  });
  int count = 0;
  while (q.Pop().has_value()) ++count;
  producer.join();
  EXPECT_EQ(count, 1000);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  WaitGroup wg;
  wg.Add(50);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(pool.Submit([&] {
      count.fetch_add(1);
      wg.Done();
    }));
  }
  wg.Wait();
  EXPECT_EQ(count.load(), 50);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(LatencyHistogramTest, BasicPercentiles) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(Micros(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_GE(h.Percentile(50).count(), Micros(450).count());
  EXPECT_LE(h.Percentile(50).count(), Micros(600).count());
  EXPECT_GE(h.Percentile(99).count(), Micros(900).count());
  EXPECT_GE(h.max().count(), Micros(1000).count());
  EXPECT_LE(h.min().count(), Micros(2).count());
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Record(Micros(5));
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(ThroughputMeterTest, CountsOpsAndBytes) {
  ThroughputMeter m;
  m.Start();
  m.AddOps(10);
  m.AddBytes(1 << 20);
  SleepFor(Millis(10));
  m.Stop();
  EXPECT_EQ(m.ops(), 10u);
  EXPECT_GT(m.OpsPerSecond(), 0.0);
  EXPECT_GT(m.BytesPerSecond(), 0.0);
}

TEST(FormatTest, HumanReadable) {
  EXPECT_NE(FormatOps(2.5e6).find("M ops/s"), std::string::npos);
  EXPECT_NE(FormatOps(2500).find("K ops/s"), std::string::npos);
  EXPECT_NE(FormatBytes(3e9).find("GB/s"), std::string::npos);
  EXPECT_NE(FormatBytes(3e6).find("MB/s"), std::string::npos);
}

// --- EnvConfig: the one parser for ARKFS_* knobs ---

// Scoped setenv/unsetenv so a failing assertion cannot leak a knob into
// later tests.
class EnvConfigTest : public ::testing::Test {
 protected:
  void Set(const char* name, const char* value) {
    ::setenv(name, value, 1);
    touched_.insert(name);
  }
  void TearDown() override {
    for (const auto& name : touched_) ::unsetenv(name.c_str());
  }
  std::set<std::string> touched_;
};

TEST_F(EnvConfigTest, DefaultsWhenUnset) {
  const env::EnvConfig c = env::EnvConfig::FromEnvironment();
  EXPECT_EQ(c.placement(), "replica");
  EXPECT_FALSE(c.tiering());
  EXPECT_EQ(c.durability(), "");
  EXPECT_FALSE(c.tenant().has_value());
  EXPECT_FALSE(c.bench_verbose());
  EXPECT_FALSE(c.chaos_seed().has_value());
  for (const env::Knob& knob : c.knobs()) {
    EXPECT_TRUE(knob.valid) << knob.name;
    EXPECT_FALSE(knob.from_env) << knob.name;
  }
}

TEST_F(EnvConfigTest, ParsesEveryKnob) {
  Set("ARKFS_PLACEMENT", "tiered");
  Set("ARKFS_TIERING", "on");
  Set("ARKFS_DURABILITY", "group");
  Set("ARKFS_TENANT", "42");
  Set("ARKFS_BENCH_VERBOSE", "1");
  Set("ARKFS_CHAOS_SEED", "12345");
  const env::EnvConfig c = env::EnvConfig::FromEnvironment();
  EXPECT_EQ(c.placement(), "tiered");
  EXPECT_TRUE(c.tiering());
  EXPECT_EQ(c.durability(), "group");
  ASSERT_TRUE(c.tenant().has_value());
  EXPECT_EQ(*c.tenant(), 42u);
  EXPECT_TRUE(c.bench_verbose());
  ASSERT_TRUE(c.chaos_seed().has_value());
  EXPECT_EQ(*c.chaos_seed(), 12345u);
  const env::Knob* knob = c.Find("ARKFS_PLACEMENT");
  ASSERT_NE(knob, nullptr);
  EXPECT_TRUE(knob->from_env);
  EXPECT_TRUE(knob->valid);
  EXPECT_EQ(knob->raw, "tiered");
  EXPECT_EQ(c.Find("ARKFS_NO_SUCH_KNOB"), nullptr);
}

TEST_F(EnvConfigTest, MalformedValuesKeepDefaultsAndReport) {
  Set("ARKFS_PLACEMENT", "raid6");
  Set("ARKFS_TIERING", "maybe");
  Set("ARKFS_DURABILITY", "eventually");
  Set("ARKFS_TENANT", "-3");
  Set("ARKFS_CHAOS_SEED", "0x10");
  const env::EnvConfig c = env::EnvConfig::FromEnvironment();
  // Typed accessors fall back to the defaults...
  EXPECT_EQ(c.placement(), "replica");
  EXPECT_FALSE(c.tiering());
  EXPECT_EQ(c.durability(), "");
  EXPECT_FALSE(c.tenant().has_value());
  EXPECT_FALSE(c.chaos_seed().has_value());
  // ...and the knob table records what went wrong for `arkfs_cli config`.
  for (const char* name : {"ARKFS_PLACEMENT", "ARKFS_TIERING",
                           "ARKFS_DURABILITY", "ARKFS_TENANT",
                           "ARKFS_CHAOS_SEED"}) {
    const env::Knob* knob = c.Find(name);
    ASSERT_NE(knob, nullptr) << name;
    EXPECT_TRUE(knob->from_env) << name;
    EXPECT_FALSE(knob->valid) << name;
    EXPECT_FALSE(knob->error.empty()) << name;
  }
  EXPECT_NE(c.DumpText().find("error="), std::string::npos);
}

TEST_F(EnvConfigTest, DumpTextListsEveryKnobOnce) {
  const env::EnvConfig c = env::EnvConfig::FromEnvironment();
  const std::string dump = c.DumpText();
  for (const char* name : {"ARKFS_PLACEMENT", "ARKFS_TIERING",
                           "ARKFS_DURABILITY", "ARKFS_TENANT",
                           "ARKFS_BENCH_VERBOSE", "ARKFS_CHAOS_SEED"}) {
    // Anchor on "NAME source=" — knob descriptions may cross-reference
    // other knobs by name.
    const std::string line = std::string(name) + " source=";
    const std::size_t first = dump.find(line);
    EXPECT_NE(first, std::string::npos) << name;
    EXPECT_EQ(dump.find(line, first + 1), std::string::npos)
        << name << " listed twice";
  }
}

}  // namespace
}  // namespace arkfs
