// Unit tests for src/meta: inode codec, ACL evaluation, metatable, paths.
#include <gtest/gtest.h>

#include "meta/acl.h"
#include "meta/dentry.h"
#include "meta/inode.h"
#include "meta/metatable.h"
#include "meta/path.h"

namespace arkfs {
namespace {

Inode FileInode(std::uint32_t mode, std::uint32_t uid, std::uint32_t gid) {
  Inode i = MakeInode(NewUuid(), FileType::kRegular, mode, uid, gid, kRootIno);
  return i;
}

TEST(InodeCodecTest, RoundTrip) {
  Inode i = FileInode(0640, 1000, 2000);
  i.size = 123456789;
  i.symlink_target = "";
  i.chunk_size = 1 << 20;
  i.version = 17;
  i.acl.Set({AclTag::kUserObj, 0, 7});
  i.acl.Set({AclTag::kUser, 1001, 5});
  i.acl.Set({AclTag::kGroupObj, 0, 5});
  i.acl.Set({AclTag::kMask, 0, 5});
  i.acl.Set({AclTag::kOther, 0, 0});

  auto decoded = Inode::Decode(i.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->ino, i.ino);
  EXPECT_EQ(decoded->mode, i.mode);
  EXPECT_EQ(decoded->size, i.size);
  EXPECT_EQ(decoded->chunk_size, i.chunk_size);
  EXPECT_EQ(decoded->version, i.version);
  EXPECT_EQ(decoded->acl, i.acl);
  EXPECT_EQ(decoded->parent, kRootIno);
}

TEST(InodeCodecTest, SymlinkTargetSurvives) {
  Inode i = MakeInode(NewUuid(), FileType::kSymlink, 0777, 0, 0, kRootIno);
  i.symlink_target = "/some/where/else";
  auto decoded = Inode::Decode(i.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->IsSymlink());
  EXPECT_EQ(decoded->symlink_target, "/some/where/else");
}

TEST(InodeCodecTest, CorruptBufferRejected) {
  Inode i = FileInode(0644, 0, 0);
  Bytes data = i.Encode();
  data.resize(data.size() / 2);
  EXPECT_FALSE(Inode::Decode(data).ok());
  Bytes bad_version = i.Encode();
  bad_version[0] = 99;
  EXPECT_FALSE(Inode::Decode(bad_version).ok());
}

// --- classic mode-bit permission checks ---

TEST(PermTest, OwnerUsesOwnerBits) {
  Inode i = FileInode(0640, 1000, 2000);
  UserCred owner{1000, 999, {}};
  EXPECT_TRUE(CheckAccess(i, owner, kPermRead).ok());
  EXPECT_TRUE(CheckAccess(i, owner, kPermWrite).ok());
  EXPECT_FALSE(CheckAccess(i, owner, kPermExec).ok());
}

TEST(PermTest, GroupUsesGroupBits) {
  Inode i = FileInode(0640, 1000, 2000);
  UserCred member{1001, 2000, {}};
  EXPECT_TRUE(CheckAccess(i, member, kPermRead).ok());
  EXPECT_FALSE(CheckAccess(i, member, kPermWrite).ok());
  UserCred supplementary{1001, 3000, {2000}};
  EXPECT_TRUE(CheckAccess(i, supplementary, kPermRead).ok());
}

TEST(PermTest, OtherUsesOtherBits) {
  Inode i = FileInode(0604, 1000, 2000);
  UserCred other{1001, 3000, {}};
  EXPECT_TRUE(CheckAccess(i, other, kPermRead).ok());
  EXPECT_FALSE(CheckAccess(i, other, kPermWrite).ok());
}

TEST(PermTest, OwnerBitsShadowGroupAndOther) {
  // Classic POSIX subtlety: the owner is matched first even if owner bits
  // grant *less* than group/other bits.
  Inode i = FileInode(0066, 1000, 2000);
  UserCred owner{1000, 2000, {}};
  EXPECT_FALSE(CheckAccess(i, owner, kPermRead).ok());
}

TEST(PermTest, RootBypassesReadWrite) {
  Inode i = FileInode(0000, 1000, 2000);
  EXPECT_TRUE(CheckAccess(i, UserCred::Root(), kPermRead).ok());
  EXPECT_TRUE(CheckAccess(i, UserCred::Root(), kPermWrite).ok());
  // Exec needs at least one exec bit even for root.
  EXPECT_FALSE(CheckAccess(i, UserCred::Root(), kPermExec).ok());
  i.mode = 0100;
  EXPECT_TRUE(CheckAccess(i, UserCred::Root(), kPermExec).ok());
}

// --- POSIX.1e ACL evaluation ---

Acl MakeBaseAcl() {
  Acl acl;
  acl.Set({AclTag::kUserObj, 0, 7});
  acl.Set({AclTag::kGroupObj, 0, 5});
  acl.Set({AclTag::kMask, 0, 7});
  acl.Set({AclTag::kOther, 0, 0});
  return acl;
}

TEST(AclTest, NamedUserEntryGrants) {
  Inode i = FileInode(0600, 1000, 2000);
  i.acl = MakeBaseAcl();
  i.acl.Set({AclTag::kUser, 1005, kPermRead | kPermWrite});
  UserCred named{1005, 9999, {}};
  EXPECT_TRUE(CheckAccess(i, named, kPermRead).ok());
  EXPECT_TRUE(CheckAccess(i, named, kPermWrite).ok());
  EXPECT_FALSE(CheckAccess(i, named, kPermExec).ok());
  UserCred stranger{1006, 9999, {}};
  EXPECT_FALSE(CheckAccess(i, stranger, kPermRead).ok());
}

TEST(AclTest, MaskCapsNamedEntries) {
  Inode i = FileInode(0600, 1000, 2000);
  i.acl = MakeBaseAcl();
  i.acl.Set({AclTag::kMask, 0, kPermRead});  // mask caps to read-only
  i.acl.Set({AclTag::kUser, 1005, kPermRead | kPermWrite});
  UserCred named{1005, 9999, {}};
  EXPECT_TRUE(CheckAccess(i, named, kPermRead).ok());
  EXPECT_FALSE(CheckAccess(i, named, kPermWrite).ok());
}

TEST(AclTest, NamedGroupEntryGrants) {
  Inode i = FileInode(0600, 1000, 2000);
  i.acl = MakeBaseAcl();
  i.acl.Set({AclTag::kGroup, 4242, kPermRead});
  UserCred member{1007, 1, {4242}};
  EXPECT_TRUE(CheckAccess(i, member, kPermRead).ok());
  EXPECT_FALSE(CheckAccess(i, member, kPermWrite).ok());
}

TEST(AclTest, GroupClassDenyDoesNotFallThroughToOther) {
  Inode i = FileInode(0600, 1000, 2000);
  i.acl = MakeBaseAcl();
  i.acl.Set({AclTag::kOther, 0, 7});         // other would grant everything
  i.acl.Set({AclTag::kGroup, 4242, kPermRead});
  UserCred member{1007, 1, {4242}};
  // Member matched the named group; write must NOT fall through to other.
  EXPECT_FALSE(CheckAccess(i, member, kPermWrite).ok());
}

TEST(AclTest, ValidationRules) {
  Acl incomplete;
  incomplete.Set({AclTag::kUserObj, 0, 7});
  EXPECT_FALSE(incomplete.Validate().ok());

  Acl named_without_mask = MakeBaseAcl();
  named_without_mask.Remove(AclTag::kMask, 0);
  named_without_mask.Set({AclTag::kUser, 5, 7});
  EXPECT_FALSE(named_without_mask.Validate().ok());

  EXPECT_TRUE(MakeBaseAcl().Validate().ok());
  EXPECT_TRUE(Acl{}.Validate().ok());  // empty = classic mode bits
}

TEST(AclTest, CodecRoundTrip) {
  Acl acl = MakeBaseAcl();
  acl.Set({AclTag::kUser, 77, 5});
  Encoder enc;
  acl.EncodeTo(enc);
  Decoder dec(enc.buffer());
  auto decoded = Acl::DecodeFrom(dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, acl);
}

// --- dentry / dentry block ---

TEST(DentryTest, BlockRoundTrip) {
  std::vector<Dentry> entries;
  for (int i = 0; i < 100; ++i) {
    entries.push_back({"file" + std::to_string(i), NewUuid(),
                       i % 3 == 0 ? FileType::kDirectory : FileType::kRegular});
  }
  auto decoded = DecodeDentryBlock(EncodeDentryBlock(entries));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), entries.size());
  EXPECT_EQ((*decoded)[42], entries[42]);
}

TEST(DentryTest, EmptyBlock) {
  auto decoded = DecodeDentryBlock(EncodeDentryBlock({}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(DentryTest, ShardObjectRoundTripCarriesEpoch) {
  std::vector<Dentry> entries;
  for (int i = 0; i < 50; ++i) {
    entries.push_back({"e" + std::to_string(i), NewUuid(), FileType::kRegular});
  }
  auto decoded = DecodeDentryShardObject(EncodeDentryShardObject(7, entries));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->epoch, 7u);
  ASSERT_EQ(decoded->entries.size(), entries.size());
  EXPECT_EQ(decoded->entries[13], entries[13]);

  auto empty = DecodeDentryShardObject(EncodeDentryShardObject(1, {}));
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->epoch, 1u);
  EXPECT_TRUE(empty->entries.empty());
}

TEST(DentryTest, ShardObjectRejectsTornPrefix) {
  // A torn whole-object put persists a strict prefix of the payload. The
  // trailing CRC must make EVERY proper prefix undecodable — a prefix that
  // decoded as a shorter-but-valid shard would silently drop entries.
  std::vector<Dentry> entries;
  for (int i = 0; i < 10; ++i) {
    entries.push_back({"t" + std::to_string(i), NewUuid(), FileType::kRegular});
  }
  const Bytes full = EncodeDentryShardObject(3, entries);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Bytes torn(full.begin(), full.begin() + cut);
    EXPECT_FALSE(DecodeDentryShardObject(torn).ok()) << "cut=" << cut;
  }
  // Flipped payload byte fails the CRC too.
  Bytes corrupt = full;
  corrupt[6] ^= 0x40;
  EXPECT_FALSE(DecodeDentryShardObject(corrupt).ok());
}

TEST(DentryTest, NameValidation) {
  EXPECT_TRUE(ValidateName("ok-name.txt").ok());
  EXPECT_FALSE(ValidateName("").ok());
  EXPECT_FALSE(ValidateName(".").ok());
  EXPECT_FALSE(ValidateName("..").ok());
  EXPECT_FALSE(ValidateName("a/b").ok());
  EXPECT_FALSE(ValidateName(std::string("a\0b", 3)).ok());
  EXPECT_FALSE(ValidateName(std::string(300, 'x')).ok());
  EXPECT_TRUE(ValidateName(std::string(255, 'x')).ok());
}

// --- metatable ---

TEST(MetatableTest, InsertLookupErase) {
  Metatable mt(MakeInode(kRootIno, FileType::kDirectory, 0755, 0, 0, Uuid{}));
  Inode child = FileInode(0644, 1, 1);
  ASSERT_TRUE(mt.Insert({"a.txt", child.ino, FileType::kRegular}, child).ok());
  EXPECT_EQ(mt.entry_count(), 1u);
  EXPECT_TRUE(mt.Contains("a.txt"));

  auto found = mt.Lookup("a.txt");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->ino, child.ino);
  ASSERT_NE(mt.FindChildInode(child.ino), nullptr);
  EXPECT_EQ(mt.FindChildInode(child.ino)->mode, 0644u);

  EXPECT_EQ(mt.Insert({"a.txt", NewUuid(), FileType::kRegular}, std::nullopt)
                .code(),
            Errc::kExist);
  ASSERT_TRUE(mt.Erase("a.txt").ok());
  EXPECT_EQ(mt.Lookup("a.txt").code(), Errc::kNoEnt);
  EXPECT_EQ(mt.FindChildInode(child.ino), nullptr);
  EXPECT_EQ(mt.Erase("a.txt").code(), Errc::kNoEnt);
}

TEST(MetatableTest, ListIsSorted) {
  Metatable mt(MakeInode(kRootIno, FileType::kDirectory, 0755, 0, 0, Uuid{}));
  for (const char* name : {"zeta", "alpha", "mid"}) {
    ASSERT_TRUE(
        mt.Insert({name, NewUuid(), FileType::kRegular}, std::nullopt).ok());
  }
  auto entries = mt.ListEntries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "alpha");
  EXPECT_EQ(entries[1].name, "mid");
  EXPECT_EQ(entries[2].name, "zeta");
}

// --- path helpers ---

TEST(PathTest, SplitBasics) {
  auto comps = SplitPath("/a/b/c");
  ASSERT_TRUE(comps.ok());
  EXPECT_EQ(*comps, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitPath("/")->empty());
  EXPECT_EQ(SplitPath("//a///b/")->size(), 2u);
}

TEST(PathTest, RejectsBadPaths) {
  EXPECT_FALSE(SplitPath("relative/path").ok());
  EXPECT_FALSE(SplitPath("").ok());
  EXPECT_FALSE(SplitPath("/a/../b").ok());
  EXPECT_FALSE(SplitPath("/a/./b").ok());
}

TEST(PathTest, JoinInvertsSplit) {
  EXPECT_EQ(JoinPath({"a", "b"}), "/a/b");
  EXPECT_EQ(JoinPath({}), "/");
}

TEST(PathTest, SplitParent) {
  auto sp = SplitParentOf("/a/b/c.txt");
  ASSERT_TRUE(sp.ok());
  EXPECT_EQ(sp->parent, "/a/b");
  EXPECT_EQ(sp->name, "c.txt");
  auto top = SplitParentOf("/top");
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->parent, "/");
  EXPECT_FALSE(SplitParentOf("/").ok());
}

}  // namespace
}  // namespace arkfs
