// Read-delegation tests: a non-leader serving stat/lookup/readdir for a hot
// directory from a locally cached metatable slice, with watermark-driven
// refetch and fence-token invalidation (DESIGN.md §4.5).
#include <gtest/gtest.h>

#include <string>

#include "core/cluster.h"
#include "objstore/memory_store.h"

namespace arkfs {
namespace {

class DelegationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_shared<MemoryObjectStore>();
    cluster_ =
        ArkFsCluster::Create(store_, ArkFsClusterOptions::ForTests()).value();
    c1_ = cluster_->AddClient("c1").value();
    c2_ = cluster_->AddClient("c2").value();
  }

  // c1 becomes leader of /hot with `files` small files in it.
  void SeedHotDir(int files) {
    ASSERT_TRUE(c1_->Mkdir("/hot", 0755, root_).ok());
    for (int i = 0; i < files; ++i) {
      ASSERT_TRUE(
          c1_->WriteFileAt("/hot/f" + std::to_string(i), AsBytes("aa"), root_)
              .ok());
    }
  }

  ObjectStorePtr store_;
  std::unique_ptr<ArkFsCluster> cluster_;
  std::shared_ptr<Client> c1_, c2_;
  UserCred root_ = UserCred::Root();
};

TEST_F(DelegationTest, HotDirStatsServeLocallyWithoutForwarding) {
  constexpr int kFiles = 20;
  SeedHotDir(kFiles);

  // Warm pass: the first delegable op adopts the delegation from the lease
  // redirect and pulls the slice from c1.
  for (int i = 0; i < kFiles; ++i) {
    auto st = c2_->Stat("/hot/f" + std::to_string(i), root_);
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(st->size, 2u);
  }
  ASSERT_GT(c2_->stats().stat_delegated, 0u);
  ASSERT_GT(c2_->stats().deleg_refetches, 0u);

  // Steady state: every stat and readdir is served from the cached slice —
  // zero DirOp forwards to the leader.
  const auto fwd_before = c2_->stats().forwarded_ops;
  const auto deleg_before = c2_->stats().stat_delegated;
  const auto leader_served_before = c1_->stats().served_remote_ops;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < kFiles; ++i) {
      auto st = c2_->Stat("/hot/f" + std::to_string(i), root_);
      ASSERT_TRUE(st.ok());
      EXPECT_EQ(st->size, 2u);
    }
    auto entries = c2_->ReadDir("/hot", root_);
    ASSERT_TRUE(entries.ok());
    EXPECT_EQ(entries->size(), static_cast<std::size_t>(kFiles));
  }
  EXPECT_EQ(c2_->stats().forwarded_ops, fwd_before);
  EXPECT_GE(c2_->stats().stat_delegated, deleg_before + 10 * kFiles);
  // The leader did not see any of those reads: zero fabric round trips.
  EXPECT_EQ(c1_->stats().served_remote_ops, leader_served_before);
}

TEST_F(DelegationTest, NewNamesVisibleImmediatelyDespiteDelegation) {
  SeedHotDir(4);
  ASSERT_TRUE(c2_->Stat("/hot/f0", root_).ok());  // slice cached

  // A name the slice has never heard of must resolve right away: negative
  // lookups are never served from the slice, they forward and get the
  // leader's authoritative answer.
  ASSERT_TRUE(c1_->WriteFileAt("/hot/brand_new", AsBytes("xyz"), root_).ok());
  auto st = c2_->Stat("/hot/brand_new", root_);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 3u);
}

TEST_F(DelegationTest, WatermarkAdvanceRefetchesSlice) {
  SeedHotDir(4);
  ASSERT_TRUE(c2_->Stat("/hot/f0", root_).ok());
  ASSERT_GT(c2_->stats().stat_delegated, 0u);

  // c1 mutates f0; c2 then performs its own forwarded mutation, whose reply
  // is stamped with the advanced watermark — read-your-own-writes: from this
  // point c2 knows its slice is behind.
  ASSERT_TRUE(
      c1_->WriteFileAt("/hot/f0", AsBytes("longer-v2"), root_).ok());
  ASSERT_TRUE(c2_->WriteFileAt("/hot/mine", AsBytes("m"), root_).ok());

  // While the slice is behind and the dir looks like it may still be
  // churning, reads forward — and forwarding is authoritative, so the new
  // size is visible immediately. This forwarded reply is also the second
  // observation of the now-stable watermark.
  SleepFor(Millis(10));
  auto first = c2_->Stat("/hot/f0", root_);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->size, 9u);

  // Two same-watermark observations >= the quiet window (5 ms) apart told
  // c2 the write burst ended: the next delegated op refetches immediately,
  // ignoring the churn backoff, and serving returns to the local slice.
  const auto refetches_before = c2_->stats().deleg_refetches;
  const auto delegated_before = c2_->stats().stat_delegated;
  auto st = c2_->Stat("/hot/f0", root_);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 9u);  // the refetched slice carries the new inode
  EXPECT_GT(c2_->stats().deleg_refetches, refetches_before);
  EXPECT_GT(c2_->stats().stat_delegated, delegated_before);
}

TEST_F(DelegationTest, LeadershipChangeInvalidatesDelegation) {
  SeedHotDir(4);
  ASSERT_TRUE(c2_->Stat("/hot/f0", root_).ok());
  ASSERT_GT(c2_->stats().stat_delegated, 0u);
  const auto invalidations_before = c2_->stats().deleg_invalidations;

  // Let c1's lease lapse and have a third client take over /hot: the new
  // tenure has a different fence token, so c2's delegation (granted under
  // c1's token) is void the moment c2 re-acquires.
  auto c3 = cluster_->AddClient("c3").value();
  SleepFor(cluster_->lease_manager().config().lease_period + Millis(100));
  ASSERT_TRUE(c3->WriteFileAt("/hot/late", AsBytes("zz"), root_).ok());

  auto st = c2_->Stat("/hot/f0", root_);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 2u);
  EXPECT_GT(c2_->stats().deleg_invalidations, invalidations_before);

  // And the fresh delegation under c3's tenure serves the post-handoff
  // truth, including the file created after the takeover.
  auto entries = c2_->ReadDir("/hot", root_);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 5u);
  const auto delegated_before = c2_->stats().stat_delegated;
  ASSERT_TRUE(c2_->Stat("/hot/late", root_).ok());
  EXPECT_GT(c2_->stats().stat_delegated, delegated_before);
}

TEST(DelegationPermissionTest, ChecksEnforcedOnDelegatedServe) {
  // Permission cache off: every access decision must come from the leader
  // or, on a delegate, from the slice's directory inode — the path under
  // test here.
  auto store = std::make_shared<MemoryObjectStore>();
  auto opts = ArkFsClusterOptions::ForTests();
  opts.client_template.permission_cache = false;
  auto cluster = ArkFsCluster::Create(store, opts).value();
  auto c1_ = cluster->AddClient("c1").value();
  auto c2_ = cluster->AddClient("c2").value();
  const UserCred root_ = UserCred::Root();

  ASSERT_TRUE(c1_->Mkdir("/hot", 0755, root_).ok());
  ASSERT_TRUE(c1_->WriteFileAt("/hot/f0", AsBytes("aa"), root_).ok());
  ASSERT_TRUE(c1_->WriteFileAt("/hot/f1", AsBytes("aa"), root_).ok());
  // Lock the directory down to owner-only after c2 cached a slice; the
  // refetched slice carries the new mode and the delegate must enforce it
  // for a non-owner exactly as the leader would.
  ASSERT_TRUE(c2_->Stat("/hot/f0", root_).ok());
  ASSERT_TRUE(c1_->Chmod("/hot", 0700, root_).ok());
  // A forwarded op inside /hot lets c2 observe the advanced watermark; a
  // second forwarded read past the quiet window confirms the churn ended,
  // so the delegated op after it refetches the slice — which now carries
  // the 0700 mode.
  ASSERT_TRUE(c2_->WriteFileAt("/hot/observed", AsBytes("s"), root_).ok());
  SleepFor(Millis(10));
  ASSERT_TRUE(c2_->Stat("/hot/f1", root_).ok());
  UserCred alice;
  alice.uid = 1001;
  alice.gid = 1001;
  const auto delegated_before = c2_->stats().stat_delegated;
  auto st = c2_->Stat("/hot/f0", alice);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), Errc::kAccess);
  // The denial came from the delegate's own access check, not the leader.
  EXPECT_GT(c2_->stats().stat_delegated, delegated_before);
}

TEST_F(DelegationTest, IntrospectExposesDelegationCacheState) {
  SeedHotDir(3);
  ASSERT_TRUE(c2_->Stat("/hot/f0", root_).ok());

  const auto report = c2_->Introspect();
  EXPECT_NE(report.delegations_text.find("delegations held:"),
            std::string::npos);
  EXPECT_NE(report.delegations_text.find("dir "), std::string::npos);
  EXPECT_NE(report.delegations_text.find("deleg hits="), std::string::npos);
  EXPECT_NE(report.delegations_text.find("stat local="), std::string::npos);

  // A client holding no delegations reports an empty cache but still the
  // counter lines.
  const auto leader_report = c1_->Introspect();
  EXPECT_NE(leader_report.delegations_text.find("delegations held: 0"),
            std::string::npos);
}

}  // namespace
}  // namespace arkfs
