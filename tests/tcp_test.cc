// Tests for the TCP transport: framing, end-to-end calls over loopback
// sockets, concurrency, error propagation, and the lease protocol served
// over TCP.
#include <gtest/gtest.h>

#include <thread>

#include "lease/lease_manager.h"
#include "rpc/tcp.h"

namespace arkfs::rpc {
namespace {

TEST(TcpFramingTest, RequestRoundTrip) {
  const Bytes payload = ToBytes("payload bytes \x00\x01\x02");
  Bytes framed = FrameRequest("svc.method", payload);
  auto parsed = ParseRequestBody(framed);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->first, "svc.method");
  EXPECT_EQ(parsed->second, payload);
}

TEST(TcpFramingTest, ResponseRoundTrip) {
  Bytes ok_body = FrameResponse(Result<Bytes>(ToBytes("result")));
  auto ok = ParseResponseBody(ok_body);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ToString(*ok), "result");

  Bytes err_body =
      FrameResponse(Result<Bytes>(ErrStatus(Errc::kAccess, "denied!")));
  auto err = ParseResponseBody(err_body);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.code(), Errc::kAccess);
  EXPECT_EQ(err.status().detail(), "denied!");
}

TEST(TcpFramingTest, TruncatedRequestRejected) {
  Bytes framed = FrameRequest("method", ToBytes("data"));
  framed.resize(1);
  EXPECT_FALSE(ParseRequestBody(framed).ok());
}

class TcpRpcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    endpoint_ = std::make_shared<Endpoint>();
    endpoint_->RegisterMethod("echo", [](ByteSpan req) -> Result<Bytes> {
      Bytes out(req.begin(), req.end());
      out.push_back('!');
      return out;
    });
    endpoint_->RegisterMethod("fail", [](ByteSpan) -> Result<Bytes> {
      return ErrStatus(Errc::kNoEnt, "nothing here");
    });
    server_ = std::make_unique<TcpServer>(endpoint_);
    ASSERT_TRUE(server_->Start(0).ok());
    ASSERT_GT(server_->port(), 0);
  }

  std::shared_ptr<Endpoint> endpoint_;
  std::unique_ptr<TcpServer> server_;
  TcpClient client_;
};

TEST_F(TcpRpcTest, EndToEndCall) {
  auto resp = client_.Call("127.0.0.1", server_->port(), "echo",
                           AsBytes("over tcp"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(ToString(*resp), "over tcp!");
  EXPECT_EQ(endpoint_->calls_served(), 1u);
}

TEST_F(TcpRpcTest, ErrorsTravelWithCodeAndDetail) {
  auto resp = client_.Call("127.0.0.1", server_->port(), "fail", {});
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.code(), Errc::kNoEnt);
  EXPECT_EQ(resp.status().detail(), "nothing here");
}

TEST_F(TcpRpcTest, UnknownMethodIsNotSup) {
  auto resp = client_.Call("127.0.0.1", server_->port(), "ghost", {});
  EXPECT_EQ(resp.code(), Errc::kNotSup);
}

TEST_F(TcpRpcTest, ConnectionIsReused) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client_.Call("127.0.0.1", server_->port(), "echo", {}).ok());
  }
  EXPECT_EQ(server_->connections_accepted(), 1u);
}

TEST_F(TcpRpcTest, LargePayload) {
  Bytes big(3 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 11);
  }
  auto resp = client_.Call("127.0.0.1", server_->port(), "echo", big);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->size(), big.size() + 1);
  EXPECT_TRUE(std::equal(big.begin(), big.end(), resp->begin()));
}

TEST_F(TcpRpcTest, ConcurrentClients) {
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      TcpClient own_client;  // separate connection per thread
      for (int i = 0; i < 20; ++i) {
        auto resp = own_client.Call("127.0.0.1", server_->port(), "echo",
                                    AsBytes("x"));
        if (!resp.ok() || ToString(*resp) != "x!") ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(endpoint_->calls_served(), 120u);
}

TEST_F(TcpRpcTest, ConnectToDeadPortFails) {
  TcpClient fresh;
  const std::uint16_t port = server_->port();
  server_->Stop();
  // Either the connect or the call must fail once the server is gone.
  auto resp = fresh.Call("127.0.0.1", port, "echo", {});
  EXPECT_FALSE(resp.ok());
}

TEST(TcpLeaseTest, LeaseProtocolOverRealSockets) {
  // The lease manager binds its endpoint on the in-process fabric as usual;
  // serving the SAME endpoint over TCP makes the manager reachable from
  // other processes without any protocol change.
  auto fabric = std::make_shared<Fabric>(sim::NetworkProfile::Instant());
  lease::LeaseManager manager(fabric, lease::LeaseManagerConfig::ForTests());
  ASSERT_TRUE(manager.Start().ok());

  auto endpoint = std::make_shared<Endpoint>();
  endpoint->RegisterMethod(
      lease::kMethodAcquire, [&](ByteSpan req) -> Result<Bytes> {
        ARKFS_ASSIGN_OR_RETURN(auto request, lease::AcquireRequest::Decode(req));
        return manager.Acquire(request).Encode();
      });
  TcpServer server(endpoint);
  ASSERT_TRUE(server.Start(0).ok());

  TcpClient client;
  const Uuid dir = DeterministicUuid(5, 5);
  const lease::AcquireRequest req{dir, "tcp-client-1"};
  auto raw = client.Call("127.0.0.1", server.port(), lease::kMethodAcquire,
                         req.Encode());
  ASSERT_TRUE(raw.ok());
  auto resp = lease::AcquireResponse::Decode(*raw);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->outcome, lease::AcquireOutcome::kGranted);

  // A second client over TCP is redirected to the first, as usual.
  const lease::AcquireRequest req2{dir, "tcp-client-2"};
  auto raw2 = client.Call("127.0.0.1", server.port(), lease::kMethodAcquire,
                          req2.Encode());
  ASSERT_TRUE(raw2.ok());
  auto resp2 = lease::AcquireResponse::Decode(*raw2);
  ASSERT_TRUE(resp2.ok());
  EXPECT_EQ(resp2->outcome, lease::AcquireOutcome::kRedirect);
  EXPECT_EQ(resp2->leader, "tcp-client-1");
}

}  // namespace
}  // namespace arkfs::rpc
