// Tests for the discrete-event simulator and the scalability models.
#include <gtest/gtest.h>

#include "des/scalability.h"
#include "des/sim.h"

namespace arkfs::des {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(Millis(30), [&] { order.push_back(3); });
  sim.At(Millis(10), [&] { order.push_back(1); });
  sim.At(Millis(20), [&] { order.push_back(2); });
  EXPECT_EQ(sim.Run(), Millis(30));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, SimultaneousEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.At(Millis(1), [&, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  Nanos second_fired{0};
  sim.After(Millis(5), [&] {
    sim.After(Millis(7), [&] { second_fired = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(second_fired, Millis(12));
}

TEST(SimulatorTest, PastEventsClampToNow) {
  Simulator sim;
  Nanos fired{-1};
  sim.After(Millis(10), [&] {
    sim.At(Millis(1), [&] { fired = sim.now(); });  // in the past
  });
  sim.Run();
  EXPECT_EQ(fired, Millis(10));
}

TEST(ResourceTest, WidthOneSerializes) {
  Simulator sim;
  Resource r(&sim, 1);
  std::vector<Nanos> completions;
  for (int i = 0; i < 3; ++i) {
    r.Use(Millis(10), [&] { completions.push_back(sim.now()); });
  }
  sim.Run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], Millis(10));
  EXPECT_EQ(completions[1], Millis(20));
  EXPECT_EQ(completions[2], Millis(30));
  EXPECT_EQ(r.uses(), 3u);
  EXPECT_EQ(r.busy_time(), Millis(30));
}

TEST(ResourceTest, WidthTwoOverlaps) {
  Simulator sim;
  Resource r(&sim, 2);
  std::vector<Nanos> completions;
  for (int i = 0; i < 4; ++i) {
    r.Use(Millis(10), [&] { completions.push_back(sim.now()); });
  }
  sim.Run();
  ASSERT_EQ(completions.size(), 4u);
  EXPECT_EQ(completions[1], Millis(10));  // two together
  EXPECT_EQ(completions[3], Millis(20));
}

TEST(ResourceTest, ThroughputMatchesTheory) {
  // A width-1 resource with service time s serves exactly 1/s ops/sec.
  Simulator sim;
  Resource r(&sim, 1);
  const int n = 1000;
  int done = 0;
  for (int i = 0; i < n; ++i) {
    r.Use(Micros(30), [&] { ++done; });
  }
  const Nanos makespan = sim.Run();
  EXPECT_EQ(done, n);
  EXPECT_EQ(makespan, Micros(30) * n);
}

TEST(ScalabilityModelTest, Deterministic) {
  CephScaleParams params;
  ScaleWorkload w;
  w.clients = 8;
  w.files_per_client = 200;
  const auto a = SimulateCephCreates(params, w);
  const auto b = SimulateCephCreates(params, w);
  EXPECT_EQ(a.ops_per_second, b.ops_per_second);
  EXPECT_EQ(a.events, b.events);
}

TEST(ScalabilityModelTest, SingleMdsSaturatesThenCollapses) {
  CephScaleParams params;
  ScaleWorkload w;
  w.files_per_client = 300;
  auto at = [&](int clients) {
    w.clients = clients;
    return SimulateCephCreates(params, w).ops_per_second;
  };
  const double c1 = at(1), c8 = at(8), c512 = at(512);
  EXPECT_GT(c8, c1 * 4);      // still scaling at 8
  EXPECT_LT(c512, c8);        // collapsed beyond the peak (Fig. 1)
}

TEST(ScalabilityModelTest, MultiMdsBuysLittle) {
  ScaleWorkload w;
  w.clients = 128;
  w.files_per_client = 300;
  CephScaleParams one;
  CephScaleParams sixteen;
  sixteen.mds_ranks = 16;
  const double r1 = SimulateCephCreates(one, w).ops_per_second;
  const double r16 = SimulateCephCreates(sixteen, w).ops_per_second;
  EXPECT_GT(r16, r1);             // better...
  EXPECT_LT(r16, r1 * 4.0);       // ...but nowhere near 16x (paper: <=3.24x)
}

TEST(ScalabilityModelTest, FuseMountSlowerThanKernel) {
  ScaleWorkload w;
  w.clients = 16;
  w.files_per_client = 200;
  CephScaleParams kernel;
  CephScaleParams fuse = kernel;
  fuse.fuse = true;
  EXPECT_GT(SimulateCephCreates(kernel, w).ops_per_second,
            SimulateCephCreates(fuse, w).ops_per_second);
}

TEST(ScalabilityModelTest, ArkfsPcacheScalesNearLinearly) {
  ArkfsScaleParams params;
  ScaleWorkload w;
  w.files_per_client = 300;
  w.clients = 1;
  const double c1 = SimulateArkfsCreates(params, w).ops_per_second;
  w.clients = 256;
  const double c256 = SimulateArkfsCreates(params, w).ops_per_second;
  EXPECT_GT(c256, c1 * 250);  // Fig. 7: near-linear
}

TEST(ScalabilityModelTest, NoPcacheCollapsesAtTwoClients) {
  ArkfsScaleParams params;
  params.permission_cache = false;
  ScaleWorkload w;
  w.files_per_client = 300;
  w.clients = 1;
  const double c1 = SimulateArkfsCreates(params, w).ops_per_second;
  w.clients = 2;
  const double c2 = SimulateArkfsCreates(params, w).ops_per_second;
  // The paper's "drastic performance degradation when the number of clients
  // is increased to 2": aggregate drops below the single-client value.
  EXPECT_LT(c2, c1);
  // And it stays capped by the near-root leader far from linear.
  w.clients = 64;
  const double c64 = SimulateArkfsCreates(params, w).ops_per_second;
  EXPECT_LT(c64, c1);
}

TEST(ScalabilityModelTest, PcacheBeatsNoPcacheAtScale) {
  ScaleWorkload w;
  w.clients = 32;
  w.files_per_client = 200;
  ArkfsScaleParams on;
  ArkfsScaleParams off;
  off.permission_cache = false;
  EXPECT_GT(SimulateArkfsCreates(on, w).ops_per_second,
            SimulateArkfsCreates(off, w).ops_per_second * 10);
}

TEST(ScalabilityModelTest, ArkfsBeatsCephEverywhere) {
  ScaleWorkload w;
  w.files_per_client = 200;
  for (int clients : {1, 16, 256}) {
    w.clients = clients;
    ArkfsScaleParams ark;
    CephScaleParams ceph;
    EXPECT_GT(SimulateArkfsCreates(ark, w).ops_per_second,
              SimulateCephCreates(ceph, w).ops_per_second)
        << clients;
  }
}

}  // namespace
}  // namespace arkfs::des
