// Tests for the in-process RPC fabric.
#include <gtest/gtest.h>

#include <thread>

#include "rpc/fabric.h"

namespace arkfs::rpc {
namespace {

Bytes Payload(const std::string& s) { return arkfs::ToBytes(s); }

TEST(FabricTest, BasicCall) {
  Fabric fabric(sim::NetworkProfile::Instant());
  auto endpoint = std::make_shared<Endpoint>();
  endpoint->RegisterMethod("echo", [](ByteSpan req) -> Result<Bytes> {
    Bytes out(req.begin(), req.end());
    out.push_back('!');
    return out;
  });
  ASSERT_TRUE(fabric.Bind("svc", endpoint).ok());

  auto resp = fabric.Call("svc", "echo", Payload("hi"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(ToString(*resp), "hi!");
  EXPECT_EQ(fabric.total_calls(), 1u);
  EXPECT_EQ(endpoint->calls_served(), 1u);
}

TEST(FabricTest, UnknownMethodAndAddress) {
  Fabric fabric(sim::NetworkProfile::Instant());
  auto endpoint = std::make_shared<Endpoint>();
  ASSERT_TRUE(fabric.Bind("svc", endpoint).ok());
  EXPECT_EQ(fabric.Call("svc", "nope", Payload("x")).code(), Errc::kNotSup);
  EXPECT_EQ(fabric.Call("ghost", "m", Payload("x")).code(), Errc::kTimedOut);
}

TEST(FabricTest, DoubleBindRejected) {
  Fabric fabric(sim::NetworkProfile::Instant());
  ASSERT_TRUE(fabric.Bind("svc", std::make_shared<Endpoint>()).ok());
  EXPECT_EQ(fabric.Bind("svc", std::make_shared<Endpoint>()).code(),
            Errc::kExist);
}

TEST(FabricTest, UnbindMakesEndpointUnreachable) {
  Fabric fabric(sim::NetworkProfile::Instant());
  auto endpoint = std::make_shared<Endpoint>();
  endpoint->RegisterMethod("m", [](ByteSpan) -> Result<Bytes> { return Bytes{}; });
  ASSERT_TRUE(fabric.Bind("svc", endpoint).ok());
  ASSERT_TRUE(fabric.Call("svc", "m", {}).ok());
  fabric.Unbind("svc");
  EXPECT_FALSE(fabric.IsBound("svc"));
  EXPECT_EQ(fabric.Call("svc", "m", {}).code(), Errc::kTimedOut);
  // Rebinding after unbind works (client restart).
  EXPECT_TRUE(fabric.Bind("svc", endpoint).ok());
}

TEST(FabricTest, HandlerErrorsPropagate) {
  Fabric fabric(sim::NetworkProfile::Instant());
  auto endpoint = std::make_shared<Endpoint>();
  endpoint->RegisterMethod("fail", [](ByteSpan) -> Result<Bytes> {
    return ErrStatus(Errc::kAccess, "denied");
  });
  ASSERT_TRUE(fabric.Bind("svc", endpoint).ok());
  auto resp = fabric.Call("svc", "fail", {});
  EXPECT_EQ(resp.code(), Errc::kAccess);
}

TEST(FabricTest, RttIsCharged) {
  sim::NetworkProfile profile;
  profile.rtt = Millis(5);
  Fabric fabric(profile);
  auto endpoint = std::make_shared<Endpoint>();
  endpoint->RegisterMethod("m", [](ByteSpan) -> Result<Bytes> { return Bytes{}; });
  ASSERT_TRUE(fabric.Bind("svc", endpoint).ok());
  const TimePoint start = Now();
  ASSERT_TRUE(fabric.Call("svc", "m", {}).ok());
  EXPECT_GE(Now() - start, Millis(3));
}

TEST(EndpointTest, ConcurrencyCapSerializes) {
  // With max_concurrency=1, two overlapping calls must not run together.
  Fabric fabric(sim::NetworkProfile::Instant());
  auto endpoint = std::make_shared<Endpoint>(/*max_concurrency=*/1);
  std::atomic<int> active{0};
  std::atomic<int> max_active{0};
  endpoint->RegisterMethod("slow", [&](ByteSpan) -> Result<Bytes> {
    int now = ++active;
    int prev = max_active.load();
    while (now > prev && !max_active.compare_exchange_weak(prev, now)) {
    }
    SleepFor(Millis(5));
    --active;
    return Bytes{};
  });
  ASSERT_TRUE(fabric.Bind("svc", endpoint).ok());
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] { ASSERT_TRUE(fabric.Call("svc", "slow", {}).ok()); });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(max_active.load(), 1);
  EXPECT_EQ(endpoint->calls_served(), 4u);
}

TEST(EndpointTest, UnlimitedConcurrencyOverlaps) {
  Fabric fabric(sim::NetworkProfile::Instant());
  auto endpoint = std::make_shared<Endpoint>(/*max_concurrency=*/0);
  std::atomic<int> active{0};
  std::atomic<int> max_active{0};
  endpoint->RegisterMethod("slow", [&](ByteSpan) -> Result<Bytes> {
    int now = ++active;
    int prev = max_active.load();
    while (now > prev && !max_active.compare_exchange_weak(prev, now)) {
    }
    SleepFor(Millis(20));
    --active;
    return Bytes{};
  });
  ASSERT_TRUE(fabric.Bind("svc", endpoint).ok());
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] { ASSERT_TRUE(fabric.Call("svc", "slow", {}).ok()); });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(max_active.load(), 1);
}

}  // namespace
}  // namespace arkfs::rpc
