// Tests for the baseline file systems, including a cross-implementation
// POSIX contract suite that runs the same operation sequences over ArkFS,
// CephFS-like (both mounts), MarFS-like, S3FS-like and goofys-like.
#include <gtest/gtest.h>

#include "baselines/cephfs_like.h"
#include "baselines/marfs_like.h"
#include "baselines/s3fs_like.h"
#include "core/cluster.h"
#include "objstore/memory_store.h"

namespace arkfs {
namespace {

using baselines::CephLikeConfig;
using baselines::CephLikeVfs;
using baselines::MdsCluster;
using baselines::MdsConfig;

// ---------------------------------------------------------------------------
// Cross-FS contract suite
// ---------------------------------------------------------------------------

enum class Fs { kArkFs, kCephKernel, kCephFuse, kMarFs, kS3Fs, kGoofys };

struct Harness {
  VfsPtr vfs;
  bool strict_perms = true;  // S3FS/goofys are deliberately lax
  bool has_acls = true;
  // Keep-alives.
  std::unique_ptr<ArkFsCluster> cluster;
  std::shared_ptr<Client> client;
  ObjectStorePtr store;
  baselines::MdsClusterPtr mds;
};

Harness MakeHarness(Fs which) {
  Harness h;
  h.store = std::make_shared<MemoryObjectStore>();
  switch (which) {
    case Fs::kArkFs: {
      h.cluster =
          ArkFsCluster::Create(h.store, ArkFsClusterOptions::ForTests()).value();
      h.client = h.cluster->AddClient().value();
      h.vfs = h.client;
      break;
    }
    case Fs::kCephKernel:
    case Fs::kCephFuse: {
      h.mds = std::make_shared<MdsCluster>(MdsConfig::Instant());
      baselines::CephLikeDeployment d{h.mds, h.store};
      CephLikeConfig config = CephLikeConfig::ForTests();
      if (which == Fs::kCephKernel) {
        h.vfs = std::make_shared<CephLikeVfs>(h.mds, h.store, config);
      } else {
        auto inner = std::make_shared<CephLikeVfs>(h.mds, h.store, config);
        h.vfs = std::make_shared<FuseSim>(inner, FuseSimConfig::Off());
      }
      break;
    }
    case Fs::kMarFs: {
      auto config = baselines::MarFsLikeConfig::ForTests();
      h.mds = std::make_shared<MdsCluster>(config.mds);
      h.vfs = baselines::MakeMarFsLike(h.mds, h.store, config,
                                       FuseSimConfig::Off());
      break;
    }
    case Fs::kS3Fs:
    case Fs::kGoofys: {
      auto options = which == Fs::kS3Fs
                         ? baselines::S3FsLikeOptions::S3Fs()
                         : baselines::S3FsLikeOptions::Goofys();
      options.disk_bandwidth_bps = 0;  // instant for tests
      h.vfs = std::make_shared<baselines::S3FsLikeVfs>(h.store, options);
      h.strict_perms = false;
      h.has_acls = false;
      break;
    }
  }
  return h;
}

class VfsContractTest : public ::testing::TestWithParam<Fs> {
 protected:
  void SetUp() override { h_ = MakeHarness(GetParam()); }
  Harness h_;
  UserCred root_ = UserCred::Root();
};

TEST_P(VfsContractTest, CreateWriteReadUnlink) {
  ASSERT_TRUE(h_.vfs->Mkdir("/d", 0755, root_).ok());
  Bytes data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  ASSERT_TRUE(h_.vfs->WriteFileAt("/d/f.bin", data, root_).ok());
  auto st = h_.vfs->Stat("/d/f.bin", root_);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, data.size());
  auto back = h_.vfs->ReadWholeFile("/d/f.bin", root_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
  ASSERT_TRUE(h_.vfs->Unlink("/d/f.bin", root_).ok());
  EXPECT_EQ(h_.vfs->Stat("/d/f.bin", root_).code(), Errc::kNoEnt);
}

TEST_P(VfsContractTest, MkdirSemantics) {
  ASSERT_TRUE(h_.vfs->Mkdir("/a", 0755, root_).ok());
  EXPECT_EQ(h_.vfs->Mkdir("/a", 0755, root_).code(), Errc::kExist);
  EXPECT_EQ(h_.vfs->Mkdir("/nope/sub", 0755, root_).code(), Errc::kNoEnt);
  ASSERT_TRUE(h_.vfs->Mkdir("/a/b", 0755, root_).ok());
  EXPECT_EQ(h_.vfs->Rmdir("/a", root_).code(), Errc::kNotEmpty);
  ASSERT_TRUE(h_.vfs->Rmdir("/a/b", root_).ok());
  EXPECT_TRUE(h_.vfs->Rmdir("/a", root_).ok());
}

TEST_P(VfsContractTest, ReadDirListsChildren) {
  ASSERT_TRUE(h_.vfs->Mkdir("/list", 0755, root_).ok());
  ASSERT_TRUE(h_.vfs->WriteFileAt("/list/one", AsBytes("1"), root_).ok());
  ASSERT_TRUE(h_.vfs->WriteFileAt("/list/two", AsBytes("2"), root_).ok());
  ASSERT_TRUE(h_.vfs->Mkdir("/list/sub", 0755, root_).ok());
  auto entries = h_.vfs->ReadDir("/list", root_);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 3u);
}

TEST_P(VfsContractTest, RenameWithinDirectory) {
  ASSERT_TRUE(h_.vfs->WriteFileAt("/old", AsBytes("payload"), root_).ok());
  ASSERT_TRUE(h_.vfs->Rename("/old", "/new", root_).ok());
  EXPECT_EQ(h_.vfs->Stat("/old", root_).code(), Errc::kNoEnt);
  EXPECT_EQ(ToString(*h_.vfs->ReadWholeFile("/new", root_)), "payload");
}

TEST_P(VfsContractTest, CrossDirectoryRename) {
  ASSERT_TRUE(h_.vfs->Mkdir("/src", 0755, root_).ok());
  ASSERT_TRUE(h_.vfs->Mkdir("/dst", 0755, root_).ok());
  ASSERT_TRUE(h_.vfs->WriteFileAt("/src/f", AsBytes("move me"), root_).ok());
  ASSERT_TRUE(h_.vfs->Rename("/src/f", "/dst/g", root_).ok());
  EXPECT_EQ(ToString(*h_.vfs->ReadWholeFile("/dst/g", root_)), "move me");
  EXPECT_TRUE(h_.vfs->ReadDir("/src", root_)->empty());
}

TEST_P(VfsContractTest, SymlinkRoundTrip) {
  ASSERT_TRUE(h_.vfs->WriteFileAt("/target", AsBytes("T"), root_).ok());
  ASSERT_TRUE(h_.vfs->Symlink("/target", "/link", root_).ok());
  auto t = h_.vfs->ReadLink("/link", root_);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, "/target");
  OpenOptions read;
  auto fd = h_.vfs->Open("/link", read, root_);
  ASSERT_TRUE(fd.ok());
  auto data = h_.vfs->Read(*fd, 0, 10);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(ToString(*data), "T");
  ASSERT_TRUE(h_.vfs->Close(*fd).ok());
}

TEST_P(VfsContractTest, TruncateShrinks) {
  ASSERT_TRUE(h_.vfs->WriteFileAt("/t", Bytes(5000, 9), root_).ok());
  ASSERT_TRUE(h_.vfs->Truncate("/t", 123, root_).ok());
  EXPECT_EQ(h_.vfs->Stat("/t", root_)->size, 123u);
  EXPECT_EQ(h_.vfs->ReadWholeFile("/t", root_)->size(), 123u);
}

TEST_P(VfsContractTest, PermissionChecksWhereSupported) {
  UserCred bob{1001, 1001, {}};
  ASSERT_TRUE(h_.vfs->Mkdir("/locked", 0700, root_).ok());
  ASSERT_TRUE(h_.vfs->WriteFileAt("/locked/secret", AsBytes("s"), root_).ok());
  auto st = h_.vfs->Stat("/locked/secret", bob);
  if (h_.strict_perms) {
    EXPECT_EQ(st.code(), Errc::kAccess);
  } else {
    // S3FS/goofys: "permission check is not done rigorously" (paper §II-C).
    EXPECT_TRUE(st.ok());
  }
}

TEST_P(VfsContractTest, AclsWhereSupported) {
  ASSERT_TRUE(h_.vfs->WriteFileAt("/f", AsBytes("x"), root_).ok());
  Acl acl;
  acl.Set({AclTag::kUserObj, 0, 7});
  acl.Set({AclTag::kGroupObj, 0, 5});
  acl.Set({AclTag::kMask, 0, 7});
  acl.Set({AclTag::kOther, 0, 0});
  Status st = h_.vfs->SetAcl("/f", acl, root_);
  if (h_.has_acls) {
    ASSERT_TRUE(st.ok());
    auto got = h_.vfs->GetAcl("/f", root_);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, acl);
  } else {
    EXPECT_EQ(st.code(), Errc::kNotSup);  // like DAOS in the paper's survey
  }
}

TEST_P(VfsContractTest, SyncAllSucceeds) {
  ASSERT_TRUE(h_.vfs->WriteFileAt("/s", AsBytes("sync me"), root_).ok());
  EXPECT_TRUE(h_.vfs->SyncAll().ok());
  EXPECT_TRUE(h_.vfs->DropCaches().ok());
  EXPECT_EQ(ToString(*h_.vfs->ReadWholeFile("/s", root_)), "sync me");
}

INSTANTIATE_TEST_SUITE_P(AllFileSystems, VfsContractTest,
                         ::testing::Values(Fs::kArkFs, Fs::kCephKernel,
                                           Fs::kCephFuse, Fs::kMarFs,
                                           Fs::kS3Fs, Fs::kGoofys),
                         [](const auto& info) {
                           switch (info.param) {
                             case Fs::kArkFs: return "ArkFS";
                             case Fs::kCephKernel: return "CephKernel";
                             case Fs::kCephFuse: return "CephFuse";
                             case Fs::kMarFs: return "MarFS";
                             case Fs::kS3Fs: return "S3FS";
                             case Fs::kGoofys: return "Goofys";
                           }
                           return "Unknown";
                         });

// ---------------------------------------------------------------------------
// Baseline-specific behaviours
// ---------------------------------------------------------------------------

TEST(MdsClusterTest, ChargeAccounting) {
  MdsConfig config = MdsConfig::Instant();
  config.num_ranks = 4;
  config.forward_probability = 1.0;  // every request forwarded
  MdsCluster mds(config);
  for (int i = 0; i < 10; ++i) mds.ChargeRequest("/a/b");
  EXPECT_EQ(mds.ops_served(), 10u);
  EXPECT_EQ(mds.forwards(), 10u);
}

TEST(MdsClusterTest, SingleRankNeverForwards) {
  MdsCluster mds(MdsConfig::Instant());
  for (int i = 0; i < 10; ++i) mds.ChargeRequest("/x");
  EXPECT_EQ(mds.forwards(), 0u);
}

TEST(MarFsTest, ReadErrorsWhenConfigured) {
  auto store = std::make_shared<MemoryObjectStore>();
  auto config = baselines::MarFsLikeConfig::ForTests();
  config.read_errors = true;
  auto mds = std::make_shared<MdsCluster>(config.mds);
  auto vfs = baselines::MakeMarFsLike(mds, store, config, FuseSimConfig::Off());
  const UserCred root = UserCred::Root();
  ASSERT_TRUE(vfs->WriteFileAt("/f", AsBytes("data"), root).ok());
  OpenOptions read;
  auto fd = vfs->Open("/f", read, root);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(vfs->Read(*fd, 0, 4).code(), Errc::kIo);  // the paper's READ ERR
  ASSERT_TRUE(vfs->Close(*fd).ok());
}

TEST(S3FsLikeTest, DirectoryRenameCopiesEveryObject) {
  auto store = std::make_shared<MemoryObjectStore>();
  baselines::S3FsLikeOptions options = baselines::S3FsLikeOptions::S3Fs();
  options.disk_bandwidth_bps = 0;
  auto vfs = std::make_shared<baselines::S3FsLikeVfs>(store, options);
  const UserCred root = UserCred::Root();
  ASSERT_TRUE(vfs->Mkdir("/dir", 0755, root).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(vfs->WriteFileAt("/dir/f" + std::to_string(i),
                                 Bytes(1000, static_cast<std::uint8_t>(i)),
                                 root)
                    .ok());
  }
  const auto objects_before = store->ObjectCount();
  ASSERT_TRUE(vfs->Rename("/dir", "/renamed", root).ok());
  // Path-as-key: same object count, all new keys (full rewrite happened).
  EXPECT_EQ(store->ObjectCount(), objects_before);
  EXPECT_EQ(vfs->ReadDir("/renamed", root)->size(), 5u);
  EXPECT_EQ(vfs->Stat("/dir", root).code(), Errc::kNoEnt);
  for (int i = 0; i < 5; ++i) {
    auto data = vfs->ReadWholeFile("/renamed/f" + std::to_string(i), root);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(*data, Bytes(1000, static_cast<std::uint8_t>(i)));
  }
}

TEST(S3FsLikeTest, MultiPartFilesSplitAtMaxObjectSize) {
  auto store = std::make_shared<MemoryObjectStore>(64 * 1024);  // 64 KiB parts
  baselines::S3FsLikeOptions options = baselines::S3FsLikeOptions::Goofys();
  auto vfs = std::make_shared<baselines::S3FsLikeVfs>(store, options);
  const UserCred root = UserCred::Root();
  Bytes big(200 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i);
  }
  ASSERT_TRUE(vfs->WriteFileAt("/big", big, root).ok());
  // 200 KiB / 64 KiB parts -> 4 data objects + 1 meta object.
  EXPECT_EQ(store->ObjectCount(), 5u);
  auto back = vfs->ReadWholeFile("/big", root);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, big);
}

TEST(S3FsLikeTest, NoCoordinationBetweenMounts) {
  auto store = std::make_shared<MemoryObjectStore>();
  baselines::S3FsLikeOptions options = baselines::S3FsLikeOptions::S3Fs();
  options.disk_bandwidth_bps = 0;
  auto m1 = std::make_shared<baselines::S3FsLikeVfs>(store, options);
  auto m2 = std::make_shared<baselines::S3FsLikeVfs>(store, options);
  const UserCred root = UserCred::Root();
  ASSERT_TRUE(m1->WriteFileAt("/shared", AsBytes("from-m1"), root).ok());
  // The second mount sees it only because the store is shared; nothing
  // coordinates concurrent writers (documented S3FS behaviour).
  EXPECT_EQ(ToString(*m2->ReadWholeFile("/shared", root)), "from-m1");
}

TEST(CephLikeTest, UnlinkDropsDataObjects) {
  auto store = std::make_shared<MemoryObjectStore>();
  auto mds = std::make_shared<MdsCluster>(MdsConfig::Instant());
  auto vfs = std::make_shared<CephLikeVfs>(mds, store,
                                           CephLikeConfig::ForTests());
  const UserCred root = UserCred::Root();
  ASSERT_TRUE(vfs->WriteFileAt("/data", Bytes(10000, 1), root).ok());
  ASSERT_TRUE(vfs->SyncAll().ok());
  EXPECT_GT(store->ObjectCount(), 0u);
  ASSERT_TRUE(vfs->Unlink("/data", root).ok());
  EXPECT_EQ(store->ObjectCount(), 0u);
}

TEST(CephLikeTest, SharedMdsAcrossMounts) {
  auto store = std::make_shared<MemoryObjectStore>();
  auto mds = std::make_shared<MdsCluster>(MdsConfig::Instant());
  auto m1 = std::make_shared<CephLikeVfs>(mds, store, CephLikeConfig::ForTests());
  auto m2 = std::make_shared<CephLikeVfs>(mds, store, CephLikeConfig::ForTests());
  const UserCred root = UserCred::Root();
  ASSERT_TRUE(m1->Mkdir("/from-m1", 0755, root).ok());
  EXPECT_TRUE(m2->Stat("/from-m1", root).ok());  // same namespace instantly
}

}  // namespace
}  // namespace arkfs
